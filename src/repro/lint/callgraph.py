"""Project index and approximate call graph for whole-project analysis.

The per-file rules (REPRO101–109) see one module at a time; the project
passes (REPRO110+) need to know *who calls whom across files*: an unseeded
RNG constructor is harmless in a scratch script and a contract violation
when a filtering entrypoint can reach it.  This module builds:

- a :class:`ProjectIndex`: every module under a root parsed once, with its
  module-scope imports (``TYPE_CHECKING`` blocks excluded — deferred
  imports are the sanctioned cycle-break and do not create architecture
  edges), resolved import aliases (absolute *and* relative), and every
  function/method definition;
- an approximate, AST-level call graph.  Resolution is name-based and
  deliberately conservative:

  * ``f(...)`` → a top-level ``def f`` in the same module, else an
    imported name followed through package ``__init__`` re-exports;
  * ``mod.f(...)`` / ``pkg.mod.f(...)`` → the aliased module's ``def f``;
  * ``self.m(...)`` / ``cls.m(...)`` → the enclosing class's method (or a
    base class's, walking project-local bases);
  * ``ClassName(...)`` → ``ClassName.__init__``;
  * ``obj.m(...)`` on an unknown receiver → resolved only when exactly one
    project class defines a method ``m`` (unique-name heuristic) — an
    ambiguous name produces *no* edge rather than a speculative one.

  Dynamic dispatch, higher-order callbacks, and getattr are out of scope;
  the dataflow rules that consume this graph are documented as
  approximate and are paired with a findings baseline.

Reachability queries (:meth:`ProjectIndex.reachable_from`) power the
interprocedural rules in :mod:`.dataflow` and the dead-code report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .rules import ALGORITHMIC_PACKAGES

__all__ = [
    "FuncKey",
    "FunctionInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProjectIndex",
    "build_project_index",
]

#: (dotted module name, function qualname) — the call-graph node identity.
#: Module top-level code is the pseudo-function ``"<module>"``.
FuncKey = Tuple[str, str]

MODULE_BODY = "<module>"


@dataclass(frozen=True)
class ImportEdge:
    """One module-scope import statement, resolved to a dotted target."""

    target: str  #: dotted module (or module.attr) being imported
    lineno: int
    is_from: bool  #: ``from X import Y`` (target = X, names carry Y)
    names: Tuple[str, ...] = ()  #: imported names for ``from`` imports


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    module: str
    qualname: str  #: ``f`` or ``Class.method`` (nested defs: ``outer.<locals>.inner``)
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef (Module for MODULE_BODY)
    lineno: int
    class_name: Optional[str] = None
    decorators: Tuple[str, ...] = ()  #: dotted/last-name decorator spellings

    @property
    def key(self) -> FuncKey:
        return (self.module, self.qualname)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_public(self) -> bool:
        return all(not part.startswith("_") for part in self.qualname.split("."))


@dataclass
class ModuleInfo:
    """One parsed module: tree, source, imports, aliases, definitions."""

    name: str  #: dotted, e.g. ``repro.filtering.natural_cuts``
    path: Path
    tree: ast.Module
    source: str
    package: str  #: first subpackage under the root package ("" at top level)
    imports: List[ImportEdge] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_algorithmic(self) -> bool:
        return self.package in ALGORITHMIC_PACKAGES


def _module_scope_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level import statements, skipping ``if TYPE_CHECKING:`` bodies.

    ``try:`` blocks at module scope (optional-dependency guards) count —
    they execute at import time.  Function-local imports never count: they
    are the project's documented mechanism for breaking import cycles.
    """
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.If):
            test = node.test
            flag = test.id if isinstance(test, ast.Name) else (
                test.attr if isinstance(test, ast.Attribute) else None
            )
            if flag == "TYPE_CHECKING":
                continue
            for sub in node.body + node.orelse:
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    yield sub
        elif isinstance(node, ast.Try):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    yield sub


def _resolve_relative(module_name: str, is_package: bool, level: int, target: str) -> str:
    """Absolute dotted name for a ``from ...target import x`` statement."""
    parts = module_name.split(".")
    # a package's __init__ counts as the package itself for level-1 imports
    anchor = len(parts) - level + (1 if is_package else 0)
    base = parts[:anchor] if anchor > 0 else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _dotted_expr(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_module(
    name: str, path: Path, tree: ast.Module, source: str, package: str
) -> ModuleInfo:
    info = ModuleInfo(name=name, path=path, tree=tree, source=source, package=package)
    is_package = path.name == "__init__.py"
    for stmt in _module_scope_imports(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                info.imports.append(ImportEdge(alias.name, stmt.lineno, is_from=False))
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level == 0:
                target = stmt.module or ""
            else:
                target = _resolve_relative(name, is_package, stmt.level, stmt.module or "")
            names = tuple(a.name for a in stmt.names if a.name != "*")
            info.imports.append(ImportEdge(target, stmt.lineno, is_from=True, names=names))
    # aliases: *all* imports (any scope) feed name resolution, like the
    # per-file rules — a deferred import still creates a real call edge
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                info.aliases[bound] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                target = node.module or ""
            else:
                target = _resolve_relative(name, is_package, node.level, node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.aliases[alias.asname or alias.name] = (
                    f"{target}.{alias.name}" if target else alias.name
                )
    _collect_defs(info, tree.body, prefix="", class_name=None)
    info.functions[MODULE_BODY] = FunctionInfo(
        module=name, qualname=MODULE_BODY, node=tree, lineno=1
    )
    return info


def _collect_defs(
    info: ModuleInfo,
    body: Sequence[ast.stmt],
    prefix: str,
    class_name: Optional[str],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{stmt.name}"
            decos = tuple(
                d for d in (_dotted_expr(dec.func if isinstance(dec, ast.Call) else dec)
                            for dec in stmt.decorator_list)
                if d is not None
            )
            info.functions[qual] = FunctionInfo(
                module=info.name,
                qualname=qual,
                node=stmt,
                lineno=stmt.lineno,
                class_name=class_name,
                decorators=decos,
            )
            _collect_defs(info, stmt.body, prefix=f"{qual}.<locals>.", class_name=None)
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(
                b for b in (_dotted_expr(base) for base in stmt.bases) if b is not None
            )
            info.class_bases[f"{prefix}{stmt.name}"] = bases
            _collect_defs(
                info, stmt.body, prefix=f"{prefix}{stmt.name}.", class_name=f"{prefix}{stmt.name}"
            )


class ProjectIndex:
    """All modules under one root, plus the derived call graph."""

    def __init__(self, root: Path, modules: Dict[str, ModuleInfo]) -> None:
        self.root = root
        self.modules = modules
        #: method name -> defining (module, qualname) keys, for the
        #: unique-name fallback resolution of ``obj.m(...)`` calls
        self._methods_by_name: Dict[str, List[FuncKey]] = {}
        #: top-level function name -> defining keys
        self._toplevel_by_name: Dict[str, List[FuncKey]] = {}
        for mod in modules.values():
            for fn in mod.functions.values():
                if fn.qualname == MODULE_BODY:
                    continue
                if fn.class_name is not None:
                    self._methods_by_name.setdefault(fn.name, []).append(fn.key)
                elif "." not in fn.qualname:
                    self._toplevel_by_name.setdefault(fn.name, []).append(fn.key)
        self._edges: Optional[Dict[FuncKey, FrozenSet[FuncKey]]] = None
        self._reverse: Optional[Dict[FuncKey, FrozenSet[FuncKey]]] = None

    # -- lookups ---------------------------------------------------------

    def function(self, key: FuncKey) -> Optional[FunctionInfo]:
        mod = self.modules.get(key[0])
        return mod.functions.get(key[1]) if mod is not None else None

    def resolve_export(self, module: str, name: str, _depth: int = 0) -> Optional[FuncKey]:
        """Follow ``from m import name`` through re-export chains to a def."""
        mod = self.modules.get(module)
        if mod is None or _depth > 4:
            return None
        if name in mod.functions:
            return (module, name)
        if name in mod.class_bases:  # class: constructor stands in for the class
            init = f"{name}.__init__"
            if init in mod.functions:
                return (module, init)
            return (module, name)  # class without project-visible __init__
        origin = mod.aliases.get(name)
        if origin and "." in origin:
            src_mod, src_name = origin.rsplit(".", 1)
            if src_mod in self.modules:
                return self.resolve_export(src_mod, src_name, _depth + 1)
        return None

    # -- call-graph construction ----------------------------------------

    def _resolve_call(
        self, mod: ModuleInfo, caller: FunctionInfo, call: ast.Call
    ) -> List[FuncKey]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in mod.functions:  # top-level def or class-less qualname
                return [(mod.name, name)]
            if name in mod.class_bases:
                init = f"{name}.__init__"
                return [(mod.name, init)] if init in mod.functions else []
            origin = mod.aliases.get(name)
            if origin:
                if origin in self.modules:
                    return []  # bare module alias called — not a function
                if "." in origin:
                    src_mod, src_name = origin.rsplit(".", 1)
                    if src_mod in self.modules:
                        resolved = self.resolve_export(src_mod, src_name)
                        return [resolved] if resolved else []
            return []
        if isinstance(func, ast.Attribute):
            attr = func.attr
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
                if caller.class_name is not None:
                    key = self._resolve_method(mod, caller.class_name, attr)
                    if key is not None:
                        return [key]
                return []
            dotted = _dotted_expr(func)
            if dotted is not None and "." in dotted:
                head, rest = dotted.split(".", 1)
                origin = mod.aliases.get(head)
                if origin is not None:
                    full = f"{origin}.{rest}"
                    target_mod, _, target_name = full.rpartition(".")
                    if target_mod in self.modules:
                        resolved = self.resolve_export(target_mod, target_name)
                        if resolved:
                            return [resolved]
                        return []
            # unknown receiver: unique-method-name heuristic only
            candidates = self._methods_by_name.get(attr, [])
            if len(candidates) == 1:
                return [candidates[0]]
            return []
        return []

    def _resolve_method(self, mod: ModuleInfo, class_name: str, attr: str) -> Optional[FuncKey]:
        """Find ``attr`` on ``class_name`` or a project-local base class."""
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, str]] = [(mod.name, class_name)]
        while stack:
            mod_name, cls = stack.pop()
            if (mod_name, cls) in seen:
                continue
            seen.add((mod_name, cls))
            m = self.modules.get(mod_name)
            if m is None:
                continue
            qual = f"{cls}.{attr}"
            if qual in m.functions:
                return (mod_name, qual)
            for base in m.class_bases.get(cls, ()):
                base_name = base.rsplit(".", 1)[-1]
                origin = m.aliases.get(base.split(".", 1)[0])
                if origin is not None and "." in base:
                    pass  # aliased module attribute base: resolved below
                # same-module base
                if base_name in m.class_bases:
                    stack.append((mod_name, base_name))
                    continue
                target = m.aliases.get(base_name)
                if target and "." in target:
                    src_mod, src_cls = target.rsplit(".", 1)
                    if src_mod in self.modules:
                        stack.append((src_mod, src_cls))
        return None

    def call_edges(self) -> Dict[FuncKey, FrozenSet[FuncKey]]:
        """caller key -> callee keys (built once, cached)."""
        if self._edges is not None:
            return self._edges
        edges: Dict[FuncKey, Set[FuncKey]] = {}
        for mod in self.modules.values():
            # map every AST node inside a def to its innermost function
            owner: Dict[int, FunctionInfo] = {}
            for fn in mod.functions.values():
                if fn.qualname == MODULE_BODY:
                    continue
                fn_node = fn.node
                assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
                for sub in ast.walk(fn_node):
                    owner.setdefault(id(sub), fn)
            top = mod.functions[MODULE_BODY]
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = owner.get(id(node), top)
                callees = self._resolve_call(mod, caller, node)
                if callees:
                    edges.setdefault(caller.key, set()).update(callees)
        # a module's top-level body "calls" every function it decorates via
        # registration decorators is out of scope; but nested defs are
        # reachable from their enclosing function by construction:
        for mod in self.modules.values():
            for fn in mod.functions.values():
                if "<locals>" in fn.qualname:
                    outer = fn.qualname.split(".<locals>.", 1)[0]
                    if outer in mod.functions:
                        edges.setdefault((mod.name, outer), set()).add(fn.key)
        self._edges = {k: frozenset(v) for k, v in edges.items()}
        return self._edges

    def reverse_edges(self) -> Dict[FuncKey, FrozenSet[FuncKey]]:
        if self._reverse is None:
            rev: Dict[FuncKey, Set[FuncKey]] = {}
            for caller, callees in self.call_edges().items():
                for callee in callees:
                    rev.setdefault(callee, set()).add(caller)
            self._reverse = {k: frozenset(v) for k, v in rev.items()}
        return self._reverse

    def reachable_from(self, roots: Sequence[FuncKey]) -> Set[FuncKey]:
        """Every function transitively callable from ``roots`` (inclusive)."""
        edges = self.call_edges()
        seen: Set[FuncKey] = set()
        stack = [r for r in roots if self.function(r) is not None]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(edges.get(key, ()))
        return seen

    def algorithmic_entrypoints(self) -> List[FuncKey]:
        """Public functions/methods of algorithmic packages (dataflow roots)."""
        out: List[FuncKey] = []
        for mod in self.modules.values():
            if not mod.is_algorithmic:
                continue
            for fn in mod.functions.values():
                if fn.qualname != MODULE_BODY and fn.is_public:
                    out.append(fn.key)
            out.append((mod.name, MODULE_BODY))  # import-time code runs too
        return sorted(out)


def build_project_index(root: Path) -> Tuple[ProjectIndex, List[Tuple[str, str]]]:
    """Parse every ``.py`` file under ``root`` into a :class:`ProjectIndex`.

    Returns ``(index, errors)`` where errors are ``(path, message)`` pairs
    for unparseable files (the caller maps them to :class:`~.engine.LintError`).
    """
    root = root.resolve()
    # dotted names are rooted at the package directory: ``src/repro`` holds
    # an __init__.py, so its modules are named ``repro.*``; a rootless
    # fixture tree keeps bare ``pkg.module`` names.
    base = root.parent if (root / "__init__.py").exists() else root

    modules: Dict[str, ModuleInfo] = {}
    errors: List[Tuple[str, str]] = []
    files = sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )
    for path in files:
        rel = path.relative_to(base)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            dotted = ".".join(parts[:-1])
        else:
            dotted = ".".join(parts)[: -len(".py")]
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError) as exc:
            errors.append((str(path), f"cannot analyze: {exc}"))
            continue
        rel_to_root = path.relative_to(root)
        package = rel_to_root.parts[0] if len(rel_to_root.parts) > 1 else ""
        modules[dotted] = _collect_module(dotted, path, tree, source, package)
    return ProjectIndex(root, modules), errors
