"""Findings baseline: incremental adoption for the project-level passes.

A baseline file records *accepted* findings — each with a justification —
so a newly introduced pass can gate regressions immediately without first
requiring every historical finding to be fixed.  Semantics:

- a finding matching a baseline entry is **suppressed** (counted as
  ``baselined``, not a violation);
- a baseline entry matching no current finding is **stale** — reported in
  the summary so fixed debt gets retired (``--write-baseline`` prunes it);
- matching is by ``(path, rule, message)``, *not* line number, so pure
  line drift (an unrelated edit above) does not churn the file.  Multiple
  identical findings in one file consume multiple identical entries.

The file is JSON, committed next to ``pyproject.toml``::

    {"version": 1, "entries": [
      {"path": "src/repro/core/punch.py", "rule": "REPRO114",
       "message": "layering: 'core' may not import 'filtering' ...",
       "reason": "driver module; relocation tracked in ROADMAP item ..."}
    ]}

Every entry **must** carry a non-empty ``reason`` — an unexplained
baseline entry defeats the point and is rejected at load time.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .rules import Violation

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "write_baseline", "apply_baseline"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule: str
    message: str
    reason: str

    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)


@dataclass
class Baseline:
    entries: List[BaselineEntry]
    path: Path

    def counts(self) -> Counter:
        return Counter(entry.key() for entry in self.entries)


def load_baseline(path: Path) -> Baseline:
    """Parse and validate a baseline file (raises ValueError on bad shape)."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: expected a dict with version={BASELINE_VERSION}"
        )
    raw = doc.get("entries")
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise ValueError(f"baseline {path}: entry {i} is not an object")
        try:
            entry = BaselineEntry(
                path=str(item["path"]),
                rule=str(item["rule"]),
                message=str(item["message"]),
                reason=str(item.get("reason", "")).strip(),
            )
        except KeyError as exc:
            raise ValueError(f"baseline {path}: entry {i} missing {exc}") from exc
        if not entry.reason:
            raise ValueError(
                f"baseline {path}: entry {i} ({entry.rule} at {entry.path}) has "
                "no 'reason' — every accepted finding must be justified"
            )
        entries.append(entry)
    return Baseline(entries=entries, path=path)


def write_baseline(
    path: Path, violations: Sequence[Violation], reasons: Dict[Tuple[str, str, str], str] | None = None
) -> Baseline:
    """Write the current findings as a fresh baseline.

    Reasons are carried over from an existing baseline where keys match;
    new entries get a placeholder that loudly demands editing (the loader
    accepts it — it is non-empty — but reviews will see it).
    """
    reasons = reasons or {}
    entries = [
        BaselineEntry(
            path=v.path,
            rule=v.rule,
            message=v.message,
            reason=reasons.get(
                (v.path, v.rule, v.message),
                "TODO: justify this accepted finding",
            ),
        )
        for v in sorted(violations, key=lambda v: v.key())
    ]
    doc = {
        "version": BASELINE_VERSION,
        "entries": [
            {"path": e.path, "rule": e.rule, "message": e.message, "reason": e.reason}
            for e in entries
        ],
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return Baseline(entries=entries, path=path)


def apply_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> Tuple[List[Violation], int, List[BaselineEntry]]:
    """Split findings against a baseline.

    Returns ``(remaining, baselined_count, stale_entries)`` where
    ``remaining`` are findings not covered by the baseline and
    ``stale_entries`` are baseline entries that matched nothing (fixed debt
    to retire).
    """
    budget = baseline.counts()
    remaining: List[Violation] = []
    baselined = 0
    for v in sorted(violations, key=lambda v: v.key()):
        key = (v.path, v.rule, v.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            remaining.append(v)
    stale = [e for e in baseline.entries if budget.get(e.key(), 0) > 0]
    # consume the stale budget so duplicate entries report once each
    seen: Counter = Counter()
    deduped_stale: List[BaselineEntry] = []
    for e in stale:
        if seen[e.key()] < budget[e.key()]:
            seen[e.key()] += 1
            deduped_stale.append(e)
    return remaining, baselined, deduped_stale
