"""Cross-file contract checks (REPRO115–116): twins and engine registry.

The repo's performance story rests on *twin kernels*: every vectorized hot
path keeps a scalar ``*_reference`` implementation, and a test imports both
and pins bit-identity.  The registry story is analogous: every
``@register_engine`` class must implement the full
:class:`~repro.cutengine.base.CutEngine` surface and be exercised by the
conformance suite.  Both contracts span files — a kernel lives in ``src``,
its twin gate in ``tests`` — so no per-file rule can see them drift.

REPRO115 (twin-drift)
    For every ``X_reference`` definition: a twin ``X`` (or ``_X``) must
    exist in the same module, its signature must stay compatible
    (shared leading parameters identical in name and order; extras on
    either side must carry defaults), and at least one test module must
    reference **both** names — otherwise the bit-identity contract is
    unenforced and the pair can silently drift.

REPRO116 (engine-conformance)
    Every ``@register_engine`` class must define or inherit ``solve`` and
    ``solve_chain``, declare a non-empty ``name``, and be covered by a
    conformance-suite parametrization: either a
    ``pytest.mark.parametrize`` axis built from ``available_engines()``
    (auto-covers future engines) or one that literally lists the engine's
    name.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import MODULE_BODY, ModuleInfo, ProjectIndex
from .rules import Violation

__all__ = ["check_twin_drift", "check_engine_conformance", "test_identifier_index"]


def _violation(rule: str, path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


# ---------------------------------------------------------------------------
# REPRO115: twin drift
# ---------------------------------------------------------------------------


def _param_names(node: ast.AST) -> Tuple[List[str], int]:
    """Positional parameter names (posonly + regular) and their default count."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    return names, len(args.defaults)


def _signatures_compatible(ref: ast.AST, twin: ast.AST) -> Optional[str]:
    """None when compatible, else a human-readable mismatch description."""
    ref_names, ref_defaults = _param_names(ref)
    twin_names, twin_defaults = _param_names(twin)
    shared = min(len(ref_names), len(twin_names))
    if ref_names[:shared] != twin_names[:shared]:
        return (
            f"parameter names diverge: reference has {ref_names}, "
            f"twin has {twin_names}"
        )
    # every parameter one side adds beyond the shared prefix needs a default,
    # so both spellings stay callable with the reference's argument list
    for names, defaults, label in (
        (ref_names, ref_defaults, "reference"),
        (twin_names, twin_defaults, "twin"),
    ):
        extras = len(names) - shared
        if extras > defaults:
            return (
                f"{label} adds parameter(s) {names[shared:]} without defaults; "
                "twins must accept the shared argument list"
            )
    return None


def test_identifier_index(test_index: ProjectIndex) -> Dict[str, Set[str]]:
    """test module name -> every identifier the module references.

    Covers ``from m import f`` (alias names), attribute access ``m.f``, and
    bare names — enough to decide "does some test touch both twins".
    """
    out: Dict[str, Set[str]] = {}
    for name, mod in test_index.modules.items():
        idents: Set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Name):
                idents.add(node.id)
            elif isinstance(node, ast.Attribute):
                idents.add(node.attr)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    idents.add(alias.name.rsplit(".", 1)[-1])
        out[name] = idents
    return out


def check_twin_drift(
    index: ProjectIndex,
    test_index: Optional[ProjectIndex],
    display_paths: Dict[str, str],
) -> Iterator[Violation]:
    """REPRO115: every ``*_reference`` kernel keeps a compatible, tested twin."""
    test_idents = test_identifier_index(test_index) if test_index is not None else {}
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        path = display_paths.get(mod_name, str(mod.path))
        for qual in sorted(mod.functions):
            fn = mod.functions[qual]
            if fn.qualname == MODULE_BODY or not fn.name.endswith("_reference"):
                continue
            base = fn.name[: -len("_reference")]
            prefix = qual[: -len(fn.name)]
            twin = mod.functions.get(f"{prefix}{base}") or mod.functions.get(
                f"{prefix}_{base}"
            )
            if twin is None:
                yield _violation(
                    "REPRO115", path, fn.node,
                    f"reference kernel '{fn.name}' has no twin '{base}' (or "
                    f"'_{base}') in {mod_name}; the vectorized/scalar pair "
                    "must live side by side",
                )
                continue
            mismatch = _signatures_compatible(fn.node, twin.node)
            if mismatch is not None:
                yield _violation(
                    "REPRO115", path, twin.node,
                    f"twin '{twin.name}' drifted from '{fn.name}': {mismatch}",
                )
            if test_index is not None:
                covered = any(
                    fn.name in idents and twin.name in idents
                    for idents in test_idents.values()
                )
                if not covered:
                    yield _violation(
                        "REPRO115", path, fn.node,
                        f"no test module references both '{twin.name}' and "
                        f"'{fn.name}'; the bit-identity contract for this "
                        "twin pair is unenforced",
                    )


# ---------------------------------------------------------------------------
# REPRO116: engine registry conformance
# ---------------------------------------------------------------------------

_ENGINE_SURFACE = ("solve", "solve_chain")


def _registered_engines(index: ProjectIndex) -> List[Tuple[ModuleInfo, str, ast.ClassDef, str]]:
    """(module, class qualname, class node, engine name) per @register_engine."""
    out: List[Tuple[ModuleInfo, str, ast.ClassDef, str]] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = False
            for dec in node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                leaf = target.attr if isinstance(target, ast.Attribute) else (
                    target.id if isinstance(target, ast.Name) else ""
                )
                if leaf == "register_engine":
                    decorated = True
            if not decorated:
                continue
            engine_name = ""
            for stmt in node.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "name"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        engine_name = value.value
            out.append((mod, node.name, node, engine_name))
    return out


def _class_provides(index: ProjectIndex, mod: ModuleInfo, cls: str, method: str) -> bool:
    return index._resolve_method(mod, cls, method) is not None


def _parametrized_engine_coverage(
    test_index: ProjectIndex,
) -> Tuple[bool, Set[str], bool]:
    """(found_any_parametrize, literal names covered, covers_all_registered).

    Scans conformance-style test modules for
    ``pytest.mark.parametrize("engine...", X)`` axes.  ``X`` referencing
    ``available_engines`` (directly or through a module-level assignment)
    covers every registered engine by construction.
    """
    found = False
    names: Set[str] = set()
    covers_all = False
    for mod in test_index.modules.values():
        assigns: Dict[str, ast.expr] = {}
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    assigns[target.id] = stmt.value
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "parametrize"):
                continue
            if not node.args or not isinstance(node.args[0], ast.Constant):
                continue
            argnames = node.args[0].value
            if not (isinstance(argnames, str) and "engine" in argnames):
                continue
            if len(node.args) < 2:
                continue
            found = True
            axis: ast.AST = node.args[1]
            if isinstance(axis, ast.Name) and axis.id in assigns:
                axis = assigns[axis.id]
            for sub in ast.walk(axis):
                if isinstance(sub, ast.Name) and sub.id == "available_engines":
                    covers_all = True
                elif isinstance(sub, ast.Attribute) and sub.attr == "available_engines":
                    covers_all = True
                elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    names.add(sub.value)
    return found, names, covers_all


def check_engine_conformance(
    index: ProjectIndex,
    test_index: Optional[ProjectIndex],
    display_paths: Dict[str, str],
) -> Iterator[Violation]:
    """REPRO116: registered engines implement the surface and are suite-covered."""
    engines = _registered_engines(index)
    if not engines:
        return
    coverage: Optional[Tuple[bool, Set[str], bool]] = None
    if test_index is not None:
        coverage = _parametrized_engine_coverage(test_index)
    for mod, cls, node, engine_name in engines:
        path = display_paths.get(mod.name, str(mod.path))
        if not engine_name:
            yield _violation(
                "REPRO116", path, node,
                f"engine class '{cls}' has no literal non-empty 'name' class "
                "attribute; the registry and cache tokens key on it",
            )
        for method in _ENGINE_SURFACE:
            if not _class_provides(index, mod, cls, method):
                yield _violation(
                    "REPRO116", path, node,
                    f"engine class '{cls}' neither defines nor inherits "
                    f"'{method}'; the CutEngine surface is incomplete",
                )
        if coverage is not None and engine_name:
            found, literal_names, covers_all = coverage
            if not found:
                yield _violation(
                    "REPRO116", path, node,
                    f"no conformance-suite parametrize axis found for engine "
                    f"'{engine_name}'; the registry-driven suite is missing",
                )
            elif not covers_all and engine_name not in literal_names:
                yield _violation(
                    "REPRO116", path, node,
                    f"engine '{engine_name}' is not covered by any "
                    "conformance parametrization (axis neither uses "
                    "available_engines() nor lists it)",
                )
