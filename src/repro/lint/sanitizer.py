"""Runtime sanitizer: freeze shared views, verify RNG parity & invariants.

The static rules in :mod:`.rules` catch hazard *patterns*; this module
catches hazard *instances* while a run executes.  Mirroring
:class:`~repro.perf.timers.PhaseProfiler`, the active sanitizer is
process-global and disabled by default, so instrumented code pays one
attribute check until ``--sanitize`` (or ``REPRO_SANITIZE=1``) turns it on.

Three check families:

- **view freezing** — :meth:`Sanitizer.freeze_graph` sets
  ``writeable=False`` on every CSR array of a :class:`~repro.graph.graph.Graph`,
  so an in-place write anywhere downstream raises immediately at the
  offending line instead of corrupting a shared segment silently;
- **RNG draw parity** — phases declare their draw signature
  (``rng_begin``/``rng_end``); the sanitizer replays the declared draws on a
  clone of the pre-phase bit-generator state and verifies the live generator
  landed in the same state.  This proves the pooled and legacy sweeps
  consume *exactly* the declared draws — the serial≡parallel contract;
- **partition invariants** — :meth:`Sanitizer.check_partition` re-derives
  cut cost from boundary-edge accounting, checks cell sizes against ``U``
  and cell connectivity, and compares against the cost the phase reported.

Failures are recorded as :class:`SanitizerViolation` entries and surfaced
through ``run_report()["sanitizer"]``; the pytest gate (see
``tests/conftest.py``) fails any test that ends with recorded violations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime — hook sites live below core
    from ..graph.graph import Graph

__all__ = [
    "Sanitizer",
    "SanitizerViolation",
    "get_sanitizer",
    "set_sanitizer",
    "sanitize_enabled",
]

#: Graph array fields frozen by :meth:`Sanitizer.freeze_graph`
_GRAPH_ARRAYS = ("xadj", "adjncy", "eid", "edge_u", "edge_v", "vsize", "ewgt", "coords")

#: a declared RNG draw: method name + positional args, e.g. ("permutation", 1024)
DrawSignature = Tuple[Any, ...]


@dataclass(frozen=True)
class SanitizerViolation:
    """One failed runtime check."""

    phase: str
    kind: str
    message: str

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready form for ``run_report()``."""
        return {"phase": self.phase, "kind": self.kind, "message": self.message}


def _states_equal(a: Any, b: Any) -> bool:
    """Deep-compare two ``bit_generator.state`` payloads.

    The state dict of MT19937 embeds an ndarray, so plain ``==`` would
    raise; compare structurally instead.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        if a.keys() != b.keys():
            return False
        return all(_states_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_states_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


class Sanitizer:
    """Process-global runtime checker; see the module docstring."""

    __slots__ = ("enabled", "violations", "checks", "rng_draws", "frozen_graphs")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.violations: List[SanitizerViolation] = []
        #: check-name -> times executed (all checks, passing or not)
        self.checks: Dict[str, int] = {}
        #: phase -> declared draws verified so far
        self.rng_draws: Dict[str, int] = {}
        self.frozen_graphs: int = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded state (between runs / tests)."""
        self.violations.clear()
        self.checks.clear()
        self.rng_draws.clear()
        self.frozen_graphs = 0

    def _record(self, name: str) -> None:
        self.checks[name] = self.checks.get(name, 0) + 1

    def _fail(self, phase: str, kind: str, message: str) -> None:
        self.violations.append(SanitizerViolation(phase=phase, kind=kind, message=message))

    def report(self) -> Dict[str, Any]:
        """JSON-ready summary for ``run_report()["sanitizer"]``."""
        return {
            "enabled": self.enabled,
            "checks": dict(sorted(self.checks.items())),
            "rng_draws": dict(sorted(self.rng_draws.items())),
            "frozen_graphs": self.frozen_graphs,
            "violations": [v.as_dict() for v in self.violations],
        }

    # ------------------------------------------------------------------
    # view freezing
    # ------------------------------------------------------------------
    def freeze_graph(self, g: "Graph", label: str = "graph") -> "Graph":
        """Set ``writeable=False`` on every array of ``g``; returns ``g``.

        Any later in-place write through these arrays (or a zero-copy view
        of them) raises ``ValueError`` at the offending statement.
        """
        if not self.enabled:
            return g
        # materialize the memoized gather so it is frozen too
        g.half_edge_weights().setflags(write=False)
        for name in _GRAPH_ARRAYS:
            arr = getattr(g, name, None)
            if isinstance(arr, np.ndarray):
                arr.setflags(write=False)
        self.frozen_graphs += 1
        self._record(f"freeze.{label}")
        return g

    # ------------------------------------------------------------------
    # RNG draw parity
    # ------------------------------------------------------------------
    def rng_begin(self, rng: np.random.Generator) -> Optional[Dict[str, Any]]:
        """Snapshot the generator state before a phase's declared draws."""
        if not self.enabled:
            return None
        return copy.deepcopy(rng.bit_generator.state)

    def rng_end(
        self,
        phase: str,
        rng: np.random.Generator,
        token: Optional[Dict[str, Any]],
        draws: Sequence[DrawSignature],
    ) -> None:
        """Verify the phase consumed exactly its declared ``draws``.

        ``draws`` is the phase's declared signature — e.g. a natural-cut
        sweep declares ``[("permutation", g.n)]``.  A clone of the
        pre-phase state replays the declaration; if the clone and the live
        generator disagree, the phase drew more, fewer, or different
        values than its contract says, which is exactly the divergence
        that breaks serial≡pooled parity.
        """
        if not self.enabled or token is None:
            return
        self._record(f"rng.{phase}")
        clone_bg = type(rng.bit_generator)()
        clone_bg.state = copy.deepcopy(token)
        clone = np.random.Generator(clone_bg)
        for sig in draws:
            method = str(sig[0])
            getattr(clone, method)(*sig[1:])
        self.rng_draws[phase] = self.rng_draws.get(phase, 0) + len(draws)
        if not _states_equal(clone.bit_generator.state, rng.bit_generator.state):
            declared = ", ".join(
                f"{sig[0]}{tuple(sig[1:])}" for sig in draws
            ) or "<no draws>"
            self._fail(
                phase,
                "rng-parity",
                f"generator state diverged from declared draw signature "
                f"[{declared}]; phase consumed undeclared or missing draws",
            )

    # ------------------------------------------------------------------
    # structural invariants
    # ------------------------------------------------------------------
    def check_fragments(
        self, phase: str, fragment_graph: "Graph", source: "Graph", U: int
    ) -> None:
        """Fragment graph must conserve total size and respect ``U``."""
        if not self.enabled:
            return
        self._record(f"fragments.{phase}")
        if fragment_graph.total_size() != source.total_size():
            self._fail(
                phase,
                "fragment-size",
                f"fragment graph size {fragment_graph.total_size()} != "
                f"input size {source.total_size()}",
            )
        if fragment_graph.n and int(fragment_graph.vsize.max()) > U:
            self._fail(
                phase,
                "fragment-bound",
                f"fragment of size {int(fragment_graph.vsize.max())} exceeds U={U}",
            )

    def check_partition(
        self,
        phase: str,
        graph: "Graph",
        labels: np.ndarray,
        U: Optional[int] = None,
        expected_cost: Optional[float] = None,
        require_connected: bool = True,
    ) -> None:
        """Assert partition invariants after a phase.

        Re-derives the cut cost from boundary-edge accounting (sum of
        ``ewgt`` over edges whose endpoints carry different labels) and
        compares it with the cost the phase reported; checks every cell
        fits in ``U`` and (optionally) induces a connected subgraph —
        rebalancing is allowed to disconnect cells, so the balanced driver
        passes ``require_connected=False`` as the paper permits.
        """
        if not self.enabled:
            return
        from ..core.partition import Partition  # deferred: avoids an import cycle

        self._record(f"partition.{phase}")
        part = Partition(graph, np.asarray(labels))
        if U is not None and not part.respects_bound(U):
            self._fail(
                phase,
                "size-bound",
                f"cell of size {part.max_cell_size()} exceeds U={U}",
            )
        if int(part.cell_sizes.sum()) != graph.total_size():
            self._fail(
                phase,
                "size-accounting",
                f"cell sizes sum to {int(part.cell_sizes.sum())}, "
                f"graph totals {graph.total_size()}",
            )
        if expected_cost is not None and not np.isclose(
            part.cost, expected_cost, rtol=1e-9, atol=1e-6
        ):
            self._fail(
                phase,
                "cost-accounting",
                f"boundary-edge accounting gives cost {part.cost!r}, "
                f"phase reported {expected_cost!r}",
            )
        if require_connected and not part.all_cells_connected():
            bad = int((~part.connected_cells()).sum())
            self._fail(
                phase,
                "disconnected-cell",
                f"{bad} cell(s) do not induce a connected subgraph",
            )


#: the process-global sanitizer; disabled (and therefore near-free) by default
_ACTIVE = Sanitizer(enabled=False)


def get_sanitizer() -> Sanitizer:
    """The process-global sanitizer instrumented code reports into."""
    return _ACTIVE


def set_sanitizer(sanitizer: Sanitizer) -> Sanitizer:
    """Swap the process-global sanitizer; returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = sanitizer
    return prev


def sanitize_enabled() -> bool:
    """Whether the active sanitizer is recording."""
    return _ACTIVE.enabled
