"""Lint engine: parse modules, run the rule catalog, apply suppressions.

One file is parsed once (``ast.parse``); each rule whose scope matches the
module path runs over the shared tree.  Per-line suppressions use the
project-specific marker::

    risky_call()  # repro: noqa(REPRO104)
    other_call()  # repro: noqa(REPRO104, REPRO105)
    anything()    # repro: noqa          <- suppresses every rule on the line

A suppression silences violations *reported on that physical line* only.
Unparseable files are reported as :class:`LintError` entries, not crashes —
the CLI maps them to exit code 2.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .rules import RULES, LintContext, Rule, Violation

__all__ = ["LintError", "LintResult", "lint_source", "lint_file", "lint_paths"]

PathLike = Union[str, Path]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\(\s*([A-Z0-9_,\s]*?)\s*\))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintError:
    """A file that could not be analyzed (syntax error, unreadable)."""

    path: str
    message: str


@dataclass
class LintResult:
    """Violations and analysis errors across one lint invocation."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 clean, 1 violations found, 2 analysis errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def merge(self, other: "LintResult") -> None:
        """Fold ``other`` into this result in place."""
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed

    def sorted_violations(self) -> List[Violation]:
        """Violations in stable (path, line, col, rule) order."""
        return sorted(self.violations, key=lambda v: v.key())


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids.

    ``None`` means a blanket ``# repro: noqa`` (all rules); a set restricts
    the suppression to the listed rule ids.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:
            continue
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group(1)
        if codes is None:
            out[lineno] = None
        else:
            ids = {c.strip().upper() for c in codes.split(",") if c.strip()}
            out[lineno] = ids or None
    return out


def _select_rules(select: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    if select is None:
        return RULES
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - {r.id for r in RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(r for r in RULES if r.id in wanted)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one module given as source text."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(
            LintError(path=path, message=f"syntax error at line {exc.lineno}: {exc.msg}")
        )
        return result
    ctx = LintContext(path=path, tree=tree, source=source)
    noqa = _noqa_lines(source)
    seen: Set[Tuple[str, int, int, str]] = set()
    for rule in _select_rules(select):
        if not ctx.in_scope(rule.scope):
            continue
        for violation in rule.check(ctx):
            if violation.key() in seen:
                continue
            seen.add(violation.key())
            suppressed_ids = noqa.get(violation.line, "missing")
            if suppressed_ids is None or (
                isinstance(suppressed_ids, set) and violation.rule in suppressed_ids
            ):
                result.suppressed += 1
                continue
            result.violations.append(violation)
    result.violations.sort(key=lambda v: v.key())
    return result


def lint_file(path: PathLike, select: Optional[Sequence[str]] = None) -> LintResult:
    """Lint one file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files_checked=1)
        result.errors.append(LintError(path=str(p), message=f"cannot read file: {exc}"))
        return result
    return lint_source(source, path=str(p), select=select)


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py") if "__pycache__" not in q.parts))
        else:
            out.append(p)
    # canonical order + dedup so reports are stable regardless of CLI order
    unique = sorted(set(out), key=lambda q: str(q))
    return unique


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files and directories (recursively); returns a merged result."""
    total = LintResult()
    for p in iter_python_files(paths):
        total.merge(lint_file(p, select=select))
    total.violations.sort(key=lambda v: v.key())
    return total
