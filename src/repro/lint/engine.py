"""Lint engine: parse modules, run the rule catalog, apply suppressions.

One file is parsed once (``ast.parse``); each rule whose scope matches the
module path runs over the shared tree.  Per-line suppressions use the
project-specific marker::

    risky_call()  # repro: noqa(REPRO104)
    other_call()  # repro: noqa(REPRO104, REPRO105)
    anything()    # repro: noqa          <- suppresses every rule on the line

A suppression silences violations *reported on that physical line* only.
Unparseable files are reported as :class:`LintError` entries, not crashes —
the CLI maps them to exit code 2.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .rules import KNOWN_RULE_IDS, META_RULE_ID, RULES, LintContext, Rule, Violation

__all__ = [
    "LintError",
    "LintResult",
    "lint_source",
    "lint_file",
    "lint_paths",
    "parse_noqa",
]

PathLike = Union[str, Path]

#: every ``# repro: noqa`` marker on a line (there may be several after a
#: code-folding merge); the id list accepts any comma-separated tokens so
#: that *unknown* ids are caught and reported instead of silently dropped
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\(\s*([^)]*?)\s*\))?", re.IGNORECASE)


def _comments(source: str) -> List[Tuple[int, int, str]]:
    """``(line, col, text)`` for every comment token in the module.

    Tokenizing (rather than scanning raw lines) means docstrings that merely
    *describe* the noqa syntax are never mistaken for suppression markers.
    Falls back to a whole-line scan if tokenization fails — the caller has
    already parsed the file, so this only happens on exotic encodings.
    """
    import io
    import tokenize

    out: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out = [
            (lineno, 0, line)
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    return out


@dataclass(frozen=True)
class LintError:
    """A file that could not be analyzed (syntax error, unreadable)."""

    path: str
    message: str


@dataclass
class LintResult:
    """Violations and analysis errors across one lint invocation."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: findings accepted by the baseline file (project mode)
    baselined: int = 0
    #: baseline entries matching no current finding — fixed debt to retire
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 violations found, 2 analysis errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def merge(self, other: "LintResult") -> None:
        """Fold ``other`` into this result in place."""
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed
        self.baselined += other.baselined
        self.stale_baseline.extend(other.stale_baseline)

    def sorted_violations(self) -> List[Violation]:
        """Violations in stable (path, line, col, rule) order."""
        return sorted(self.violations, key=lambda v: v.key())


def parse_noqa(
    source: str, path: str = "<string>"
) -> Tuple[Dict[int, Optional[Set[str]]], List[Violation]]:
    """Parse every ``# repro: noqa`` marker in a module.

    Returns ``(suppressions, meta_violations)``:

    - ``suppressions`` maps 1-based line numbers to suppressed rule ids;
      ``None`` means a blanket ``# repro: noqa`` (all rules).  Multiple
      markers on one line merge; a blanket marker wins.  Ids are
      comma-separated and case-insensitive.
    - ``meta_violations`` are :data:`~.rules.META_RULE_ID` (REPRO000)
      findings for ids that name no known rule — a typo'd suppression
      silently *not* suppressing (or shadow-suppressing a future rule) is
      itself a hazard, so it is reported instead of ignored.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    meta: List[Violation] = []
    for lineno, col, comment in _comments(source):
        if "noqa" not in comment:
            continue
        for m in _NOQA_RE.finditer(comment):
            codes = m.group(1)
            if codes is None:
                out[lineno] = None
                continue
            ids = {c.strip().upper() for c in codes.split(",") if c.strip()}
            if not ids:
                out[lineno] = None  # ``# repro: noqa()`` == blanket
                continue
            unknown = sorted(ids - KNOWN_RULE_IDS)
            for bad in unknown:
                meta.append(
                    Violation(
                        path=path,
                        line=lineno,
                        col=col + m.start() + 1,
                        rule=META_RULE_ID,
                        message=(
                            f"unknown rule id '{bad}' in '# repro: noqa(...)'; "
                            "this marker suppresses nothing — fix the id or "
                            "remove it"
                        ),
                    )
                )
            known = ids & KNOWN_RULE_IDS
            if known:
                existing = out.get(lineno, "missing")
                if existing is None:
                    continue  # blanket already covers the line
                if isinstance(existing, set):
                    existing.update(known)
                else:
                    out[lineno] = set(known)
    return out, meta


def _select_rules(select: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    if select is None:
        return RULES
    wanted = {s.strip().upper() for s in select if s.strip()}
    # project-pass ids (REPRO110+) are legal selections that simply match no
    # per-file rule; truly unknown ids are an invocation error
    unknown = wanted - KNOWN_RULE_IDS
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(r for r in RULES if r.id in wanted)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one module given as source text."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(
            LintError(path=path, message=f"syntax error at line {exc.lineno}: {exc.msg}")
        )
        return result
    ctx = LintContext(path=path, tree=tree, source=source)
    noqa, meta = parse_noqa(source, path=path)
    if select is None or any(s.strip().upper() == META_RULE_ID for s in select):
        result.violations.extend(meta)
    seen: Set[Tuple[str, int, int, str]] = set()
    for rule in _select_rules(select):
        if not ctx.in_scope(rule.scope):
            continue
        for violation in rule.check(ctx):
            if violation.key() in seen:
                continue
            seen.add(violation.key())
            suppressed_ids = noqa.get(violation.line, "missing")
            if suppressed_ids is None or (
                isinstance(suppressed_ids, set) and violation.rule in suppressed_ids
            ):
                result.suppressed += 1
                continue
            result.violations.append(violation)
    result.violations.sort(key=lambda v: v.key())
    return result


def lint_file(path: PathLike, select: Optional[Sequence[str]] = None) -> LintResult:
    """Lint one file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files_checked=1)
        result.errors.append(LintError(path=str(p), message=f"cannot read file: {exc}"))
        return result
    return lint_source(source, path=str(p), select=select)


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py") if "__pycache__" not in q.parts))
        else:
            out.append(p)
    # canonical order + dedup so reports are stable regardless of CLI order
    unique = sorted(set(out), key=lambda q: str(q))
    return unique


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files and directories (recursively); returns a merged result."""
    total = LintResult()
    for p in iter_python_files(paths):
        total.merge(lint_file(p, select=select))
    total.violations.sort(key=lambda v: v.key())
    return total
