"""Reporters for lint results: editor-friendly text and machine JSON.

Text format is the conventional ``path:line:col: RULE message`` so editors
and CI annotations can parse it; JSON carries the same data plus summary
counters for dashboards.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import LintResult
from .rules import PROJECT_RULES, RULES

__all__ = ["format_text", "format_json", "format_rule_list"]


def format_text(result: LintResult) -> str:
    """Render ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = []
    for v in result.sorted_violations():
        lines.append(f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}")
    for err in result.errors:
        lines.append(f"{err.path}: error: {err.message}")
    for stale in result.stale_baseline:
        lines.append(f"stale baseline entry (fixed? retire it): {stale}")
    n = len(result.violations)
    summary = (
        f"{result.files_checked} file(s) checked, "
        f"{n} violation(s), {result.suppressed} suppressed"
    )
    if result.baselined:
        summary += f", {result.baselined} baselined"
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    if result.errors:
        summary += f", {len(result.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Render the result as a stable JSON document."""
    doc: Dict[str, Any] = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in result.sorted_violations()
        ],
        "errors": [{"path": e.path, "message": e.message} for e in result.errors],
        "summary": {
            "files_checked": result.files_checked,
            "violations": len(result.violations),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": list(result.stale_baseline),
            "errors": len(result.errors),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_rule_list() -> str:
    """Render the rule catalog (id, scope, description) for ``--list-rules``."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.id}  [{rule.scope:<11}]  {rule.name}: {rule.description}")
    for info in PROJECT_RULES:
        lines.append(f"{info.id}  [{info.scope:<11}]  {info.name}: {info.description}")
    return "\n".join(lines)
