"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 analysis/usage errors — so CI
gates can distinguish "tree is dirty" from "linter is broken".
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .engine import lint_paths
from .report import format_json, format_rule_list, format_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & parallel-safety analyzer for the PUNCH reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(format_rule_list())
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [s for s in args.select.split(",") if s.strip()]
    try:
        result = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return result.exit_code
