"""Command-line front end: ``python -m repro.lint [paths...]``.

Two modes share one reporter and exit-code contract:

- **file mode** (default): per-file rules over the given paths;
- **project mode** (``--project``): the whole-project analysis — per-file
  rules plus call-graph dataflow (REPRO110–113), architecture layering
  (REPRO114), and twin/registry contracts (REPRO115–116) — with the
  findings baseline applied (``lint_baseline.json`` next to
  ``pyproject.toml`` unless overridden).

Exit codes: 0 clean, 1 violations found, 2 analysis/usage errors — so CI
gates can distinguish "tree is dirty" from "linter is broken".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import lint_paths
from .report import format_json, format_rule_list, format_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & parallel-safety analyzer for the PUNCH reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src); with --project, "
        "the single package root to analyze",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-project analysis: call-graph dataflow, layering DAG, "
        "twin/registry contracts, findings baseline",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="findings baseline file (default: lint_baseline.json next to "
        "pyproject.toml; project mode only)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current project findings to the baseline file and exit 0 "
        "(reasons are carried over where findings match)",
    )
    parser.add_argument(
        "--tests-dir",
        metavar="DIR",
        default=None,
        help="tests directory for contract coverage checks (default: "
        "<repo root>/tests)",
    )
    parser.add_argument(
        "--dead-code",
        action="store_true",
        help="print the call-graph dead-code report (informational; exit 0)",
    )
    return parser


def _run_project(args: argparse.Namespace, select: Optional[List[str]]) -> int:
    from .baseline import DEFAULT_BASELINE_NAME, write_baseline
    from .project import analyze_project, dead_functions

    if len(args.paths) != 1:
        print("error: --project takes exactly one root directory", file=sys.stderr)
        return 2
    root = Path(args.paths[0])
    if not root.is_dir():
        print(f"error: --project root {root} is not a directory", file=sys.stderr)
        return 2
    analysis = analyze_project(
        root,
        tests_dir=args.tests_dir,
        select=select,
        baseline_path=args.baseline,
        use_baseline=not (args.no_baseline or args.write_baseline),
    )
    if args.dead_code:
        extras = [i for i in (analysis.test_index,) if i is not None]
        dead = dead_functions(analysis.index, extras)
        for (mod, qual), _path in dead:
            print(f"{mod}.{qual}: never referenced by src, tests, or benchmarks")
        print(f"{len(dead)} unreferenced function(s)")
        return 0
    if args.write_baseline:
        bp = (
            Path(args.baseline)
            if args.baseline is not None
            else analysis.repo_root / DEFAULT_BASELINE_NAME
        )
        reasons = (
            {e.key(): e.reason for e in analysis.baseline.entries}
            if analysis.baseline is not None
            else None
        )
        # carry reasons over from the previous baseline when it loads
        if reasons is None and bp.is_file():
            from .baseline import load_baseline

            try:
                reasons = {e.key(): e.reason for e in load_baseline(bp).entries}
            except ValueError:
                reasons = None
        written = write_baseline(bp, analysis.prebaseline, reasons)
        print(f"wrote {len(written.entries)} finding(s) to {bp}")
        return 0
    result = analysis.result
    print(format_json(result) if args.format == "json" else format_text(result))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(format_rule_list())
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [s for s in args.select.split(",") if s.strip()]
    if args.project or args.dead_code:
        try:
            return _run_project(args, select)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return result.exit_code
