"""``repro.lint``: determinism & parallel-safety static analysis.

PUNCH's reproduction contracts — bit-identical partitions across
serial/threads/processes backends, RNG-draw parity between the pooled and
legacy sweeps, and read-only zero-copy :class:`~repro.parallel.shared_graph.SharedGraph`
views — are pinned end-to-end by tests, but an end-to-end diff on a
multi-hour instance is the worst possible place to discover a determinism
bug.  This package catches the known hazard classes *at analysis time*:

- a project-specific AST analyzer (:mod:`.rules`, :mod:`.engine`) with a
  rule registry, per-line ``# repro: noqa(RULE)`` suppressions, and
  text/JSON reporters (:mod:`.report`) behind ``python -m repro.lint``;
- a runtime sanitizer (:mod:`.sanitizer`) that freezes CSR/shared views,
  cross-checks RNG draw parity at phase boundaries, and asserts partition
  invariants, surfacing results in ``run_report()["sanitizer"]``.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and how to add rules.
"""

from __future__ import annotations

from .engine import LintError, LintResult, lint_file, lint_paths, lint_source
from .report import format_json, format_text
from .rules import RULES, RULES_BY_ID, Rule, Violation
from .sanitizer import Sanitizer, SanitizerViolation, get_sanitizer, set_sanitizer

__all__ = [
    "LintError",
    "LintResult",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Sanitizer",
    "SanitizerViolation",
    "Violation",
    "format_json",
    "format_text",
    "get_sanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
    "set_sanitizer",
]
