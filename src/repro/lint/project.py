"""Whole-project analysis: ``python -m repro.lint --project <root>``.

Runs, over one shared :class:`~.callgraph.ProjectIndex`:

1. every per-file rule (REPRO101–109) plus noqa meta-checks (REPRO000);
2. the interprocedural dataflow passes (REPRO110–113, :mod:`.dataflow`);
3. the architecture layering gates (REPRO114, :mod:`.layers`) against the
   ``[tool.repro.layers]`` declaration in the nearest ``pyproject.toml``;
4. the cross-file contract checks (REPRO115–116, :mod:`.contracts`),
   indexing the sibling ``tests/`` tree for twin/conformance coverage;

then applies per-line ``# repro: noqa`` suppressions and, finally, the
findings baseline (:mod:`.baseline`).  Paths in findings are reported
relative to the pyproject directory so baselines are machine-independent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    apply_baseline,
    load_baseline,
)
from .callgraph import MODULE_BODY, FuncKey, ProjectIndex, build_project_index
from .contracts import check_engine_conformance, check_twin_drift
from .dataflow import (
    check_cutcache_keys,
    check_generator_payloads,
    check_rng_reachability,
    check_wallclock_reachability,
)
from .engine import LintError, LintResult, lint_source, parse_noqa
from .layers import (
    check_import_cycles,
    check_layering,
    find_pyproject,
    load_layer_config,
)
from .rules import KNOWN_RULE_IDS, Violation

__all__ = ["ProjectAnalysis", "analyze_project", "dead_functions"]


@dataclass
class ProjectAnalysis:
    """Everything the project run produced, for the CLI and tests."""

    result: LintResult
    index: ProjectIndex
    test_index: Optional[ProjectIndex]
    repo_root: Path
    baseline: Optional[Baseline]
    #: findings before baseline application (what --write-baseline persists)
    prebaseline: List[Violation]


def _resolve_root(root: Path) -> Path:
    """Descend ``src`` -> ``src/repro``-style wrappers to the package dir."""
    if (root / "__init__.py").exists():
        return root
    candidates = [
        d for d in sorted(root.iterdir())
        if d.is_dir() and (d / "__init__.py").exists()
    ] if root.is_dir() else []
    if len(candidates) == 1:
        return candidates[0]
    return root


def _display_paths(index: ProjectIndex, repo_root: Path) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for name, mod in index.modules.items():
        try:
            out[name] = os.path.relpath(mod.path, repo_root)
        except ValueError:  # different drive (windows) — keep absolute
            out[name] = str(mod.path)
    return out


def _project_select(select: Optional[Sequence[str]]) -> Optional[Set[str]]:
    if select is None:
        return None
    return {s.strip().upper() for s in select if s.strip()}


def analyze_project(
    root: "str | Path",
    *,
    tests_dir: "str | Path | None" = None,
    select: Optional[Sequence[str]] = None,
    baseline_path: "str | Path | None" = None,
    use_baseline: bool = True,
) -> ProjectAnalysis:
    """Run the full project-aware analysis rooted at a package directory.

    ``tests_dir`` defaults to ``<repo root>/tests`` when it exists; pass an
    explicit directory for fixture projects.  ``baseline_path`` defaults to
    ``<repo root>/lint_baseline.json`` when present.
    """
    wanted = _project_select(select)
    root = _resolve_root(Path(root).resolve())
    index, parse_errors = build_project_index(root)

    pyproject = find_pyproject(root)
    repo_root = pyproject.parent if pyproject is not None else Path.cwd()
    display = _display_paths(index, repo_root)

    result = LintResult()
    for path, message in parse_errors:
        try:
            shown = os.path.relpath(path, repo_root)
        except ValueError:
            shown = path
        result.errors.append(LintError(path=shown, message=message))

    # -- per-file rules over the indexed sources -------------------------
    noqa_by_path: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        shown = display[mod_name]
        file_result = lint_source(mod.source, path=shown, select=select)
        result.merge(file_result)
        noqa_by_path[shown], _ = parse_noqa(mod.source, path=shown)

    # -- project passes --------------------------------------------------
    project_violations: List[Violation] = []

    def want(rule_id: str) -> bool:
        return wanted is None or rule_id in wanted

    if want("REPRO110"):
        project_violations.extend(check_rng_reachability(index, display))
    if want("REPRO111"):
        project_violations.extend(check_wallclock_reachability(index, display))
    if want("REPRO112"):
        project_violations.extend(check_generator_payloads(index, display))
    if want("REPRO113"):
        project_violations.extend(check_cutcache_keys(index, display))

    if want("REPRO114") and pyproject is not None:
        try:
            layer_config = load_layer_config(pyproject)
        except ValueError as exc:
            layer_config = None
            result.errors.append(LintError(path=str(pyproject), message=str(exc)))
        if layer_config is not None:
            problems = layer_config.validate()
            if problems:
                for problem in problems:
                    result.errors.append(
                        LintError(path=str(pyproject), message=problem)
                    )
            else:
                project_violations.extend(
                    check_layering(index, layer_config, display)
                )
        project_violations.extend(check_import_cycles(index, display))
    elif want("REPRO114"):
        project_violations.extend(check_import_cycles(index, display))

    test_index: Optional[ProjectIndex] = None
    tests_path = Path(tests_dir) if tests_dir is not None else repo_root / "tests"
    if tests_path.is_dir():
        test_index, test_errors = build_project_index(tests_path)
        for path, message in test_errors:
            result.errors.append(LintError(path=path, message=message))
    if want("REPRO115"):
        project_violations.extend(check_twin_drift(index, test_index, display))
    if want("REPRO116"):
        project_violations.extend(check_engine_conformance(index, test_index, display))

    # -- noqa suppression for project findings ---------------------------
    kept: List[Violation] = []
    for v in project_violations:
        suppressed_ids = noqa_by_path.get(v.path, {}).get(v.line, "missing")
        if suppressed_ids is None or (
            isinstance(suppressed_ids, set) and v.rule in suppressed_ids
        ):
            result.suppressed += 1
        else:
            kept.append(v)
    result.violations.extend(kept)
    result.violations.sort(key=lambda v: v.key())
    prebaseline = list(result.violations)

    # -- baseline --------------------------------------------------------
    baseline: Optional[Baseline] = None
    if baseline_path is not None:
        bp = Path(baseline_path)
    else:
        bp = repo_root / DEFAULT_BASELINE_NAME
    if use_baseline and bp.is_file():
        try:
            baseline = load_baseline(bp)
        except ValueError as exc:
            result.errors.append(LintError(path=str(bp), message=str(exc)))
        if baseline is not None:
            remaining, baselined, stale = apply_baseline(result.violations, baseline)
            result.violations = remaining
            result.baselined = baselined
            result.stale_baseline = [
                f"{e.path}: {e.rule} {e.message}" for e in stale
            ]

    result.files_checked = len(index.modules)
    return ProjectAnalysis(
        result=result,
        index=index,
        test_index=test_index,
        repo_root=repo_root,
        baseline=baseline,
        prebaseline=prebaseline,
    )


# ---------------------------------------------------------------------------
# Dead-code report (informational; drives the PR-10 sweep)
# ---------------------------------------------------------------------------


def dead_functions(
    index: ProjectIndex,
    extra_sources: Sequence[ProjectIndex] = (),
) -> List[Tuple[FuncKey, str]]:
    """Top-level functions/methods no identifier anywhere references.

    Conservative by construction: *any* textual reference — a call, a bare
    name (callback / dispatch table), an attribute access, an ``__all__``
    string — anywhere in the project, its tests, or benchmarks counts as
    use.  Name collisions therefore hide dead code rather than inventing
    it; what this reports is safe to delete or deliberately test.
    """
    referenced: Set[str] = set()
    import ast as _ast

    for source_index in [index, *extra_sources]:
        for mod in source_index.modules.values():
            for node in _ast.walk(mod.tree):
                if isinstance(node, _ast.Name):
                    referenced.add(node.id)
                elif isinstance(node, _ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, _ast.Constant) and isinstance(node.value, str):
                    if node.value.isidentifier():
                        referenced.add(node.value)
                elif isinstance(node, (_ast.Import, _ast.ImportFrom)):
                    for alias in node.names:
                        referenced.add(alias.name.rsplit(".", 1)[-1])

    out: List[Tuple[FuncKey, str]] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for qual in sorted(mod.functions):
            fn = mod.functions[qual]
            if qual == MODULE_BODY or "<locals>" in qual:
                continue
            name = fn.name
            if name.startswith("__") and name.endswith("__"):
                continue  # dunders are protocol entry points
            if name.startswith("visit_"):
                continue  # ast.NodeVisitor dispatches these by node type
            if fn.decorators:
                continue  # registered/dispatched via decorator machinery
            if name not in referenced:
                out.append((fn.key, str(mod.path)))
    return out
