"""Architecture layering gates (REPRO114).

The intended dependency structure is *declared* in ``pyproject.toml`` as a
package-level allow-list DAG::

    [tool.repro.layers]
    graph = []
    flow = ["graph"]
    filtering = ["core", "cutengine", "flow", "graph", "lint", "perf", "runtime"]
    ...

and this pass enforces it over the **module-scope** import graph
(``TYPE_CHECKING`` blocks and function-local imports are exempt — deferred
imports are the sanctioned cycle-break and never create an architecture
edge).  Two finding shapes, both REPRO114:

- **layering violation** — package A imports package B at module scope but
  the declaration does not allow ``A -> B``;
- **import cycle** — a strongly connected component in the module-level
  import graph (these break under spawn-mode pickling and make initialization
  order a landmine regardless of what the declaration allows).

Configuration errors (a declared graph that is itself cyclic, or an entry
naming an unknown package) surface as analysis errors, not findings — a
broken declaration must fail CI loudly rather than silently gate nothing.
Pre-existing violations are carried in the findings baseline
(:mod:`.baseline`) so adoption is incremental.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import ProjectIndex
from .rules import Violation

__all__ = ["LayerConfig", "load_layer_config", "check_layering", "check_import_cycles"]


class LayerConfig:
    """Declared architecture DAG: package -> packages it may import."""

    def __init__(self, allowed: Dict[str, Tuple[str, ...]]) -> None:
        self.allowed = allowed

    def validate(self) -> List[str]:
        """Configuration problems (unknown targets, declared cycles)."""
        problems: List[str] = []
        for pkg, targets in sorted(self.allowed.items()):
            for target in targets:
                if target not in self.allowed:
                    problems.append(
                        f"[tool.repro.layers] {pkg!r} allows undeclared package {target!r}"
                    )
        cycle = self._find_cycle()
        if cycle is not None:
            problems.append(
                "[tool.repro.layers] declared graph is not a DAG: "
                + " -> ".join(cycle)
            )
        return problems

    def _find_cycle(self) -> Optional[List[str]]:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {pkg: WHITE for pkg in self.allowed}
        stack: List[str] = []

        def visit(pkg: str) -> Optional[List[str]]:
            color[pkg] = GRAY
            stack.append(pkg)
            for target in self.allowed.get(pkg, ()):
                if color.get(target, BLACK) == GRAY:
                    return stack[stack.index(target):] + [target]
                if color.get(target, BLACK) == WHITE:
                    found = visit(target)
                    if found is not None:
                        return found
            stack.pop()
            color[pkg] = BLACK
            return None

        for pkg in sorted(self.allowed):
            if color[pkg] == WHITE:
                found = visit(pkg)
                if found is not None:
                    return found
        return None


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in [cur, *cur.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def load_layer_config(pyproject: Path) -> Optional[LayerConfig]:
    """The ``[tool.repro.layers]`` table, or None when not declared."""
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("layers")
    if not isinstance(table, dict) or not table:
        return None
    allowed: Dict[str, Tuple[str, ...]] = {}
    for pkg, targets in table.items():
        if not isinstance(targets, list):
            raise ValueError(
                f"[tool.repro.layers] entry {pkg!r} must be a list of package names"
            )
        allowed[str(pkg)] = tuple(str(t) for t in targets)
    return LayerConfig(allowed)


def _package_of_target(index: ProjectIndex, target: str) -> Optional[str]:
    """The first-level subpackage a dotted import lands in (None if external)."""
    mod = index.modules.get(target)
    if mod is None:
        # ``from repro.filtering.pipeline import X`` resolves directly; a bare
        # ``import repro.filtering`` may name the package __init__
        parts = target.split(".")
        while parts and ".".join(parts) not in index.modules:
            parts.pop()
        if not parts:
            return None
        mod = index.modules[".".join(parts)]
    return mod.package or None


def check_layering(
    index: ProjectIndex,
    config: LayerConfig,
    display_paths: Dict[str, str],
) -> Iterator[Violation]:
    """REPRO114: module-scope imports must follow the declared DAG."""
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        src_pkg = mod.package
        if not src_pkg:
            continue  # top-level driver modules (cli, __init__) are unscoped
        allowed = config.allowed.get(src_pkg)
        if allowed is None:
            continue  # undeclared package: validate() reports config gaps
        for edge in mod.imports:
            dst_pkg = _package_of_target(index, edge.target)
            if dst_pkg is None or dst_pkg == src_pkg:
                continue
            if dst_pkg not in allowed:
                yield Violation(
                    path=display_paths.get(mod_name, str(mod.path)),
                    line=edge.lineno,
                    col=1,
                    rule="REPRO114",
                    message=(
                        f"layering: '{src_pkg}' may not import '{dst_pkg}' "
                        f"(module {mod_name} imports {edge.target}); allowed "
                        f"targets: {sorted(allowed)}"
                    ),
                )


def check_import_cycles(
    index: ProjectIndex, display_paths: Dict[str, str]
) -> Iterator[Violation]:
    """REPRO114: strongly connected components in the module import graph."""
    graph: Dict[str, Set[str]] = {name: set() for name in index.modules}
    for mod_name, mod in index.modules.items():
        for edge in mod.imports:
            target = edge.target
            parts = target.split(".")
            while parts and ".".join(parts) not in index.modules:
                parts.pop()
            if not parts:
                continue
            resolved = ".".join(parts)
            if resolved != mod_name:
                graph[mod_name].add(resolved)
            # ``from pkg import name`` may bind pkg.name submodules
            if edge.is_from:
                for name in edge.names:
                    sub = f"{target}.{name}"
                    if sub in index.modules and sub != mod_name:
                        graph[mod_name].add(sub)
    for component in _strongly_connected(graph):
        if len(component) < 2:
            continue
        members = sorted(component)
        anchor = index.modules[members[0]]
        first_line = 1
        for edge in anchor.imports:
            target_parts = edge.target.split(".")
            while target_parts and ".".join(target_parts) not in index.modules:
                target_parts.pop()
            if target_parts and ".".join(target_parts) in component:
                first_line = edge.lineno
                break
        yield Violation(
            path=display_paths.get(members[0], str(anchor.path)),
            line=first_line,
            col=1,
            rule="REPRO114",
            message=(
                "module-scope import cycle: " + " <-> ".join(members)
                + "; break it with a deferred (function-local) import"
            ),
        )


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan SCCs, iterative, deterministic order."""
    index_counter = 0
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                indices[node] = lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(graph.get(node, ()))
            advanced = False
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in indices:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result
