"""Interprocedural dataflow rules (REPRO110–113).

These passes consume the approximate call graph (:mod:`.callgraph`) and
flag hazards the per-file rules cannot see:

REPRO110
    An *unseeded* RNG constructor (``np.random.default_rng()`` /
    ``SeedSequence()`` with no arguments) in a function **reachable from an
    algorithmic entrypoint** — wherever the function lives.  The per-file
    REPRO101 allows ``default_rng`` because seeded construction is the
    sanctioned pattern; this rule closes the hole where the *unseeded*
    spelling hides in a helper that filtering/assembly can reach.
REPRO111
    A wall-clock read (``time.time`` family) in a **non-algorithmic**
    module whose enclosing function is reachable from an algorithmic
    entrypoint.  (Algorithmic modules are already covered file-locally by
    REPRO102; this extends the reach through utility layers.)
REPRO112
    A ``numpy.random.Generator`` crossing a process boundary: a
    generator-typed value appearing in the payload of a
    ``resilient_map`` / ``map_subproblems`` / ``WorkerPool.map_ordered`` /
    ``executor.submit`` dispatch (directly, inside a tuple/partial, or
    captured by a locally-defined payload function).  Generators do not
    share state across pickling — each worker would replay the same draws
    while the driver's copy advances, silently forking the stream.
    Payloads must carry *derived seeds*, never live generators.
REPRO113
    A :class:`~repro.perf.cut_cache.CutCache` ``get``/``put`` whose key is
    provably **not** fingerprint-derived (a literal, f-string,
    ``str``/``repr``/``hash`` product, or a composition of those).  Cache
    keys must come from ``CutProblem.fingerprint()`` /
    ``CutEngine.cache_key()`` — anything else can collide across distinct
    networks and serve a wrong cut, which corrupts partitions silently.

All four are approximations over an AST-level call graph; vetted false
positives are suppressed with ``# repro: noqa(RULE)`` plus a rationale, or
carried in the findings baseline (see :mod:`.baseline`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import MODULE_BODY, FuncKey, FunctionInfo, ModuleInfo, ProjectIndex
from .rules import _WALL_CLOCK, Violation, _dotted

__all__ = [
    "check_rng_reachability",
    "check_wallclock_reachability",
    "check_generator_payloads",
    "check_cutcache_keys",
    "shortest_paths_from",
]

#: constructors whose *no-argument* call draws OS entropy
_UNSEEDED_CTORS = ("numpy.random.default_rng", "numpy.random.SeedSequence")

#: callables that dispatch payloads onto worker processes
_DISPATCH_FUNCS = {"resilient_map", "map_subproblems"}
_DISPATCH_METHODS = {"map_ordered", "submit", "map"}

#: a Generator-typed annotation mentions one of these terminal names
_GENERATOR_ANN = {"Generator"}

#: calls that *produce* a Generator
_GENERATOR_CTORS = {"numpy.random.default_rng", "numpy.random.Generator"}

#: key expressions containing one of these calls are fingerprint-derived
_FINGERPRINT_CALLS = {"fingerprint", "cache_key", "metric_fingerprint"}


def shortest_paths_from(
    index: ProjectIndex, roots: Sequence[FuncKey]
) -> Dict[FuncKey, Tuple[int, Optional[FuncKey]]]:
    """BFS distances + parents from entrypoint roots (deterministic order)."""
    edges = index.call_edges()
    dist: Dict[FuncKey, Tuple[int, Optional[FuncKey]]] = {}
    frontier = sorted(r for r in roots if index.function(r) is not None)
    for r in frontier:
        dist[r] = (0, None)
    while frontier:
        nxt: List[FuncKey] = []
        for key in frontier:
            d = dist[key][0]
            for callee in sorted(edges.get(key, ())):
                if callee not in dist:
                    dist[callee] = (d + 1, key)
                    nxt.append(callee)
        frontier = sorted(nxt)
    return dist


def _witness(
    dist: Dict[FuncKey, Tuple[int, Optional[FuncKey]]], key: FuncKey
) -> str:
    """Render the entrypoint->site call chain, e.g. ``a.f -> b.g -> c.h``."""
    chain: List[str] = []
    cur: Optional[FuncKey] = key
    while cur is not None:
        chain.append(f"{cur[0]}.{cur[1]}" if cur[1] != MODULE_BODY else cur[0])
        cur = dist[cur][1]
    return " -> ".join(reversed(chain))


def _function_of(mod: ModuleInfo, node_owner: Dict[int, FunctionInfo], node: ast.AST) -> FunctionInfo:
    return node_owner.get(id(node), mod.functions[MODULE_BODY])


def _owner_map(mod: ModuleInfo) -> Dict[int, FunctionInfo]:
    owner: Dict[int, FunctionInfo] = {}
    for fn in mod.functions.values():
        if fn.qualname == MODULE_BODY:
            continue
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for sub in ast.walk(node):
            owner.setdefault(id(sub), fn)
    return owner


def _violation(rule: str, mod: ModuleInfo, node: ast.AST, message: str, path: str) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


# ---------------------------------------------------------------------------
# REPRO110 / REPRO111: reachability of unseeded RNG and wall-clock reads
# ---------------------------------------------------------------------------


def check_rng_reachability(
    index: ProjectIndex, display_paths: Dict[str, str]
) -> Iterator[Violation]:
    """REPRO110: unseeded RNG constructors reachable from algorithmic entrypoints."""
    dist = shortest_paths_from(index, index.algorithmic_entrypoints())
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        owner = _owner_map(mod)
        path = display_paths.get(mod_name, str(mod.path))
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_unseeded_rng(node, mod.aliases):
                continue
            fn = _function_of(mod, owner, node)
            if fn.key not in dist:
                continue
            dotted = _dotted(node.func, mod.aliases)
            yield _violation(
                "REPRO110", mod, node,
                f"unseeded '{dotted}()' is reachable from an algorithmic "
                f"entrypoint ({_witness(dist, fn.key)}); thread a seeded "
                "Generator from the run config instead",
                path,
            )


def _is_unseeded_rng(node: ast.Call, aliases: Dict[str, str]) -> bool:
    dotted = _dotted(node.func, aliases)
    if dotted in _UNSEEDED_CTORS and not node.args and not node.keywords:
        return True
    # Generator(PCG64()) and friends: bit generator constructed with no seed
    if dotted == "numpy.random.Generator" and node.args:
        inner = node.args[0]
        if isinstance(inner, ast.Call) and not inner.args and not inner.keywords:
            return True
    return False


def check_wallclock_reachability(
    index: ProjectIndex, display_paths: Dict[str, str]
) -> Iterator[Violation]:
    """REPRO111: wall-clock reads in helper layers reachable from entrypoints."""
    dist = shortest_paths_from(index, index.algorithmic_entrypoints())
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        if mod.is_algorithmic:
            continue  # REPRO102 already covers these file-locally
        owner = _owner_map(mod)
        path = display_paths.get(mod_name, str(mod.path))
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, mod.aliases)
            if dotted not in _WALL_CLOCK:
                continue
            fn = _function_of(mod, owner, node)
            if fn.key not in dist:
                continue
            yield _violation(
                "REPRO111", mod, node,
                f"wall-clock read '{dotted}' is reachable from an algorithmic "
                f"entrypoint ({_witness(dist, fn.key)}); algorithmic decisions "
                "must not depend on wall time",
                path,
            )


# ---------------------------------------------------------------------------
# REPRO112: Generator objects crossing a process boundary
# ---------------------------------------------------------------------------


def _annotation_mentions_generator(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    for sub in ast.walk(ann):
        if isinstance(sub, ast.Name) and sub.id in _GENERATOR_ANN:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _GENERATOR_ANN:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if any(g in sub.value for g in _GENERATOR_ANN):
                return True
    return False


def _generator_names(fn_node: ast.AST, aliases: Dict[str, str]) -> Set[str]:
    """Names holding a live Generator inside one function scope.

    Sources: parameters annotated ``Generator`` (any spelling), the
    conventional parameter name ``rng``, and assignments from a
    generator-producing call (``default_rng(seed)``, ``Generator(...)``,
    ``<gen>.spawn(...)`` elements are out of scope).
    """
    names: Set[str] = set()
    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn_node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg == "rng" or _annotation_mentions_generator(arg.annotation):
                names.add(arg.arg)
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            dotted = _dotted(sub.value.func, aliases)
            if dotted in _GENERATOR_CTORS:
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            if _annotation_mentions_generator(sub.annotation):
                names.add(sub.target.id)
    return names


def _is_dispatch(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The dispatch spelling if ``node`` ships payloads to workers."""
    func = node.func
    if isinstance(func, ast.Name):
        origin = aliases.get(func.id, func.id)
        leaf = origin.rsplit(".", 1)[-1]
        if leaf in _DISPATCH_FUNCS:
            return leaf
    elif isinstance(func, ast.Attribute):
        if func.attr in _DISPATCH_FUNCS:
            return func.attr
        if func.attr in _DISPATCH_METHODS:
            recv = func.value
            recv_name = recv.id if isinstance(recv, ast.Name) else (
                recv.attr if isinstance(recv, ast.Attribute) else ""
            )
            # only pool-/executor-shaped receivers; `dict.map` noise is not real
            if any(h in recv_name.lower() for h in ("pool", "executor", "runtime")):
                return f"{recv_name}.{func.attr}"
    return None


def check_generator_payloads(
    index: ProjectIndex, display_paths: Dict[str, str]
) -> Iterator[Violation]:
    """REPRO112: Generators in worker-pool payloads (direct or captured)."""
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        path = display_paths.get(mod_name, str(mod.path))
        for fn in mod.functions.values():
            fn_node = fn.node
            if fn.qualname == MODULE_BODY:
                continue
            gen_names = _generator_names(fn_node, mod.aliases)
            if not gen_names:
                continue
            # locally defined payload functions capturing a generator
            capturing_defs: Set[str] = set()
            for sub in ast.walk(fn_node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not fn_node:
                    free = {
                        n.id for n in ast.walk(sub)
                        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                    }
                    if free & gen_names:
                        capturing_defs.add(sub.name)
            for sub in ast.walk(fn_node):
                if not isinstance(sub, ast.Call):
                    continue
                spelling = _is_dispatch(sub, mod.aliases)
                if spelling is None:
                    continue
                hit = _payload_generator(sub, gen_names, capturing_defs)
                if hit is not None:
                    yield _violation(
                        "REPRO112", mod, sub,
                        f"Generator '{hit}' crosses a process boundary in a "
                        f"'{spelling}(...)' payload; generators do not share "
                        "state across pickling — pass derived seeds and "
                        "construct the Generator worker-side",
                        path,
                    )


def _payload_generator(
    call: ast.Call, gen_names: Set[str], capturing_defs: Set[str]
) -> Optional[str]:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name):
                if sub.id in gen_names:
                    return sub.id
                if sub.id in capturing_defs:
                    return f"{sub.id} (captures a Generator)"
    return None


# ---------------------------------------------------------------------------
# REPRO113: CutCache keys that are not fingerprint-derived
# ---------------------------------------------------------------------------


def _cutcache_names(fn_node: ast.AST, aliases: Dict[str, str]) -> Set[str]:
    """Names known to hold a CutCache in one function scope."""
    names: Set[str] = set()

    def ann_is_cutcache(ann: Optional[ast.AST]) -> bool:
        if ann is None:
            return False
        for sub in ast.walk(ann):
            if isinstance(sub, ast.Name) and sub.id == "CutCache":
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "CutCache":
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if "CutCache" in sub.value:
                    return True
        return False

    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn_node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if ann_is_cutcache(arg.annotation):
                names.add(arg.arg)
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            dotted = _dotted(sub.value.func, aliases) or ""
            leaf = dotted.rsplit(".", 1)[-1] if dotted else (
                sub.value.func.id if isinstance(sub.value.func, ast.Name) else ""
            )
            if leaf in ("CutCache", "worker_cut_cache"):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            if ann_is_cutcache(sub.annotation):
                names.add(sub.target.id)
    return names


_STRINGY_CALLS = ("str", "repr", "hash", "bytes", "format", "encode", "join")


def _key_classification(expr: ast.AST, local_exprs: Dict[str, ast.AST]) -> str:
    """'fingerprint' | 'literal' | 'unknown' provenance of a key expression.

    A fingerprint-family call *anywhere* in the expression (or in the local
    assignment it resolves to) vets the key.  Otherwise a key whose root is
    a string composition — f-string, literal, ``str()``/``hash()`` product,
    concatenation/%-formatting of those — is 'literal' no matter what it
    interpolates: stringifying raw attributes is exactly the collision
    hazard.  Everything else (a parameter, an opaque call) is 'unknown' and
    assumed vetted upstream.
    """
    root = expr
    for _ in range(20):  # chase simple local aliases, cycle-bounded
        if isinstance(root, ast.Name) and root.id in local_exprs:
            root = local_exprs[root.id]
        else:
            break
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            fname = node.func.attr if isinstance(node.func, ast.Attribute) else (
                node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if fname in _FINGERPRINT_CALLS:
                return "fingerprint"

    def stringy(node: ast.AST) -> bool:
        if isinstance(node, (ast.JoinedStr, ast.Constant)):
            return True
        if isinstance(node, ast.Call):
            fname = node.func.attr if isinstance(node.func, ast.Attribute) else (
                node.func.id if isinstance(node.func, ast.Name) else ""
            )
            return fname in _STRINGY_CALLS
        if isinstance(node, ast.BinOp):  # 'a' + x, 'fmt' % vals
            return stringy(node.left) or stringy(node.right)
        if isinstance(node, ast.Tuple):
            return any(stringy(elt) for elt in node.elts)
        return False

    return "literal" if stringy(root) else "unknown"


def check_cutcache_keys(
    index: ProjectIndex, display_paths: Dict[str, str]
) -> Iterator[Violation]:
    """REPRO113: CutCache get/put keyed by non-fingerprint expressions."""
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        path = display_paths.get(mod_name, str(mod.path))
        for fn in mod.functions.values():
            fn_node = fn.node
            caches = _cutcache_names(fn_node, mod.aliases)
            if not caches:
                continue
            local_exprs: Dict[str, ast.AST] = {}
            for sub in ast.walk(fn_node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    if isinstance(target, ast.Name):
                        local_exprs[target.id] = sub.value
            for sub in ast.walk(fn_node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if not isinstance(func, ast.Attribute) or func.attr not in ("get", "put"):
                    continue
                recv = func.value
                recv_name = recv.id if isinstance(recv, ast.Name) else None
                if recv_name not in caches:
                    continue
                if not sub.args:
                    continue
                kind = _key_classification(sub.args[0], local_exprs)
                if kind == "literal":
                    yield _violation(
                        "REPRO113", mod, sub,
                        f"CutCache.{func.attr}() keyed by a non-fingerprint "
                        "expression; keys must derive from "
                        "CutProblem.fingerprint()/CutEngine.cache_key() or "
                        "colliding networks will serve wrong cuts",
                        path,
                    )
