"""Rule catalog of the determinism & parallel-safety analyzer.

Every rule is project-specific: it encodes one hazard class that would
break a PUNCH reproduction contract (bit-identical partitions across
executors, RNG-draw parity, read-only shared views) rather than a general
style preference.  Rules are small AST passes over one module; the engine
(:mod:`.engine`) parses the file once, hands each rule a
:class:`LintContext`, and filters ``# repro: noqa(RULE)`` suppressions.

Scopes
------
``all``          : every module under the linted tree.
``algorithmic``  : modules whose path crosses ``graph/``, ``flow/``,
                   ``filtering/``, ``assembly/`` or ``balanced/`` — the
                   packages whose outputs must be bit-reproducible.
``parallel``     : modules under ``parallel/`` — task payloads must stay
                   picklable and fork-safe.

Adding a rule: subclass :class:`Rule`, implement :meth:`Rule.check`, and
append an instance to :data:`RULES`.  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "LintContext",
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "ProjectRuleInfo",
    "PROJECT_RULES",
    "PROJECT_RULES_BY_ID",
    "KNOWN_RULE_IDS",
    "META_RULE_ID",
]

#: path segments that mark a module as algorithmic (bit-reproducible output)
ALGORITHMIC_PACKAGES = (
    "graph",
    "flow",
    "cutengine",
    "filtering",
    "assembly",
    "balanced",
    "crp",
    "serve",
    "updates",
)

#: CSR / shared-view array fields of :class:`repro.graph.graph.Graph`
CSR_FIELDS = frozenset(
    {"xadj", "adjncy", "eid", "edge_u", "edge_v", "vsize", "ewgt", "half_ewgt",
     "_half_ewgt", "coords"}
)

#: ``numpy.random`` attributes that are *not* legacy global-state draws
_NP_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "BitGenerator", "SeedSequence", "RandomState",
     "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)

#: wall-clock reads that must not feed algorithmic decisions (telemetry
#: clocks like ``time.perf_counter`` / ``time.process_time`` stay allowed)
_WALL_CLOCK = frozenset(
    {"time.time", "time.time_ns", "datetime.datetime.now",
     "datetime.datetime.utcnow", "datetime.datetime.today",
     "datetime.date.today"}
)

#: callables that capture the iteration order of their argument
_ORDER_CAPTURING = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: order-free consumers: a comprehension fed straight into one of these is
#: a commutative reduction (or a canonicalization), so set order cannot leak
_ORDER_FREE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> Tuple[str, int, int, str]:
        """Stable sort key (path, line, col, rule)."""
        return (self.path, self.line, self.col, self.rule)


class LintContext:
    """Everything a rule needs to analyze one module."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        parts = path.replace("\\", "/").split("/")
        self.is_algorithmic = any(p in ALGORITHMIC_PACKAGES for p in parts)
        self.is_parallel = "parallel" in parts
        self.aliases = _collect_import_aliases(tree)

    def in_scope(self, scope: str) -> bool:
        """Whether this module falls under a rule's scope."""
        if scope == "all":
            return True
        if scope == "algorithmic":
            return self.is_algorithmic
        if scope == "parallel":
            return self.is_parallel
        raise ValueError(f"unknown rule scope {scope!r}")


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map locally bound names to the dotted origin they import.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy import random
    as npr`` binds ``npr -> numpy.random``; ``from os import environ`` binds
    ``environ -> os.environ``.  Function-level imports are included — the
    binding is treated file-wide, which errs on the side of reporting.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname or name.name.split(".", 1)[0]
                origin = name.name if name.asname else name.name.split(".", 1)[0]
                aliases[bound] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.shuffle`` to ``numpy.random.shuffle`` (or None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


class Rule:
    """Base class: one hazard class, one scope, one AST pass."""

    id: str = ""
    name: str = ""
    description: str = ""
    scope: str = "all"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Yield every hit of this rule in the module."""
        raise NotImplementedError

    def hit(self, ctx: LintContext, node: ast.AST, message: str) -> Violation:
        """Build a violation anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class GlobalRngRule(Rule):
    """REPRO101: unseeded ``random`` / ``np.random`` global-state calls.

    Module-level RNG state is shared, unseeded by default, and consumed in
    library-call order — any draw from it makes partitions depend on what
    else ran in the process.  All randomness must flow through an explicit
    ``numpy.random.Generator`` threaded from the run seed.
    """

    id = "REPRO101"
    name = "global-rng"
    description = "unseeded random/np.random global-state call"
    scope = "all"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, ctx.aliases)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                yield self.hit(
                    ctx, node,
                    f"call to stdlib global RNG '{dotted}'; thread a seeded "
                    "np.random.Generator instead",
                )
            elif dotted.startswith("numpy.random."):
                leaf = dotted.split(".")[2]
                if leaf not in _NP_RANDOM_ALLOWED:
                    yield self.hit(
                        ctx, node,
                        f"call to numpy legacy global RNG '{dotted}'; use a "
                        "seeded np.random.Generator (default_rng) instead",
                    )


class WallClockRule(Rule):
    """REPRO102: wall-clock reads inside algorithmic modules.

    ``time.time()`` / ``datetime.now()`` values differ between runs, so any
    decision derived from them breaks bit-reproducibility.  Monotonic
    telemetry clocks (``perf_counter``, ``process_time``) stay allowed —
    they only ever feed timing reports.
    """

    id = "REPRO102"
    name = "wall-clock"
    description = "wall-clock read (time.time/datetime.now) in an algorithmic module"
    scope = "algorithmic"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, ctx.aliases)
            if dotted in _WALL_CLOCK:
                yield self.hit(
                    ctx, node,
                    f"wall-clock read '{dotted}' in an algorithmic module; "
                    "pass timing through RunBudget / telemetry instead",
                )


class EnvReadRule(Rule):
    """REPRO103: ``os.environ`` / ``os.getenv`` reads in algorithmic modules.

    Environment state is invisible to the run configuration: a partition
    that changes with an env var cannot be reproduced from its recorded
    config + seed.  Environment switches belong in the CLI / config layer.
    """

    id = "REPRO103"
    name = "env-read"
    description = "os.environ/os.getenv read in an algorithmic module"
    scope = "algorithmic"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func, ctx.aliases)
                if dotted in ("os.getenv", "os.environb.get"):
                    yield self.hit(
                        ctx, node,
                        f"environment read '{dotted}' in an algorithmic module; "
                        "route switches through the config dataclasses",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if _dotted(node, ctx.aliases) == "os.environ":
                    yield self.hit(
                        ctx, node,
                        "os.environ access in an algorithmic module; route "
                        "switches through the config dataclasses",
                    )


class _SetNames(ast.NodeVisitor):
    """Collect names bound to (or annotated as) built-in sets in one scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    @staticmethod
    def _is_set_annotation(ann: ast.AST) -> bool:
        target = ann.value if isinstance(ann, ast.Subscript) else ann
        if isinstance(target, ast.Name):
            return target.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if isinstance(target, ast.Attribute):
            return target.attr in ("Set", "FrozenSet", "AbstractSet")
        return False

    def is_set_expr(self, node: ast.AST) -> bool:
        """Syntactic test: does ``node`` evaluate to a built-in set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if self.is_set_expr(node.value):
                self.names.add(node.targets[0].id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and self._is_set_annotation(node.annotation):
            self.names.add(node.target.id)
        self.generic_visit(node)

    def visit_arguments(self, node: ast.arguments) -> None:
        for arg in list(node.posonlyargs) + list(node.args) + list(node.kwonlyargs):
            if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                self.names.add(arg.arg)

    # nested scopes run their own pass; do not leak their bindings here
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class UnorderedIterationRule(Rule):
    """REPRO104: set iteration order escaping into algorithmic decisions.

    CPython set order depends on insertion history and table resizes; it is
    stable enough to pass tests on one interpreter build and silently
    different on the next.  Iterating a set in a ``for`` loop, materializing
    it with ``list``/``tuple``/``iter``/``enumerate``, or seeding from
    ``next(iter(s))`` leaks that order into fragment/partition decisions.
    Order-free reductions (``len``/``min``/``max``/``sum``/``any``/``all``/
    ``sorted``/membership) are fine and not flagged.
    """

    id = "REPRO104"
    name = "unordered-iteration"
    description = "set iteration order escapes into a decision path"
    scope = "algorithmic"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        yield from self._check_scope(ctx, ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node)

    def _check_scope(self, ctx: LintContext, scope: ast.AST) -> Iterator[Violation]:
        tracker = _SetNames()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            tracker.visit_arguments(scope.args)
            body: Sequence[ast.stmt] = scope.body
        else:
            body = getattr(scope, "body", [])
        for stmt in body:
            tracker.visit(stmt)
        yield from self._scan(ctx, body, tracker)

    def _scan(
        self, ctx: LintContext, body: Sequence[ast.stmt], tracker: _SetNames
    ) -> Iterator[Violation]:
        # comprehensions that feed an order-free reduction (sum/min/...) are
        # commutative — exempt them so `sum(x for x in some_set)` stays clean
        exempt: Set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_FREE
                    and node.args
                    and isinstance(node.args[0], (ast.GeneratorExp, ast.SetComp, ast.ListComp))
                ):
                    exempt.add(id(node.args[0]))
        for stmt in body:
            for node in ast.walk(stmt):
                # nested function scopes are re-scanned with their own table
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node in body:
                    break
                if isinstance(node, ast.For) and tracker.is_set_expr(node.iter):
                    yield self.hit(
                        ctx, node.iter,
                        "iterating a set in a for loop; order is hash-table "
                        "dependent — iterate sorted(...) or an ordered structure",
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    if id(node) in exempt:
                        continue
                    for gen in node.generators:
                        if tracker.is_set_expr(gen.iter):
                            yield self.hit(
                                ctx, gen.iter,
                                "comprehension over a set; order is hash-table "
                                "dependent — iterate sorted(...) instead",
                            )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_CAPTURING
                    and node.args
                    and tracker.is_set_expr(node.args[0])
                ):
                    yield self.hit(
                        ctx, node,
                        f"'{node.func.id}(...)' captures set iteration order; "
                        "use sorted(...) for a canonical order",
                    )


class IdOrderingRule(Rule):
    """REPRO105: ``id()``-based ordering.

    ``id()`` is an allocation address: sorting or comparing by it makes the
    outcome depend on the heap layout of the run.  Keying a registry by
    ``id`` is fine (identity lookup); *ordering* by it never is.
    """

    id = "REPRO105"
    name = "id-ordering"
    description = "id()-based ordering (sort key or magnitude comparison)"
    scope = "all"

    @staticmethod
    def _is_id_key(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                for sub in ast.walk(node.body)
            )
        return False

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Name) and fn.id in ("sorted", "min", "max"):
                    for kw in node.keywords:
                        if kw.arg == "key" and self._is_id_key(kw.value):
                            yield self.hit(
                                ctx, node,
                                f"'{fn.id}' keyed by id(); object addresses are "
                                "not reproducible — sort by a stable attribute",
                            )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                ordered = any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
                )
                if ordered and any(
                    isinstance(x, ast.Call)
                    and isinstance(x.func, ast.Name)
                    and x.func.id == "id"
                    for x in operands
                ):
                    yield self.hit(
                        ctx, node,
                        "magnitude comparison of id(); object addresses are "
                        "not reproducible — compare a stable attribute",
                    )


class SharedViewMutationRule(Rule):
    """REPRO106: mutation of CSR / shared-graph arrays.

    :class:`~repro.graph.graph.Graph` arrays are the zero-copy payload of
    :class:`~repro.parallel.shared_graph.SharedGraph`: a write through any
    view corrupts every process attached to the segment.  Graphs are
    immutable by contract — transformations build new arrays.
    """

    id = "REPRO106"
    name = "shared-view-mutation"
    description = "in-place write to a CSR/shared graph array"
    scope = "all"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        class_stack: List[str] = []
        yield from self._walk(ctx, ctx.tree, class_stack)

    def _walk(
        self, ctx: LintContext, node: ast.AST, class_stack: List[str]
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                class_stack.append(child.name)
                yield from self._walk(ctx, child, class_stack)
                class_stack.pop()
                continue
            yield from self._check_node(ctx, child, class_stack)
            yield from self._walk(ctx, child, class_stack)

    def _check_node(
        self, ctx: LintContext, node: ast.AST, class_stack: List[str]
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                field = self._csr_store_field(target)
                if field is None:
                    continue
                if isinstance(target, ast.Attribute) and "Graph" in class_stack:
                    continue  # Graph's own constructors bind these fields
                yield self.hit(
                    ctx, target,
                    f"write to CSR/shared array field '{field}'; graphs are "
                    "immutable and views may be shared-memory backed",
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr == "setflags":
                for kw in node.keywords:
                    if (
                        kw.arg == "write"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        yield self.hit(
                            ctx, node,
                            "setflags(write=True) re-enables writes on an array "
                            "view; shared/CSR views must stay read-only",
                        )

    @staticmethod
    def _csr_store_field(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in CSR_FIELDS:
                return value.attr
        elif isinstance(target, ast.Attribute) and target.attr in CSR_FIELDS:
            return target.attr
        return None


class ForkUnsafePayloadRule(Rule):
    """REPRO107: fork-unsafe state in worker-pool task payloads.

    Pool tasks pickle by qualified name and may run under fork *or* spawn:
    lambdas do not pickle, ``global`` writes silently diverge between the
    driver and workers, and mutable default arguments smuggle driver-side
    state into payloads where each process mutates its own copy.
    """

    id = "REPRO107"
    name = "fork-unsafe-payload"
    description = "fork-unsafe construct in a parallel task module"
    scope = "parallel"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Lambda):
                yield self.hit(
                    ctx, node,
                    "lambda in a parallel module; task payloads must pickle "
                    "by qualified name — use a module-level def",
                )
            elif isinstance(node, ast.Global):
                # allow inside explicit per-process initializers/registries:
                # flag only when the enclosing function is dispatched state
                yield self.hit(
                    ctx, node,
                    f"'global {', '.join(node.names)}' mutates module state; "
                    "driver and worker copies diverge under fork/spawn — "
                    "return the value or use an explicit registry",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]:
                    if self._is_mutable_default(default):
                        yield self.hit(
                            ctx, default,
                            f"mutable default argument in '{node.name}'; each "
                            "process mutates its own copy — default to None",
                        )

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


class SilentExceptRule(Rule):
    """REPRO108: bare ``except:`` and swallowed exceptions.

    The resilient executor's contract is that every failure is *counted* —
    retried, degraded, or skipped with accounting.  A bare ``except:`` also
    catches ``KeyboardInterrupt``/``SystemExit``, and a pass-only handler
    erases the incident entirely.  Intentional suppression should use
    ``contextlib.suppress(...)`` (visible, typed) or a ``# repro: noqa``.
    """

    id = "REPRO108"
    name = "silent-except"
    description = "bare except or exception handler that swallows the error"
    scope = "all"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.hit(
                    ctx, node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "name the exception type",
                )
            elif all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
                for stmt in node.body
            ):
                yield self.hit(
                    ctx, node,
                    "exception swallowed without accounting; use "
                    "contextlib.suppress(...) or count the incident",
                )


#: modules allowed to construct SharedMemory directly: the owner/attach
#: lifecycle (shared_graph) and the orphan reaper (supervisor)
_SHM_ALLOWED_SUFFIXES = ("parallel/shared_graph.py", "runtime/supervisor.py")


class BareSharedMemoryRule(Rule):
    """REPRO109: ``SharedMemory(...)`` constructed outside the managed paths.

    Every shared-memory segment must be owned by a
    :class:`~repro.parallel.shared_graph.SharedGraph` (finalizer + ownership
    registry) or handled by the supervisor's orphan reaper.  A bare
    ``SharedMemory(...)`` anywhere else escapes both safety nets: nothing
    unlinks it on a crash and the reaper cannot identify its owner, so it
    leaks ``/dev/shm`` until reboot.
    """

    id = "REPRO109"
    name = "bare-shared-memory"
    description = "SharedMemory constructed outside shared_graph/supervisor"
    scope = "all"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        path = ctx.path.replace("\\", "/")
        if path.endswith(_SHM_ALLOWED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, ctx.aliases)
            if dotted == "multiprocessing.shared_memory.SharedMemory":
                yield self.hit(
                    ctx, node,
                    "bare SharedMemory(...) escapes the ownership registry and "
                    "crash finalizers; go through SharedGraph (owner/attach) or "
                    "the supervisor reaper",
                )


RULES: Tuple[Rule, ...] = (
    GlobalRngRule(),
    WallClockRule(),
    EnvReadRule(),
    UnorderedIterationRule(),
    IdOrderingRule(),
    SharedViewMutationRule(),
    ForkUnsafePayloadRule(),
    SilentExceptRule(),
    BareSharedMemoryRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}


@dataclass(frozen=True)
class ProjectRuleInfo:
    """Catalog entry for a whole-project pass (implemented outside this module).

    The project passes need cross-file state (call graph, test index,
    layer declaration) that a per-file :class:`Rule` never sees; their
    implementations live in :mod:`.dataflow`, :mod:`.contracts` and
    :mod:`.layers`, but their *identities* are declared here so the noqa
    validator, ``--select``, and ``--list-rules`` know the full id space.
    """

    id: str
    name: str
    description: str
    scope: str = "project"


#: the meta-rule: problems with suppression comments themselves
META_RULE_ID = "REPRO000"

PROJECT_RULES: Tuple[ProjectRuleInfo, ...] = (
    ProjectRuleInfo(
        "REPRO110", "rng-reaches-entrypoint",
        "unseeded RNG constructor reachable from an algorithmic entrypoint",
    ),
    ProjectRuleInfo(
        "REPRO111", "wall-clock-taint",
        "wall-clock read in a helper reachable from an algorithmic entrypoint",
    ),
    ProjectRuleInfo(
        "REPRO112", "generator-pool-payload",
        "np.random.Generator crossing a process boundary in a pool payload",
    ),
    ProjectRuleInfo(
        "REPRO113", "cutcache-key-provenance",
        "CutCache key not derived from a network fingerprint",
    ),
    ProjectRuleInfo(
        "REPRO114", "layering",
        "module-scope import violates the declared architecture DAG or cycles",
    ),
    ProjectRuleInfo(
        "REPRO115", "twin-drift",
        "vectorized kernel and its *_reference twin drifted or lack a shared test",
    ),
    ProjectRuleInfo(
        "REPRO116", "engine-conformance",
        "registered cut engine incomplete or missing conformance coverage",
    ),
)

PROJECT_RULES_BY_ID: Dict[str, ProjectRuleInfo] = {r.id: r for r in PROJECT_RULES}

#: every id a ``repro: noqa(...)`` suppression comment may legally name
KNOWN_RULE_IDS = frozenset(
    {rule.id for rule in RULES}
    | {info.id for info in PROJECT_RULES}
    | {META_RULE_ID}
)
