"""Low-overhead phase-timer registry (spans + counters).

Every phase of a PUNCH run (tiny cuts, natural-cut collection/solving,
greedy, local search, rebalancing, ...) wraps its work in
``profiler.span("name")``.  The active profiler is process-global and
*disabled by default*: a disabled span is a single attribute check plus a
no-op context manager, so instrumented code pays effectively nothing until
``--profile`` (or a benchmark) turns it on.

Spans nest freely and aggregate by name: each records cumulative wall and
CPU (process) time plus a call count.  ``counters`` accumulate arbitrary
integer events (cache hits, subproblems solved, ...).  ``export()`` returns
a plain dict ready for JSON (this is what ``BENCH_hotpaths.json`` and the
``--profile`` breakdown are built from).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = [
    "PhaseProfiler",
    "get_profiler",
    "set_profiler",
    "profile_span",
    "profile_count",
    "span_delta",
]


def span_delta(before: Dict[str, tuple], after: Dict[str, tuple]) -> Dict[str, tuple]:
    """Per-span increments between two :meth:`PhaseProfiler.snapshot` calls.

    Pool workers use this to report only the spans of the current task,
    even though the worker-global profiler accumulates across tasks.
    """
    out: Dict[str, tuple] = {}
    for name, (wall, cpu, calls) in after.items():
        w0, c0, k0 = before.get(name, (0.0, 0.0, 0))
        if calls > k0:
            out[name] = (wall - w0, cpu - c0, calls - k0)
    return out


class PhaseProfiler:
    """Aggregating span/counter registry; see the module docstring."""

    __slots__ = ("enabled", "spans", "counters")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        # name -> [wall_seconds, cpu_seconds, calls]
        self.spans: Dict[str, list] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; aggregates wall/CPU time and call count by name."""
        if not self.enabled:
            yield
            return
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - w0
            cpu = time.process_time() - c0
            rec = self.spans.get(name)
            if rec is None:
                self.spans[name] = [wall, cpu, 1]
            else:
                rec[0] += wall
                rec[1] += cpu
                rec[2] += 1

    def count(self, name: str, inc: int = 1) -> None:
        """Bump an event counter (no-op while disabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + inc

    def reset(self) -> None:
        """Drop all recorded spans and counters."""
        self.spans.clear()
        self.counters.clear()

    def snapshot(self) -> Dict[str, tuple]:
        """Immutable copy of the span table, for :func:`span_delta`."""
        return {name: (rec[0], rec[1], rec[2]) for name, rec in self.spans.items()}

    def merge(self, spans: Dict[str, tuple]) -> None:
        """Fold span deltas from another profiler (e.g. a pool worker) in.

        ``spans`` maps name -> ``(wall_s, cpu_s, calls)`` increments, the
        shape produced by :func:`span_delta`.  Merging is additive, so the
        parent's report covers work done in worker processes too.
        """
        for name, (wall, cpu, calls) in spans.items():
            rec = self.spans.get(name)
            if rec is None:
                self.spans[name] = [wall, cpu, calls]
            else:
                rec[0] += wall
                rec[1] += cpu
                rec[2] += calls

    def export(self) -> dict:
        """JSON-ready snapshot: per-span wall/CPU/calls plus counters."""
        return {
            "spans": {
                name: {"wall_s": rec[0], "cpu_s": rec[1], "calls": rec[2]}
                for name, rec in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def report(self) -> str:
        """Human-readable phase breakdown (the ``--profile`` output)."""
        if not self.spans and not self.counters:
            return "profile: no spans recorded"
        lines = ["phase breakdown (wall s / cpu s / calls):"]
        width = max((len(n) for n in self.spans), default=0)
        for name, (wall, cpu, calls) in sorted(
            self.spans.items(), key=lambda kv: -kv[1][0]
        ):
            lines.append(f"  {name:<{width}}  {wall:9.3f}  {cpu:9.3f}  {calls:7d}")
        if self.counters:
            lines.append("counters:")
            cw = max(len(n) for n in self.counters)
            for name, v in sorted(self.counters.items()):
                lines.append(f"  {name:<{cw}}  {v}")
        return "\n".join(lines)


#: the process-global profiler; disabled (and therefore near-free) by default
_ACTIVE = PhaseProfiler(enabled=False)


def get_profiler() -> PhaseProfiler:
    """The process-global profiler instrumented code reports into."""
    return _ACTIVE


def set_profiler(profiler: PhaseProfiler) -> PhaseProfiler:
    """Swap the process-global profiler; returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = profiler
    return prev


def profile_span(name: str):
    """``get_profiler().span(name)`` — the form instrumented code uses."""
    return _ACTIVE.span(name)


def profile_count(name: str, inc: int = 1) -> None:
    """``get_profiler().count(name, inc)`` without the attribute dance."""
    _ACTIVE.count(name, inc)
