"""Memoization of contracted min-cut subproblems.

Natural-cut detection and local-search refinement repeatedly solve small
s-t min-cut instances, and many of them coincide: BFS regions grown from
nearby centers often contract to the *same* flow network (identical core /
ring structure), and multistart assembly re-derives identical subproblems
across restarts.  :class:`CutCache` keys on
:meth:`~repro.filtering.cut_problem.CutProblem.fingerprint` — a canonical
digest of the merged network — and stores the ``(value, source_side)`` pair,
which is everything a solve produces that downstream code consumes (the cut
*edges* are recovered per problem from the side mask, since candidate edge
ids differ between problems that share a network).

Equal fingerprints imply identical networks (``np.unique`` canonicalizes the
merged edge list), so a hit returns bit-identical results to a fresh solve:
caching can never change a partition, only skip redundant flow computations.
The cache is bounded (FIFO eviction) and keeps hit/miss counters that
filtering surfaces through ``FilterResult``/``PunchResult.run_report()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

__all__ = ["CutCache"]


class CutCache:
    """Bounded fingerprint -> ``(cut_value, source_side)`` store."""

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_store")

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: OrderedDict[bytes, Tuple[float, np.ndarray]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: bytes) -> Optional[Tuple[float, np.ndarray]]:
        """Look up a solved network; counts a hit or a miss."""
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: bytes, value: float, source_side: np.ndarray) -> None:
        """Store a solve result, evicting the oldest entry when full."""
        if key in self._store:
            return
        if len(self._store) >= self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1
        # copy + freeze: the mask is shared between cache and callers
        side = source_side.copy()
        side.setflags(write=False)
        self._store[key] = (value, side)

    def counters(self) -> Tuple[int, int]:
        """Current ``(hits, misses)``; pool tasks diff two calls of this to
        report per-batch deltas from a long-lived per-worker cache."""
        return self.hits, self.misses

    def shrink(self, max_entries: int) -> int:
        """Cap the cache at ``max_entries``, evicting oldest entries first.

        The memory-pressure hook (supervised runs and
        :class:`~repro.runtime.chaos.ChaosPlan` injection): lowering the cap
        evicts immediately and future :meth:`put` calls respect the new
        bound.  Safe by construction — hits are bit-identical to fresh
        solves, so shrinking can change only speed, never partitions.
        Returns the number of entries evicted.
        """
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        evicted = 0
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def stats(self) -> dict:
        """Counters for run reports: hits, misses, entries, hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._store),
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
