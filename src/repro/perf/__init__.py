"""Performance infrastructure: phase timers and the cut-subproblem cache."""

from .cut_cache import CutCache
from .timers import (
    PhaseProfiler,
    get_profiler,
    profile_count,
    profile_span,
    set_profiler,
)

__all__ = [
    "CutCache",
    "PhaseProfiler",
    "get_profiler",
    "set_profiler",
    "profile_span",
    "profile_count",
]
