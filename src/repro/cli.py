"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``info GRAPH``                    : print graph statistics
- ``generate -o GRAPH``             : write a synthetic road network
- ``partition GRAPH -U N``          : unbalanced PUNCH (paper's main problem)
- ``balanced GRAPH -k K [--strong]``: balanced PUNCH (Section 4)
- ``replay GRAPH -U N``             : serving-layer query-log replay (CRP)
- ``update GRAPH -U N``             : incremental dirty-region updates (live graph)

Graph files are DIMACS ``.gr``(.gz) or METIS ``.graph``(.gz), inferred from
the extension.  Partitions are written as one cell id per line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


from .core.config import (
    AssemblyConfig,
    BalancedConfig,
    FilterConfig,
    PunchConfig,
    RuntimeConfig,
)


def _runtime_from_args(args) -> RuntimeConfig:
    """Build the resilience policy from the shared CLI flags."""
    fault_plan = None
    if getattr(args, "chaos", None) is not None:
        from .runtime.chaos import ChaosPlan

        # a fixed injection mix keyed only by the seed: deterministic,
        # moderate rates across every chaos site (tests pin exact plans)
        fault_plan = ChaosPlan(
            seed=args.chaos,
            sites=("process", "checkpoint", "memory"),
            kill_rate=0.2,
            checkpoint_corrupt_rate=0.2,
            cache_pressure_rate=0.2,
        )
    try:
        return RuntimeConfig(
            time_budget=args.time_budget,
            max_retries=args.max_retries,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            supervise=getattr(args, "supervise", False),
            fault_plan=fault_plan,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _add_runtime_flags(sp) -> None:
    """Flags shared by the partition and balanced commands."""
    sp.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on expiry the best valid partition so far is returned",
    )
    sp.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically save progress here (see docs/RESILIENCE.md)",
    )
    sp.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint if it exists",
    )
    sp.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="extra attempts per failed min-cut subproblem (default 2)",
    )
    sp.add_argument(
        "--supervise",
        action="store_true",
        help="attach the execution supervisor: worker watchdog, pool-restart "
        "budget, and orphaned shared-memory reaping (see docs/RESILIENCE.md)",
    )
    sp.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministic chaos harness: inject worker kills, checkpoint "
        "corruption, and cache pressure on the given seed's schedule "
        "(the partition stays bit-identical; testing/demo only)",
    )
    sp.add_argument(
        "--profile",
        action="store_true",
        help="collect per-phase wall/CPU timings and print the breakdown",
    )
    sp.add_argument(
        "--sanitize",
        action="store_true",
        help="runtime sanitizer: freeze shared views, verify RNG draw parity "
        "and partition invariants (≤5%% overhead; see docs/STATIC_ANALYSIS.md)",
    )
    sp.add_argument(
        "--executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="worker-pool backend; the partition is bit-identical across all "
        "three (omit the flag entirely for the legacy sequential loop; see "
        "docs/PERFORMANCE.md)",
    )
    sp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --executor threads/processes (default: all cores)",
    )
    sp.add_argument(
        "--cut-engine",
        default="push_relabel",
        metavar="NAME",
        help="natural-cut engine: push_relabel (paper default, exact min cut) "
        "or flowcutter (Pareto cut enumeration; see docs/CUT_ENGINES.md)",
    )


def _filter_from_args(args) -> FilterConfig:
    """Build the filtering config from the shared CLI flags."""
    try:
        return FilterConfig(cut_engine=getattr(args, "cut_engine", "push_relabel"))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _parallel_from_args(args):
    """Build the worker-pool config from the shared CLI flags.

    No ``--executor`` flag means the legacy sequential drivers (``None``).
    An explicit ``--executor serial`` runs the parallel task structure
    inline — same partition as threads/processes, no pool.
    """
    if args.executor is None:
        return None
    from .core.config import ParallelConfig

    try:
        return ParallelConfig(backend=args.executor, workers=args.workers)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _enable_profiling(args):
    """Turn on the global phase profiler when ``--profile`` was given."""
    if not getattr(args, "profile", False):
        return None
    from .perf.timers import get_profiler

    prof = get_profiler()
    prof.reset()
    prof.enabled = True
    return prof


def _print_profile(prof) -> None:
    if prof is not None:
        print(prof.report())


def _enable_sanitizer(args):
    """Arm the runtime sanitizer when ``--sanitize`` was given."""
    if not getattr(args, "sanitize", False):
        return None
    from .lint.sanitizer import get_sanitizer

    san = get_sanitizer()
    san.reset()
    san.enabled = True
    return san


def _print_sanitizer(san) -> int:
    """Print the sanitizer verdict; returns 1 when violations were found."""
    if san is None:
        return 0
    rep = san.report()
    checks = sum(rep["checks"].values())
    if not rep["violations"]:
        print(f"sanitizer: {checks} check(s), 0 violations")
        return 0
    print(f"sanitizer: {checks} check(s), {len(rep['violations'])} VIOLATION(S):")
    for v in rep["violations"]:
        print(f"  [{v['phase']}] {v['kind']}: {v['message']}")
    return 1


def _load_graph(path: str):
    from .graph.io import read_dimacs_gr, read_metis

    name = Path(path).name
    if ".graph" in name:
        return read_metis(path)
    if ".gr" in name:
        return read_dimacs_gr(path)
    raise SystemExit(f"cannot infer format of {path!r} (use .gr or .graph)")


def _save_graph(g, path: str) -> None:
    from .graph.io import write_dimacs_gr, write_metis

    name = Path(path).name
    if ".graph" in name:
        write_metis(g, path)
    elif ".gr" in name:
        write_dimacs_gr(g, path)
    else:
        raise SystemExit(f"cannot infer format of {path!r} (use .gr or .graph)")


def _write_labels(labels, path: str) -> None:
    Path(path).write_text("\n".join(str(int(x)) for x in labels) + "\n")


def cmd_info(args) -> int:
    """``repro info``: print graph statistics."""
    from .graph import connected_components

    g = _load_graph(args.graph)
    k, _ = connected_components(g)
    print(f"vertices      : {g.n}")
    print(f"edges         : {g.m}")
    print(f"avg degree    : {2 * g.m / max(g.n, 1):.2f}")
    print(f"total size    : {g.total_size()}")
    print(f"total weight  : {g.total_weight():g}")
    print(f"components    : {k}")
    print(f"coordinates   : {'yes' if g.coords is not None else 'no'}")
    return 0


def cmd_generate(args) -> int:
    """``repro generate``: write a synthetic road network."""
    from .synthetic import instance, road_network

    if args.name:
        g = instance(args.name)
    else:
        g = road_network(n_target=args.n, seed=args.seed)
    _save_graph(g, args.output)
    print(f"wrote {g.n} vertices / {g.m} edges to {args.output}")
    return 0


def cmd_partition(args) -> int:
    """``repro partition``: run unbalanced PUNCH."""
    from .core.punch import run_punch

    g = _load_graph(args.graph)
    cfg = PunchConfig(
        filter=_filter_from_args(args),
        assembly=AssemblyConfig(multistart=args.multistart, phi=args.phi),
        runtime=_runtime_from_args(args),
        parallel=_parallel_from_args(args),
        seed=args.seed,
    )
    prof = _enable_profiling(args)
    san = _enable_sanitizer(args)
    res = run_punch(g, args.U, cfg)
    print(res.summary())
    print(f"cells connected: {res.partition.all_cells_connected()}")
    _print_profile(prof)
    rc = _print_sanitizer(san)
    if args.output:
        _write_labels(res.partition.labels, args.output)
        print(f"wrote labels to {args.output}")
    return rc


def cmd_balanced(args) -> int:
    """``repro balanced``: run balanced PUNCH."""
    from .balanced.driver import run_balanced_punch

    g = _load_graph(args.graph)
    cfg = BalancedConfig(
        strong=args.strong,
        phi_unbalanced=args.phi,
        rebalance_attempts=args.rebalances,
        filter=_filter_from_args(args),
        runtime=_runtime_from_args(args),
        parallel=_parallel_from_args(args),
        seed=args.seed,
    )
    prof = _enable_profiling(args)
    san = _enable_sanitizer(args)
    res = run_balanced_punch(g, args.k, args.epsilon, cfg)
    print(res.summary())
    _print_profile(prof)
    rc = _print_sanitizer(san)
    if args.output:
        _write_labels(res.partition.labels, args.output)
        print(f"wrote labels to {args.output}")
    return rc


def cmd_replay(args) -> int:
    """``repro replay``: partition, build the overlay, replay a query log."""
    import json

    from .core.punch import run_punch
    from .crp import build_overlay
    from .serve import ServingConfig, ServingEngine, replay, synthetic_query_log

    if args.name:
        from .synthetic import instance

        g = instance(args.name)
    elif args.graph:
        g = _load_graph(args.graph)
    else:
        raise SystemExit("error: give a GRAPH file or --name INSTANCE")
    cfg = PunchConfig(seed=args.seed)
    res = run_punch(g, args.U, cfg)
    engine = ServingEngine(
        build_overlay(res.partition),
        ServingConfig(metric_cache_entries=args.cache_entries),
    )
    log = synthetic_query_log(
        g,
        n_queries=args.queries,
        batch_size=args.batch,
        n_profiles=args.profiles,
        seed=args.seed if args.seed is not None else 0,
    )
    pool = None
    pcfg = _parallel_from_args(args) if hasattr(args, "executor") else None
    if pcfg is not None and pcfg.backend == "threads":
        from .parallel.pool import WorkerPool

        pool = WorkerPool(workers=pcfg.workers, kind="threads")
    rr = replay(engine, log, batch_size=args.batch, pool=pool)
    if pool is not None:
        pool.shutdown()
    print(f"queries        : {rr.queries} in {rr.batches} batches")
    print(f"throughput     : {rr.qps:.0f} queries/s")
    print(f"latency p50    : {rr.latency_p50_ms:.3f} ms")
    print(f"latency p99    : {rr.latency_p99_ms:.3f} ms")
    print(f"customizations : {rr.customizations} ({rr.customize_s:.3f}s)")
    print(f"LRU hit rate   : {rr.lru_hit_rate:.2f}")
    if args.json:
        Path(args.json).write_text(json.dumps(rr.run_report(), indent=2) + "\n")
        print(f"wrote report to {args.json}")
    return 0


def cmd_update(args) -> int:
    """``repro update``: apply delta batches through the incremental engine."""
    import json
    from time import perf_counter

    from .core.punch import run_punch
    from .updates import (
        IncrementalUpdater,
        UpdateConfig,
        deltas_from_json,
        synthetic_delta_batch,
    )

    if args.name:
        from .synthetic import instance

        g = instance(args.name)
    elif args.graph:
        g = _load_graph(args.graph)
    else:
        raise SystemExit("error: give a GRAPH file or --name INSTANCE")
    if args.deltas is None and args.synthetic is None:
        raise SystemExit("error: give --deltas FILE or --synthetic KIND")

    cfg = PunchConfig(seed=args.seed)
    san = _enable_sanitizer(args)
    t0 = perf_counter()
    res = run_punch(g, args.U, cfg)
    build_s = perf_counter() - t0
    print(f"initial partition: {res.partition.num_cells} cells, "
          f"cost {res.partition.cost:g} ({build_s:.3f}s)")

    try:
        ucfg = UpdateConfig(
            halo=args.halo,
            quality_ratio=args.quality_ratio,
            max_dirty_fraction=args.max_dirty_fraction,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    updater = IncrementalUpdater(res.partition, args.U, config=ucfg, punch_config=cfg)

    if args.deltas is not None:
        batches = [deltas_from_json(Path(args.deltas).read_text())]
    else:
        base_seed = args.seed if args.seed is not None else 0
        batches = [
            synthetic_delta_batch(g, kind=args.synthetic, count=args.count, seed=base_seed + i)
            for i in range(args.batches)
        ]
        # synthetic batches address the *initial* graph; regenerate lazily
        # below when earlier batches changed the structure

    for i in range(len(batches)):
        if args.deltas is None and i > 0:
            base_seed = args.seed if args.seed is not None else 0
            batches[i] = synthetic_delta_batch(
                updater.graph, kind=args.synthetic, count=args.count, seed=base_seed + i
            )
        r = updater.apply(batches[i])
        rec = r.record
        print(
            f"update #{rec.seq}: {rec.kind:10s} {rec.mode:8s} "
            f"dirty {rec.dirty_cells}/{r.partition.num_cells} cells "
            f"({rec.dirty_fraction:.1%} of graph)  {rec.latency_s * 1e3:.1f} ms  "
            f"cache reuse {rec.cache_reuse_rate:.0%}"
            + (f"  [fallback: {rec.fallback_reason}]" if rec.fallback else "")
        )

    report = updater.run_report()
    agg = report["updates"]
    print(f"applied        : {agg['updates']} batch(es), {agg['fallbacks']} fallback(s)")
    print(f"median latency : {agg['latency_s_median'] * 1e3:.1f} ms")
    print(f"cache reuse    : {agg['cache_reuse_rate']:.2f}")
    if args.compare_rebuild:
        t0 = perf_counter()
        run_punch(updater.graph, args.U, cfg)
        rebuild_s = perf_counter() - t0
        speedup = rebuild_s / max(agg["latency_s_median"], 1e-9)
        print(f"full rebuild   : {rebuild_s:.3f}s -> median speedup {speedup:.1f}x")
        report["updates"]["rebuild_s"] = rebuild_s
        report["updates"]["median_speedup"] = speedup
    rc = _print_sanitizer(san)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote report to {args.json}")
    return rc


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="PUNCH: graph partitioning with natural cuts (IPDPS'11 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("info", help="print graph statistics")
    sp.add_argument("graph")
    sp.set_defaults(fn=cmd_info)

    sp = sub.add_parser("generate", help="generate a synthetic road network")
    sp.add_argument("-o", "--output", required=True)
    sp.add_argument("--name", help="named instance (e.g. europe_like)")
    sp.add_argument("--n", type=int, default=10_000, help="target vertex count")
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=cmd_generate)

    sp = sub.add_parser("partition", help="unbalanced PUNCH with cell bound U")
    sp.add_argument("graph")
    sp.add_argument("-U", type=int, required=True, help="maximum cell size")
    sp.add_argument("-o", "--output", help="write per-vertex cell ids here")
    sp.add_argument("--seed", type=int, default=None)
    sp.add_argument("--multistart", type=int, default=1)
    sp.add_argument("--phi", type=int, default=16)
    _add_runtime_flags(sp)
    sp.set_defaults(fn=cmd_partition)

    sp = sub.add_parser("balanced", help="balanced PUNCH with k cells")
    sp.add_argument("graph")
    sp.add_argument("-k", type=int, required=True, help="number of cells")
    sp.add_argument("--epsilon", type=float, default=0.03)
    sp.add_argument("--strong", action="store_true")
    sp.add_argument("--phi", type=int, default=64)
    sp.add_argument("--rebalances", type=int, default=8)
    sp.add_argument("-o", "--output", help="write per-vertex cell ids here")
    sp.add_argument("--seed", type=int, default=None)
    _add_runtime_flags(sp)
    sp.set_defaults(fn=cmd_balanced)

    sp = sub.add_parser(
        "replay", help="serve a synthetic CRP query log and report QPS/latency"
    )
    sp.add_argument("graph", nargs="?", help="graph file (.gr/.graph, or use --name)")
    sp.add_argument("--name", help="named synthetic instance (e.g. belgium_like)")
    sp.add_argument("-U", type=int, required=True, help="maximum cell size")
    sp.add_argument("--queries", type=int, default=1000, help="log length")
    sp.add_argument("--batch", type=int, default=50, help="queries per batch")
    sp.add_argument("--profiles", type=int, default=4, help="weight profiles in the log")
    sp.add_argument("--cache-entries", type=int, default=8, help="metric LRU capacity")
    sp.add_argument("--seed", type=int, default=None)
    sp.add_argument("--json", metavar="PATH", help="write the replay run report here")
    sp.add_argument(
        "--executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="threads fans batches across a worker pool; serial/processes serve inline",
    )
    sp.add_argument("--workers", type=int, default=None, metavar="N")
    sp.set_defaults(fn=cmd_replay)

    sp = sub.add_parser(
        "update",
        help="apply graph delta batches through the incremental update engine",
    )
    sp.add_argument("graph", nargs="?", help="graph file (.gr/.graph, or use --name)")
    sp.add_argument("--name", help="named synthetic instance (e.g. belgium_like)")
    sp.add_argument("-U", type=int, required=True, help="maximum cell size")
    sp.add_argument(
        "--deltas", metavar="FILE", help="JSON delta batch (see docs/UPDATES.md)"
    )
    sp.add_argument(
        "--synthetic",
        choices=("reweight", "mixed", "grow"),
        help="generate seeded synthetic batches instead of --deltas",
    )
    sp.add_argument("--count", type=int, default=10, help="edits per synthetic batch")
    sp.add_argument("--batches", type=int, default=3, help="synthetic batches to apply")
    sp.add_argument("--halo", type=int, default=1, help="dirty-region BFS halo depth")
    sp.add_argument(
        "--quality-ratio",
        type=float,
        default=1.5,
        help="repair degradation bound before full-rebuild fallback",
    )
    sp.add_argument(
        "--max-dirty-fraction",
        type=float,
        default=0.35,
        help="dirty-region share of the graph before full-rebuild fallback",
    )
    sp.add_argument(
        "--compare-rebuild",
        action="store_true",
        help="also time a full PUNCH rebuild of the final graph and print the speedup",
    )
    sp.add_argument("--seed", type=int, default=None)
    sp.add_argument("--sanitize", action="store_true", help="arm the runtime sanitizer")
    sp.add_argument("--json", metavar="PATH", help="write the update run report here")
    sp.set_defaults(fn=cmd_update)
    return p


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
