"""FlowCutter-style Pareto cut enumeration (Hamann & Strasser).

*Graph Bisection with Pareto-Optimization* observes that one incremental
max-flow computation can certify a whole **front** of cuts trading cut
capacity against balance: start from the terminals, saturate the flow,
read off the two canonical minimum cuts (source-reachable side and
sink-unreachable side), then *pierce* — assign one boundary vertex of the
smaller side to its terminal and resume augmenting.  Each piercing step
can only increase the flow, so the enumerated cuts have nondecreasing
capacity along the balance axis, and the very first front point is exactly
the minimum s-t cut the paper's push-relabel engine would return.

:class:`FlowCutterEngine` runs that loop on the contracted core/ring
instance of natural-cut detection and then **selects** one front point
under a sparsity rule (capacity divided by the smaller side, the same
quantity the ring/core construction is implicitly optimizing): thin,
well-balanced natural cuts instead of the leftmost min cut.  The solve is
a pure deterministic function of the problem — piercing candidates are
ordered by local vertex id — so the serial ≡ threads ≡ processes contract
holds unchanged.

Scale note: the subproblems are small (a BFS tree of ``alpha * U``
vertices plus two terminals), so the incremental augmentation here is
BFS-based (Edmonds-Karp style) — per-problem work stays proportional to
``cut_value * |arcs|`` with tiny constants, and every intermediate state
is reused across piercing steps instead of recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..flow.network import FlowNetwork
from .base import CutEngine, SolveFn
from .registry import register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..filtering.cut_problem import CutProblem

__all__ = ["FlowCutterEngine", "ParetoPoint"]

_S_LOCAL = 0
_T_LOCAL = 1


@dataclass(frozen=True, eq=False)
class ParetoPoint:
    """One enumerated cut: capacity, source side, and derived measures."""

    value: float  # total capacity crossing the cut
    side: np.ndarray  # bool mask over local vertices; True = source side
    source_size: int  # number of local vertices on the source side
    n: int  # local vertex count of the instance

    @property
    def small_side(self) -> int:
        """Vertices on the smaller side (the balance numerator)."""
        return min(self.source_size, self.n - self.source_size)

    @property
    def balance(self) -> float:
        """``small_side / n`` in ``[0, 0.5]``; higher is more balanced."""
        return self.small_side / self.n

    @property
    def sparsity(self) -> float:
        """Capacity per smaller-side vertex — the selection objective."""
        return self.value / max(1, self.small_side)


@register_engine
class FlowCutterEngine(CutEngine):
    """Pareto front of (cut capacity, balance) via incremental piercing.

    Parameters
    ----------
    balance_goal : stop enumerating once a front point reaches this balance
        (``0.5`` = perfectly balanced bisection of the local instance).
    max_cut_factor : stop once the incremental flow exceeds this multiple
        of the minimum cut — beyond it a cut is too expensive to ever win
        the sparsity selection, so the work would be wasted.
    """

    name = "flowcutter"

    def __init__(self, balance_goal: float = 0.5, max_cut_factor: float = 4.0) -> None:
        if not (0.0 < balance_goal <= 0.5):
            raise ValueError("balance_goal must be in (0, 0.5]")
        if max_cut_factor < 1.0:
            raise ValueError("max_cut_factor must be >= 1")
        self.balance_goal = balance_goal
        self.max_cut_factor = max_cut_factor

    def cache_token(self) -> bytes:
        return f"{self.name}:{self.balance_goal}:{self.max_cut_factor}".encode("ascii")

    # ------------------------------------------------------------------ API

    def solve(self, problem: "CutProblem") -> Tuple[float, np.ndarray]:
        front = self.enumerate_front(problem)
        chosen = self.select(front)
        return chosen.value, chosen.side

    def solve_chain(self, solver: str) -> List[SolveFn]:
        from .push_relabel import PushRelabelEngine

        # safety net: a FlowCutter failure degrades to the paper's min cut
        return [self.solve, *PushRelabelEngine(solver).solve_chain(solver)]

    def select(self, front: List[ParetoPoint]) -> ParetoPoint:
        """Pick the front point to report: min sparsity, then min capacity.

        The tie chain ends on ``source_size`` (deterministic — front points
        have pairwise distinct source sizes by construction).
        """
        if not front:
            raise ValueError("empty Pareto front")
        return min(front, key=lambda p: (p.sparsity, p.value, p.source_size))

    # ------------------------------------------------------- enumeration

    def enumerate_front(self, problem: "CutProblem") -> List[ParetoPoint]:
        """Enumerate the nondominated (capacity, balance) front.

        Returns the points in enumeration order (nonincreasing capacity is
        *not* guaranteed midway; dominated points are pruned before
        returning, so the result is nondecreasing in capacity when sorted
        by balance).  The first enumerated capacity equals the minimum s-t
        cut value — the differential property suite pins this against the
        push-relabel engine.
        """
        n = problem.n_local
        net = FlowNetwork(n, problem.net_u, problem.net_v, problem.net_cap)
        flow = np.zeros(net.n_arcs, dtype=np.float64)
        in_s = np.zeros(n, dtype=bool)
        in_t = np.zeros(n, dtype=bool)
        in_s[_S_LOCAL] = True
        in_t[_T_LOCAL] = True

        points: List[ParetoPoint] = []
        value = 0.0
        min_value: Optional[float] = None
        # every piercing step grows S or T by >= 1 vertex, so 2n bounds the
        # loop even before the balance/cost stops trigger
        for _ in range(2 * n + 2):
            value += _augment(net, flow, in_s, in_t)
            if min_value is None:
                min_value = value
            if value > self.max_cut_factor * max(min_value, 1e-12) and points:
                break  # too expensive to ever win selection
            source_reach = _reach_forward(net, flow, in_s)
            sink_reach = _reach_backward(net, flow, in_t)
            # max-flow certificate: the two canonical min cuts for (S, T)
            src_side = source_reach
            snk_side = ~sink_reach
            points.append(ParetoPoint(value, src_side.copy(), int(src_side.sum()), n))
            if not np.array_equal(src_side, snk_side):
                points.append(
                    ParetoPoint(value, snk_side.copy(), int(snk_side.sum()), n)
                )
            if max(p.balance for p in points[-2:]) >= self.balance_goal:
                break
            # pierce the smaller side; the piercing vertex prefers to avoid
            # creating an augmenting path (i.e. stays off the other side's
            # reachable set), ties broken by smallest local id
            if int(source_reach.sum()) <= int((~sink_reach).sum()):
                in_s = source_reach.copy()
                pierce = _pick_pierce(net, src_side, forbidden=in_t, avoid=sink_reach)
                if pierce < 0:
                    break
                in_s[pierce] = True
            else:
                in_t = sink_reach.copy()
                pierce = _pick_pierce(net, ~snk_side, forbidden=in_s, avoid=source_reach)
                if pierce < 0:
                    break
                in_t[pierce] = True
        return _prune_dominated(points)


def _augment(
    net: FlowNetwork, flow: np.ndarray, in_s: np.ndarray, in_t: np.ndarray
) -> float:
    """Saturate the flow between the S and T supernodes (BFS augmenting).

    Incremental: existing flow is kept and extended.  Returns the capacity
    added.  Deterministic — BFS seeds the queue with S in ascending vertex
    order and scans arcs in adjacency order.
    """
    added = 0.0
    n = net.n
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    while True:
        parent_arc = np.full(n, -1, dtype=np.int64)
        seen = in_s.copy()
        queue: List[int] = [int(v) for v in np.flatnonzero(in_s)]
        found = -1
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
                a = int(a)
                if arc_cap[a] - flow[a] <= 0:
                    continue
                w = int(arc_to[a])
                if seen[w]:
                    continue
                seen[w] = True
                parent_arc[w] = a
                if in_t[w]:
                    found = w
                    break
                queue.append(w)
            if found >= 0:
                break
        if found < 0:
            return added
        # walk back to S for the bottleneck, then push
        bottleneck = np.inf
        v = found
        while not in_s[v]:
            a = int(parent_arc[v])
            bottleneck = min(bottleneck, arc_cap[a] - flow[a])
            v = int(arc_to[a ^ 1])
        v = found
        while not in_s[v]:
            a = int(parent_arc[v])
            flow[a] += bottleneck
            flow[a ^ 1] -= bottleneck
            v = int(arc_to[a ^ 1])
        added += float(bottleneck)


def _reach_forward(net: FlowNetwork, flow: np.ndarray, in_s: np.ndarray) -> np.ndarray:
    """Vertices reachable from S along residual arcs (includes S)."""
    seen = in_s.copy()
    queue: List[int] = [int(v) for v in np.flatnonzero(in_s)]
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    qi = 0
    while qi < len(queue):
        u = queue[qi]
        qi += 1
        for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
            a = int(a)
            if arc_cap[a] - flow[a] <= 0:
                continue
            w = int(arc_to[a])
            if not seen[w]:
                seen[w] = True
                queue.append(w)
    return seen


def _reach_backward(net: FlowNetwork, flow: np.ndarray, in_t: np.ndarray) -> np.ndarray:
    """Vertices that can reach T along residual arcs (includes T).

    Uses the arc pairing: for an arc ``b = w -> u``, the paired arc
    ``b ^ 1 = u -> w`` is residual iff ``u`` can step to ``w``.
    """
    seen = in_t.copy()
    queue: List[int] = [int(v) for v in np.flatnonzero(in_t)]
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    qi = 0
    while qi < len(queue):
        w = queue[qi]
        qi += 1
        for b in adj_arcs[adj_start[w] : adj_start[w + 1]]:
            b = int(b)
            if arc_cap[b ^ 1] - flow[b ^ 1] <= 0:
                continue
            u = int(arc_to[b])
            if not seen[u]:
                seen[u] = True
                queue.append(u)
    return seen


def _pick_pierce(
    net: FlowNetwork, side: np.ndarray, forbidden: np.ndarray, avoid: np.ndarray
) -> int:
    """Choose the piercing vertex: a cut-boundary vertex just outside ``side``.

    Preference order (FlowCutter's "avoid augmenting paths" heuristic):
    boundary vertices outside ``avoid`` (the opposite terminal's reachable
    set) first, then any boundary vertex; within a class the smallest local
    id wins.  ``forbidden`` (the opposite terminal set) is never pierced.
    Returns ``-1`` when no admissible vertex exists.
    """
    adj_start, adj_arcs, arc_to = net.adj_start, net.adj_arcs, net.arc_to
    best = -1
    best_avoided = -1
    for u in np.flatnonzero(side):
        u = int(u)
        for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
            w = int(arc_to[int(a)])
            if side[w] or forbidden[w]:
                continue
            if not avoid[w]:
                if best_avoided < 0 or w < best_avoided:
                    best_avoided = w
            elif best < 0 or w < best:
                best = w
    return best_avoided if best_avoided >= 0 else best


def _prune_dominated(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """Keep the nondominated front, one point per smaller-side size.

    A point dominates another when its capacity is no larger and its
    balance no smaller.  The survivors, sorted by balance, have strictly
    increasing capacity — the monotonicity the property suite asserts.
    """
    best_by_size: dict[int, ParetoPoint] = {}
    for p in points:
        cur = best_by_size.get(p.small_side)
        if cur is None or p.value < cur.value:
            best_by_size[p.small_side] = p
    # a point survives only if strictly cheaper than every more balanced
    # point, so capacity strictly increases along the balance axis
    kept: List[ParetoPoint] = []
    for size in sorted(best_by_size, reverse=True):  # most balanced first
        p = best_by_size[size]
        if not kept or p.value < kept[-1].value:
            kept.append(p)
    return list(reversed(kept))
