"""Pluggable cut engines for natural-cut detection (ROADMAP item 5).

``repro.cutengine`` decides *which separating cut* is reported for each
contracted core/ring subproblem:

- :class:`~repro.cutengine.push_relabel.PushRelabelEngine` (default) — the
  paper's single min s-t cut; bit-identical to the pre-refactor behavior.
- :class:`~repro.cutengine.flowcutter.FlowCutterEngine` — FlowCutter-style
  incremental Pareto enumeration of (cut capacity, balance), selecting the
  sparsest front point (Hamann & Strasser, *Graph Bisection with
  Pareto-Optimization*).

Select with ``FilterConfig(cut_engine=...)`` or ``--cut-engine`` on the
CLI; see ``docs/CUT_ENGINES.md``.  Importing this package registers every
built-in engine; :func:`available_engines` is the axis the conformance
suite (``tests/test_cutengine_conformance.py``) parametrizes over.
"""

from .base import SOLVER_FALLBACKS, CutEngine
from .flowcutter import FlowCutterEngine, ParetoPoint
from .push_relabel import PushRelabelEngine
from .registry import available_engines, get_engine, register_engine

__all__ = [
    "CutEngine",
    "PushRelabelEngine",
    "FlowCutterEngine",
    "ParetoPoint",
    "SOLVER_FALLBACKS",
    "available_engines",
    "get_engine",
    "register_engine",
]
