"""The default engine: the paper's single min s-t cut per subproblem.

:class:`PushRelabelEngine` is a thin adapter from the historical solve path
(:func:`~repro.filtering.cut_problem.solve_cut_problem_sides` over the
configured flow backend) to the :class:`~repro.cutengine.base.CutEngine`
interface.  It is **bit-identical to the pre-refactor behavior** by
construction: the same function is called with the same arguments in the
same fallback order, and the benchmark gate
(``benchmarks/bench_cutengine.py``) pins whole-partition digests against
the pre-refactor anchors to keep it that way.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from .base import SOLVER_FALLBACKS, CutEngine, SolveFn
from .registry import register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..filtering.cut_problem import CutProblem

__all__ = ["PushRelabelEngine"]


@register_engine
class PushRelabelEngine(CutEngine):
    """One minimum s-t cut per subproblem (paper Section 2 behavior)."""

    name = "push_relabel"

    def __init__(self, solver: str = "push_relabel") -> None:
        self.solver = solver

    def solve(self, problem: "CutProblem") -> Tuple[float, np.ndarray]:
        # local import: filtering imports this package at module load
        from ..filtering.cut_problem import solve_cut_problem_sides

        return solve_cut_problem_sides(problem, self.solver)

    def solve_chain(self, solver: str) -> List[SolveFn]:
        from ..filtering.cut_problem import solve_cut_problem_sides

        chain = (solver,) + tuple(
            s for s in SOLVER_FALLBACKS.get(solver, ()) if s != solver
        )
        return [
            functools.partial(solve_cut_problem_sides, solver=candidate)
            for candidate in chain
        ]
