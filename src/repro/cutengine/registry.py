"""Engine registry: name -> :class:`~repro.cutengine.base.CutEngine`.

Engines self-register at import time via :func:`register_engine` (the
package ``__init__`` imports every built-in engine module, so importing
``repro.cutengine`` is enough to populate the registry).  The conformance
suite parametrizes over :func:`available_engines`, which is what makes a
future engine pick up the whole test harness automatically.
"""

from __future__ import annotations

from typing import Dict, Type

from .base import CutEngine

__all__ = ["register_engine", "get_engine", "available_engines"]

_REGISTRY: Dict[str, Type[CutEngine]] = {}
#: default-parameter singletons; engines are stateless between solves
_INSTANCES: Dict[str, CutEngine] = {}


def register_engine(cls: Type[CutEngine]) -> Type[CutEngine]:
    """Register an engine class under ``cls.name`` (usable as a decorator)."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"engine name {cls.name!r} already registered by {existing.__name__}")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted (the conformance-suite axis)."""
    return tuple(sorted(_REGISTRY))


def get_engine(name: str) -> CutEngine:
    """The default-parameter singleton for a registered engine name."""
    inst = _INSTANCES.get(name)
    if inst is None:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise ValueError(
                f"unknown cut engine {name!r}; choose from {available_engines()}"
            )
        inst = cls()
        _INSTANCES[name] = inst
    return inst
