"""The :class:`CutEngine` interface (ROADMAP item 5).

Natural-cut detection solves one contracted s-t cut instance per core/ring
subproblem (``filtering/cut_problem.py``).  Historically that solve was
hard-wired to a single push-relabel min cut; a :class:`CutEngine`
abstracts *how the separating cut is chosen* so that alternative
strategies — e.g. FlowCutter-style Pareto enumeration
(:class:`~repro.cutengine.flowcutter.FlowCutterEngine`) — can plug in
without touching the sweep, the executors, or the fragment extraction.

The contract every engine must honor:

- :meth:`CutEngine.solve` returns ``(cut_value, source_side_mask)`` over
  the problem's *local* vertices, with local vertex ``0`` (the contracted
  core) on the source side and local vertex ``1`` (the contracted ring) on
  the sink side.  The mask must describe a valid s-t cut of the merged
  flow network, and ``cut_value`` must equal the total capacity crossing
  it — downstream code recovers the original cut edges via
  :meth:`~repro.filtering.cut_problem.CutProblem.cut_edges_of_side` and
  only ever unions them, so any valid separating cut is safe.
- Solves are **pure functions of the problem**: no RNG, no wall clock, no
  global state.  This is what keeps the serial ≡ threads ≡ processes
  bit-identical contract intact for every engine (the conformance suite in
  ``tests/test_cutengine_conformance.py`` pins it per registered engine).
- :meth:`CutEngine.cache_key` salts the problem's network fingerprint with
  :meth:`CutEngine.cache_token` (engine identity + parameters).  Two
  engines may legally return *different* cuts for the same network, so a
  :class:`~repro.perf.cut_cache.CutCache` entry written by one engine must
  never be served to another — per-engine keying makes cross-engine hits
  impossible by construction.
- :meth:`CutEngine.solve_chain` exposes the resilience fallback chain
  (primary solve first, then independent fallbacks); filtering walks it
  exactly like the historical per-solver chain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..filtering.cut_problem import CutProblem

__all__ = ["CutEngine", "SolveFn", "SOLVER_FALLBACKS"]

#: one attempt at solving a cut problem: ``problem -> (value, source_side)``
SolveFn = Callable[["CutProblem"], Tuple[float, np.ndarray]]

#: fallback order when a flow solver raises: the paper's push-relabel drops
#: to the BFS-based reference solvers, which are slower but independent code
#: (historically lived in ``filtering/natural_cuts.py``, which re-exports it)
SOLVER_FALLBACKS = {
    "push_relabel": ("dinic", "edmonds_karp"),
    "scipy": ("push_relabel", "dinic"),
    "dinic": ("edmonds_karp",),
    "edmonds_karp": ("dinic",),
}


class CutEngine(ABC):
    """Strategy for choosing the separating cut of one contracted instance."""

    #: registry identifier; also the default cache-token payload
    name: ClassVar[str] = ""

    def cache_token(self) -> bytes:
        """Engine identity (+ parameters) salted into every cache key.

        Engines whose cuts depend on tunable parameters must fold them in
        here, so differently-configured instances never share entries.
        """
        return self.name.encode("ascii")

    def cache_key(self, problem: "CutProblem", solver: str = "push_relabel") -> bytes:
        """Per-engine :class:`~repro.perf.cut_cache.CutCache` key.

        The network fingerprint alone is *not* a safe key across engines:
        equal fingerprints imply equal min-cut values, but engines are free
        to return different (still valid) cuts for the same network.  The
        configured flow ``solver`` is folded in too — different backends
        may return different minimum cuts of equal value, and a long-lived
        injected cache must not serve one backend's side mask to another.
        """
        return b"\x00".join(
            (problem.fingerprint(), self.cache_token(), solver.encode("ascii"))
        )

    @abstractmethod
    def solve(self, problem: "CutProblem") -> Tuple[float, np.ndarray]:
        """Return ``(cut_value, source_side_mask)`` for one instance."""

    @abstractmethod
    def solve_chain(self, solver: str) -> Sequence[SolveFn]:
        """Ordered solve attempts: the primary first, then fallbacks.

        ``solver`` is the configured flow backend
        (``FilterConfig.flow_solver``); engines that do not use the flow
        solvers directly still append the push-relabel chain as a safety
        net, so a crashing engine degrades to the paper's min cut instead
        of dropping the subproblem.
        """
