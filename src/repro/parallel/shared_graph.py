"""Zero-copy graph sharing over ``multiprocessing.shared_memory``.

The paper's PUNCH runs every min-cut computation of a sweep in parallel on
one shared in-memory graph.  CPython process pools normally lose that free
sharing: a task closure that references the :class:`~repro.graph.graph.Graph`
re-pickles every CSR array into every task.  :class:`SharedGraph` restores
the shared-memory model:

- the owner process exports all CSR arrays (plus the memoized
  ``half_edge_weights()`` gather) **once** into named shared-memory blocks;
- the picklable :class:`SharedGraphHandle` (block names, dtypes, shapes —
  a few hundred bytes) travels to workers instead of the arrays;
- workers rehydrate the handle into **read-only zero-copy NumPy views**
  backed by the same physical pages, via :func:`attach_shared_graph`.

Lifecycle: the owner is a context manager; segments are additionally
guarded by a ``weakref.finalize`` so they are unlinked when the owner is
garbage-collected or the interpreter exits, even if ``close()`` was never
called (e.g. the driver crashed mid-run).  Workers only ever ``close()``
their attachments — unlinking is exclusively the owner's job — and worker
attachments are never registered with the ``resource_tracker`` so a
crashed or exiting worker neither unlinks a live segment nor warns about
"leaked" memory it does not own.
"""

from __future__ import annotations

import contextlib
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple
import weakref

import numpy as np

from ..graph.graph import Graph
from ..runtime.supervisor import register_segments, unregister_segments

__all__ = ["SharedGraph", "SharedGraphHandle", "AttachedGraph", "attach_shared_graph"]


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable reference to an exported graph.

    ``blocks`` maps each array field to its shared-memory block:
    ``(field, block_name, dtype_str, shape)``.  An empty ``blocks`` tuple
    marks a *local* handle (serial/threads backends): it resolves through
    the in-process registry and can never be rehydrated in another process.
    """

    token: str
    n: int
    m: int
    blocks: Tuple[Tuple[str, str, str, tuple], ...] = ()

    @property
    def is_shared(self) -> bool:
        """True when the handle is backed by shared-memory blocks."""
        return bool(self.blocks)

    def block_names(self) -> List[str]:
        """Names of the shared-memory segments (empty for local handles)."""
        return [name for _, name, _, _ in self.blocks]


@contextlib.contextmanager
def _untracked_attach():
    """Attach without registering with the resource tracker.

    Attaching registers the segment with the resource tracker just like
    creating does, making the tracker treat every worker as a co-owner:
    worker exits would unlink segments the owner still uses (or warn about
    "leaks").  Unregistering *after* the fact is no better — under fork the
    tracker process is shared, so a worker's unregister erases the owner's
    registration and the owner's eventual ``unlink()`` then trips a
    KeyError inside the tracker.  Suppressing registration during the
    attach (Python 3.13's ``track=False``, backported) keeps the tracker's
    view exactly what it should be: one owner, one registration.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _register
    try:
        yield
    finally:
        resource_tracker.register = original


def _release_segments(segments: List[shared_memory.SharedMemory], token: str = "") -> None:
    """Owner-side cleanup: close and unlink every block (idempotent).

    Also drops the export's ownership-registry record (see
    :mod:`repro.runtime.supervisor`) so the orphan reaper never sees live
    segments as reclaimable.
    """
    for shm in segments:
        with contextlib.suppress(Exception):
            shm.close()
        with contextlib.suppress(Exception):
            shm.unlink()
    segments.clear()
    if token:
        unregister_segments(token)


class SharedGraph:
    """Owner of one graph's shared-memory export (see module docstring).

    Usage::

        with SharedGraph(g) as sg:
            pool.submit(task, sg.handle, ...)

    ``close()`` (or leaving the ``with`` block) unlinks every segment; a
    second explicit ``close()`` raises, catching double-free bugs early.
    The finalizer makes cleanup crash-safe, not optional.
    """

    def __init__(self, g: Graph) -> None:
        token = f"sg-{secrets.token_hex(6)}"
        self._segments: List[shared_memory.SharedMemory] = []
        blocks = []
        try:
            for field, arr in g.shared_arrays().items():
                arr = np.ascontiguousarray(arr)
                # zero-length arrays (m == 0) still need a valid segment
                shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
                if arr.size:
                    np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
                self._segments.append(shm)
                blocks.append((field, shm.name, arr.dtype.str, tuple(arr.shape)))
        except Exception:
            _release_segments(self._segments, token)
            raise
        self.handle = SharedGraphHandle(token=token, n=g.n, m=g.m, blocks=tuple(blocks))
        self._closed = False
        # supervisor-reapable ownership record: a crashed owner's segments
        # can be identified (PID gone) and unlinked at the next startup
        register_segments(token, self.handle.block_names())
        # crash safety: unlink on GC / interpreter exit even without close()
        self._finalizer = weakref.finalize(self, _release_segments, self._segments, token)

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> List[str]:
        """Names of the owned segments (for leak assertions in tests)."""
        return self.handle.block_names()

    def nbytes(self) -> int:
        """Total bytes held in shared memory."""
        return sum(shm.size for shm in self._segments)

    def close(self) -> None:
        """Unlink all segments.  Raises on double close."""
        if self._closed:
            raise RuntimeError("SharedGraph is already closed")
        self._closed = True
        self._finalizer()  # runs _release_segments exactly once

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close()


class AttachedGraph:
    """A worker-side zero-copy view of an exported graph.

    ``graph`` is a :class:`Graph` whose arrays are read-only views into the
    owner's shared-memory blocks; no CSR data is copied.  ``close()`` only
    detaches the local mapping — the owner remains responsible for
    unlinking — and raises on double close.
    """

    def __init__(self, handle: SharedGraphHandle) -> None:
        if not handle.is_shared:
            raise ValueError(
                f"handle {handle.token!r} is local-only (no shared-memory blocks); "
                "it cannot be attached from another process"
            )
        self.handle = handle
        self._segments: List[shared_memory.SharedMemory] = []
        arrays: Dict[str, np.ndarray] = {}
        try:
            for field, name, dtype, shape in handle.blocks:
                with _untracked_attach():
                    shm = shared_memory.SharedMemory(name=name)
                self._segments.append(shm)
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
                view.setflags(write=False)
                arrays[field] = view
        except Exception:
            self._detach()
            raise
        self.graph = Graph.from_shared_arrays(arrays)
        self._closed = False

    def _detach(self) -> None:
        for shm in self._segments:
            with contextlib.suppress(Exception):
                shm.close()
        self._segments.clear()

    def close(self) -> None:
        """Detach the views.  Raises on double close; never unlinks."""
        if getattr(self, "_closed", True):
            raise RuntimeError("AttachedGraph is already closed")
        self._closed = True
        # the Graph holds views into the buffers; drop our reference first
        self.graph = None
        self._detach()


def attach_shared_graph(handle: SharedGraphHandle) -> AttachedGraph:
    """Rehydrate a handle into a zero-copy read-only graph view."""
    return AttachedGraph(handle)
