"""Persistent worker pool and per-run parallel runtime.

The paper's implementation amortizes its thread fleet across the whole run
("first picks all centers sequentially, then runs each minimum-cut
computation ... in parallel", and multistart/combination in parallel on the
same cores).  This module provides the equivalent for process pools:

- a **graph registry** shared by the driver and its workers: graphs are
  addressed by handle token, resolved to the original object in-process
  (serial/threads tiers) or lazily attached from shared memory in pool
  workers — so a task pickles a token, never an array;
- :class:`WorkerPool` — one ``ProcessPoolExecutor`` (or
  ``ThreadPoolExecutor``) created **once per run** and reused across
  filtering sweeps, multistart starts, and combination rounds, instead of
  one pool per map call;
- :func:`lpt_batches` — size-aware batch scheduling: subproblems are dealt
  largest-first onto the least-loaded batch (classic LPT), which
  approximates work stealing with plain executor futures;
- :class:`ParallelRuntime` — the per-run object drivers thread through the
  phases: owns the pool and every :class:`~.shared_graph.SharedGraph`
  export, merges worker-side cache counters and profiler spans back into
  the parent, and guarantees cleanup (including when the pool breaks and
  execution degrades to threads/serial).
"""

from __future__ import annotations

import contextlib
import heapq
import os
import secrets
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.graph import Graph
from ..perf.cut_cache import CutCache
from ..perf.timers import get_profiler
from .shared_graph import AttachedGraph, SharedGraph, SharedGraphHandle, attach_shared_graph

__all__ = [
    "WorkerPool",
    "ParallelRuntime",
    "lpt_batches",
    "register_graph",
    "unregister_graph",
    "resolve_graph",
    "worker_cut_cache",
    "in_worker",
]

# ---------------------------------------------------------------------------
# Graph registry (driver process AND pool workers — each process has its own)
# ---------------------------------------------------------------------------

_GRAPHS: Dict[str, Graph] = {}
_ATTACHMENTS: Dict[str, AttachedGraph] = {}
_WORKER_CACHE: Optional[CutCache] = None
_IN_WORKER = False


def register_graph(token: str, g: Graph) -> None:
    """Publish a graph under a handle token (driver side)."""
    _GRAPHS[token] = g


def unregister_graph(token: str) -> None:
    """Remove a token; closes the worker attachment if one exists."""
    _GRAPHS.pop(token, None)
    att = _ATTACHMENTS.pop(token, None)
    if att is not None:
        with contextlib.suppress(Exception):
            att.close()


def resolve_graph(handle: SharedGraphHandle) -> Graph:
    """The graph behind a handle, wherever this code runs.

    In the driver (and its thread/serial fallbacks) the token hits the
    registry entry made at export time — the original object, zero cost.
    In a pool worker the first resolution attaches the shared-memory view
    and caches it, so attachment happens once per worker per graph.
    """
    g = _GRAPHS.get(handle.token)
    if g is not None:
        return g
    if not handle.is_shared:
        raise KeyError(
            f"graph {handle.token!r} is not registered in this process and has "
            "no shared-memory blocks to attach"
        )
    att = attach_shared_graph(handle)
    _ATTACHMENTS[handle.token] = att
    _GRAPHS[handle.token] = att.graph
    return att.graph


def worker_cut_cache(max_entries: int) -> Optional[CutCache]:
    """This process's cut cache (one per worker; ``None`` when disabled)."""
    global _WORKER_CACHE  # repro: noqa(REPRO107) — per-process cache registry
    if max_entries < 1:
        return None
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CutCache(max_entries)
    return _WORKER_CACHE


def in_worker() -> bool:
    """True inside a pool worker process (set by the pool initializer)."""
    return _IN_WORKER


def _worker_init(handles: tuple, profile_enabled: bool) -> None:
    """Pool-worker initializer: fresh registry + eager attachments.

    The inherited (fork) registry refers to parent objects; clearing it
    makes workers always go through shared memory, so behavior is identical
    under fork and spawn start methods.
    """
    global _IN_WORKER, _WORKER_CACHE  # repro: noqa(REPRO107) — initializer resets per-process registries
    _IN_WORKER = True
    _GRAPHS.clear()
    _ATTACHMENTS.clear()
    _WORKER_CACHE = None
    for handle in handles:
        resolve_graph(handle)
    if profile_enabled:
        get_profiler().enabled = True


# ---------------------------------------------------------------------------
# Size-aware batch scheduling
# ---------------------------------------------------------------------------


def lpt_batches(costs: Sequence[float], n_batches: int) -> List[List[int]]:
    """Deal item indices largest-first onto the least-loaded batch (LPT).

    Longest-processing-time-first is the classic static approximation of
    work stealing: sorting by estimated cost and always assigning to the
    lightest batch keeps the makespan within 4/3 of optimal.  Deterministic
    (stable sort, ties broken by batch index); empty batches are dropped.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    costs = np.asarray(costs, dtype=np.float64)
    order = np.argsort(-costs, kind="stable")
    batches: List[List[int]] = [[] for _ in range(n_batches)]
    heap = [(0.0, b) for b in range(n_batches)]
    for i in order:
        load, b = heapq.heappop(heap)
        batches[b].append(int(i))
        heapq.heappush(heap, (load + float(costs[i]), b))
    return [b for b in batches if b]


# ---------------------------------------------------------------------------
# The persistent pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """A process (or thread) pool that lives for the whole run.

    Duck-typed against by :func:`repro.runtime.executor.resilient_map` and
    :func:`repro.filtering.executor.map_subproblems` (``kind``, ``executor``,
    ``usable()``, ``mark_broken()``, ``health_check()``) so neither module
    needs to import this package.  ``on_broken`` is invoked exactly once when
    the pool collapses (e.g. a worker died) — the owning
    :class:`ParallelRuntime` uses it to release shared-memory segments that
    no worker can read anymore.  ``mark_broken`` may race in from several
    failure sites at once (harvest loop, fast-path map, pool construction,
    the supervisor watchdog); a lock elects exactly one winner to run the
    shutdown + callback, so the release path stays single-shot under
    concurrency.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        kind: str = "processes",
        handles: Sequence[SharedGraphHandle] = (),
        profile: bool = False,
        on_broken=None,
        supervisor=None,
    ) -> None:
        if kind not in ("processes", "threads"):
            raise ValueError(f"pool kind must be 'processes' or 'threads', got {kind!r}")
        self.kind = kind
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.on_broken = on_broken
        self.supervisor = supervisor
        self._broken = False
        self._broken_lock = threading.Lock()
        if kind == "processes":
            self.executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(tuple(handles), profile),
            )
        else:
            # threads share the driver's registry, profiler, and caches
            self.executor = ThreadPoolExecutor(max_workers=self.workers)

    def usable(self) -> bool:
        return not self._broken

    def mark_broken(self) -> None:
        """Record pool collapse; shuts the executor down and fires on_broken.

        Idempotent and thread-safe: the flag flip and callback hand-off
        happen under a lock, so concurrent callers from different failure
        sites elect exactly one winner; everyone else returns immediately.
        """
        with self._broken_lock:
            if self._broken:
                return
            self._broken = True
            callback, self.on_broken = self.on_broken, None
        with contextlib.suppress(Exception):
            self.executor.shutdown(wait=False, cancel_futures=True)
        if callback is not None:
            callback()

    def health_check(self) -> bool:
        """Supervisor-backed health verdict; marks the pool broken on failure.

        Without an attached supervisor this is just :meth:`usable`.  With
        one, dead workers (liveness scan) and hung pools (heartbeat sentinel
        timeout) are detected *before* work is dispatched, so the caller can
        degrade — or its owner respawn — instead of wedging on a future that
        never completes.  Scheduling-only: the verdict never touches task
        payloads or RNG streams, so determinism is preserved.
        """
        if self._broken:
            return False
        if self.supervisor is None:
            return True
        if not self.supervisor.inspect(self):
            self.mark_broken()
            return False
        return True

    def map_ordered(self, fn, items: Sequence, chunksize: int = 1) -> list:
        """``executor.map`` preserving input order (results re-sequenced)."""
        return list(self.executor.map(fn, items, chunksize=chunksize))

    def shutdown(self, wait: bool = True) -> None:
        if not self._broken:
            self.executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Per-run runtime
# ---------------------------------------------------------------------------


class ParallelRuntime:
    """One run's parallel context: pool + shared graphs + merged telemetry.

    Created once by a driver (:func:`repro.core.punch.run_punch`,
    :func:`repro.balanced.driver.run_balanced_punch`) from a
    :class:`~repro.core.config.ParallelConfig` and threaded through every
    phase.  ``backend == "serial"`` is a fully valid degenerate runtime: no
    pool, no shared memory, tasks run inline — which is what makes the
    serial/threads/processes determinism contract testable, since all three
    run the *same* task structure.
    """

    def __init__(self, config=None, profile: Optional[bool] = None) -> None:
        from ..core.config import ParallelConfig  # late: config imports runtime pkgs

        self.config = ParallelConfig() if config is None else config
        self.profile = get_profiler().enabled if profile is None else bool(profile)
        self._pool: Optional[WorkerPool] = None
        self._shared: Dict[int, SharedGraph] = {}  # id(graph) -> export
        self._handles: Dict[int, SharedGraphHandle] = {}  # id(graph) -> handle
        self._tokens: List[str] = []
        self._closed = False
        # guards share()/release_shared(): a broken-pool callback can race a
        # concurrent share from another failure site
        self._share_lock = threading.Lock()
        # an attached runtime Supervisor watchdogs the pool and grants
        # respawns after collapses (None = classic degrade-only behavior)
        self.supervisor = None
        # telemetry merged from workers / pool lifecycle
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches_dispatched = 0
        self.pool_breaks = 0
        self.pool_restarts = 0
        self.shared_bytes = 0

    # -- properties ------------------------------------------------------
    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def workers(self) -> Optional[int]:
        return self.config.workers

    def active(self) -> bool:
        """True when a pooled backend is configured (threads/processes)."""
        return self.backend != "serial"

    # -- graph sharing ---------------------------------------------------
    def share(self, g: Graph) -> SharedGraphHandle:
        """Export ``g`` once (processes) or register it locally; memoized.

        The original graph is always registered in the driver's registry so
        thread and serial tiers — including degradation fallbacks — resolve
        the handle with zero overhead.
        """
        if self._closed:
            raise RuntimeError("ParallelRuntime is closed")
        key = id(g)
        with self._share_lock:
            handle = self._handles.get(key)
            if handle is not None:
                return handle
            if self.backend == "processes":
                sg = SharedGraph(g)
                handle = sg.handle
                self._shared[key] = sg
                self.shared_bytes += sg.nbytes()
            else:
                handle = SharedGraphHandle(token=f"local-{secrets.token_hex(6)}", n=g.n, m=g.m)
            register_graph(handle.token, g)
            self._handles[key] = handle
            self._tokens.append(handle.token)
            return handle

    def release_shared(self) -> None:
        """Unlink every shared-memory export (driver registry stays intact).

        Called when the process pool breaks: the segments have no readers
        left, and thread/serial fallbacks resolve handles through the
        registry, so holding the memory would be a pure leak.  Future
        :meth:`share` calls re-export.  Safe from concurrent failure sites:
        the export map is detached under the lock, so each
        :class:`SharedGraph` is closed exactly once no matter how many
        callers race in.
        """
        with self._share_lock:
            shared, self._shared = self._shared, {}
            # drop handle memoization for shm-backed graphs so share()
            # re-exports
            for key in list(self._handles):
                if key in shared:
                    del self._handles[key]
        for sg in shared.values():
            if not sg.closed:
                sg.close()

    # -- pool ------------------------------------------------------------
    def pool(self) -> Optional[WorkerPool]:
        """The run's pool, created lazily; ``None`` for the serial backend.

        After a collapse, an attached supervisor with restart budget left
        lets the *next* dispatch respawn a fresh pool (a prior
        :meth:`share` re-exports the segments first, since the broken
        pool's exports were released); without one, the broken pool stays
        retired and the degraded tiers finish the run.  Either way, work is
        replayed from derived seeds, so the partition cannot change.
        """
        if self.backend == "serial" or self._closed:
            return None
        if self._pool is not None and not self._pool.usable():
            if self.supervisor is None or not self.supervisor.grant_restart():
                return None  # broken; tiers degraded already, no budget left
            self._pool = None
            self.pool_restarts += 1
        if self._pool is None:
            self._pool = WorkerPool(
                workers=self.config.workers,
                kind="processes" if self.backend == "processes" else "threads",
                handles=[sg.handle for sg in self._shared.values()],
                profile=self.profile,
                on_broken=self._on_pool_broken,
                supervisor=self.supervisor,
            )
        return self._pool

    def _on_pool_broken(self) -> None:
        self.pool_breaks += 1
        self.release_shared()

    # -- telemetry merging ----------------------------------------------
    def note_batch(self, stats: Optional[dict]) -> None:
        """Fold one worker batch's counters/spans into the parent."""
        self.batches_dispatched += 1
        if not stats:
            return
        self.cache_hits += int(stats.get("cache_hits", 0))
        self.cache_misses += int(stats.get("cache_misses", 0))
        spans = stats.get("spans")
        if spans:
            get_profiler().merge(spans)

    def report(self) -> dict:
        """Run-report section (empty when nothing parallel happened)."""
        out: dict = {}
        if self.backend != "serial":
            out["backend"] = self.backend
            out["workers"] = (
                self._pool.workers if self._pool is not None
                else (self.workers or os.cpu_count() or 1)
            )
        if self.batches_dispatched:
            out["batches"] = self.batches_dispatched
        if self.cache_hits or self.cache_misses:
            out["worker_cache_hits"] = self.cache_hits
            out["worker_cache_misses"] = self.cache_misses
        if self.shared_bytes:
            out["shared_bytes"] = self.shared_bytes
        if self.pool_breaks:
            out["pool_breaks"] = self.pool_breaks
        if self.pool_restarts:
            out["pool_restarts"] = self.pool_restarts
        return out

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink all segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.on_broken = None
            self._pool.shutdown()
            self._pool = None
        self.release_shared()
        for token in self._tokens:
            unregister_graph(token)
        self._tokens.clear()
        self._handles.clear()

    def active_segment_names(self) -> List[str]:
        """Names of currently-live shared segments (tests / diagnostics)."""
        names: List[str] = []
        for sg in self._shared.values():
            if not sg.closed:
                names.extend(sg.segment_names())
        return names

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
