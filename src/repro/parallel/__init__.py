"""Shared-memory parallel runtime (zero-copy worker pool).

See ``docs/PERFORMANCE.md`` ("Shared-memory parallel runtime") for the
architecture: :class:`SharedGraph` exports the CSR arrays once into
``multiprocessing.shared_memory``, the persistent :class:`WorkerPool`
attaches them zero-copy in every worker, and :class:`ParallelRuntime`
owns both for the duration of one PUNCH run.
"""

from .pool import ParallelRuntime, WorkerPool, lpt_batches, register_graph, resolve_graph
from .shared_graph import AttachedGraph, SharedGraph, SharedGraphHandle, attach_shared_graph

__all__ = [
    "ParallelRuntime",
    "WorkerPool",
    "lpt_batches",
    "register_graph",
    "resolve_graph",
    "SharedGraph",
    "SharedGraphHandle",
    "AttachedGraph",
    "attach_shared_graph",
]
