"""Picklable task bodies dispatched onto the worker pool.

Every function here is module-level (process pools pickle by qualified
name) and receives the graph as a :class:`~.shared_graph.SharedGraphHandle`
via ``functools.partial`` — a task payload is only small primitives:
center ids, derived seeds, or label arrays of the (already contracted)
fragment graph.  The CSR arrays never travel; workers resolve the handle
through :func:`~.pool.resolve_graph`, which attaches the shared-memory
export once per worker.

Each task returns ``(payload, stats)`` where ``stats`` carries the
worker-local telemetry deltas — per-worker :class:`CutCache` hit/miss
counts and :class:`PhaseProfiler` span deltas — that the driver merges
back into the parent run report via
:meth:`~.pool.ParallelRuntime.note_batch`.  Span deltas are only reported
from real pool workers (``in_worker()``); under the threads and serial
tiers the work already runs in the driver process, where the global
profiler records it directly, and reporting deltas would double-count.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.traversal import BFSWorkspace, grow_bfs_region
from ..perf.timers import get_profiler, profile_span, span_delta
from ..runtime.faults import FaultPlan
from .pool import in_worker, resolve_graph, worker_cut_cache
from .shared_graph import SharedGraphHandle

__all__ = [
    "solve_center_batch",
    "run_start_task",
    "combine_iteration_task",
    "unbalanced_start_task",
]


class _TaskStats:
    """Collects one task's telemetry deltas into a plain picklable dict."""

    def __init__(self) -> None:
        self._prof = get_profiler()
        self._track_spans = in_worker() and self._prof.enabled
        self._before = self._prof.snapshot() if self._track_spans else None
        self.out: dict = {}

    def finish(self) -> dict:
        if self._track_spans:
            spans = span_delta(self._before, self._prof.snapshot())
            if spans:
                self.out["spans"] = spans
        return self.out


def solve_center_batch(
    centers: Sequence[int],
    *,
    handle: SharedGraphHandle,
    U: int,
    alpha: float,
    f: float,
    solver: str,
    cache_entries: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    engine: str = "push_relabel",
) -> Tuple[List[Optional[tuple]], dict]:
    """Solve the cut subproblems of one batch of BFS centers.

    Mirrors the paper's parallel stage: the driver picked the centers
    sequentially; the worker re-grows each BFS region (deterministic given
    the center — it does not depend on the driver's covered mask), builds
    the contracted flow network, and solves it with the named
    :class:`~repro.cutengine.base.CutEngine`, consulting this worker's
    :class:`CutCache` first (keyed per-engine, so long-lived worker caches
    can never serve one engine's cut to another).  Returns one entry per
    center: ``(center, cut_value, cut_edge_ids, fallbacks_used)`` with
    *global* edge ids, or ``None`` when the region yields no cut problem.
    The driver only ORs the edge ids into the marked set — a union, so the
    detected cuts are independent of batching and completion order.
    """
    from ..cutengine import get_engine
    from ..filtering.cut_problem import build_cut_problem
    from ..filtering.natural_cuts import _solve_one

    g = resolve_graph(handle)
    eng = get_engine(engine)
    tstats = _TaskStats()
    max_size = max(2, int(math.ceil(alpha * U)))
    core_size = max(1, int(math.ceil(alpha * U / f)))
    ws = BFSWorkspace(g.n)
    cache = worker_cut_cache(cache_entries) if in_worker() else None
    hits0, misses0 = (cache.counters() if cache is not None else (0, 0))

    results: List[Optional[tuple]] = []
    for center in centers:
        center = int(center)
        region = grow_bfs_region(g, ws, center, max_size, core_size)
        if region.exhausted:
            results.append(None)
            continue
        prob = build_cut_problem(g, region, center=center)
        if prob is None:
            results.append(None)
            continue
        entry = cache.get(eng.cache_key(prob, solver)) if cache is not None else None
        if entry is not None:
            value, side, fallbacks = entry[0], entry[1], 0
        else:
            with profile_span("natural_cuts.solve.worker"):
                value, side, fallbacks = _solve_one(prob, solver, fault_plan, engine)
            if cache is not None:
                cache.put(eng.cache_key(prob, solver), value, side)
        edge_ids = np.asarray(prob.cut_edges_of_side(side), dtype=np.int64)
        results.append((center, float(value), edge_ids, int(fallbacks)))

    if cache is not None:
        hits1, misses1 = cache.counters()
        tstats.out["cache_hits"] = hits1 - hits0
        tstats.out["cache_misses"] = misses1 - misses0
    return results, tstats.finish()


def run_start_task(
    seed: int,
    *,
    handle: SharedGraphHandle,
    U: int,
    cfg,
) -> Tuple[np.ndarray, float, dict]:
    """One independent multistart iteration (greedy + local search).

    ``seed`` is derived by the parent from its own RNG, so the set of
    starts is fixed before any dispatch and the outcome is independent of
    the executor.  Returns ``(labels, cost, stats)``.
    """
    from ..assembly.multistart import MultistartStats, _one_start

    g = resolve_graph(handle)
    tstats = _TaskStats()
    mstats = MultistartStats()
    sol = _one_start(g, U, cfg, np.random.default_rng(seed), mstats)
    tstats.out["ls_improvements"] = mstats.ls_improvements
    tstats.out["ls_steps"] = mstats.ls_steps
    return np.asarray(sol.labels), float(sol.cost), tstats.finish()


def combine_iteration_task(
    item: tuple,
    *,
    handle: SharedGraphHandle,
    U: int,
    cfg,
) -> Tuple[tuple, tuple, tuple, dict]:
    """One full combination iteration: fresh start + two combine legs.

    ``item`` is ``(seed, labels1, cost1, labels2, cost2)`` where the parent
    sampled the two elite parents.  Computes ``P`` (greedy + local search),
    ``P' = combine(P1, P2)``, ``P'' = combine(P, P')`` exactly as the
    sequential loop does, and returns the three ``(labels, cost)`` pairs
    for the parent to re-insert into the elite pool in iteration order.
    """
    from ..assembly.combine import combine_chain
    from ..assembly.multistart import MultistartStats, _one_start
    from ..assembly.pool import Solution

    seed, labels1, cost1, labels2, cost2 = item
    g = resolve_graph(handle)
    tstats = _TaskStats()
    rng = np.random.default_rng(seed)
    mstats = MultistartStats()
    p = _one_start(g, U, cfg, rng, mstats)
    s1 = Solution.from_labels(g, labels1, cost1)
    s2 = Solution.from_labels(g, labels2, cost2)
    with profile_span("assembly.combine"):
        p_prime, p_second = combine_chain(g, p, s1, s2, U, cfg, rng)
    tstats.out["ls_improvements"] = mstats.ls_improvements
    tstats.out["ls_steps"] = mstats.ls_steps
    return (
        (np.asarray(p.labels), float(p.cost)),
        (np.asarray(p_prime.labels), float(p_prime.cost)),
        (np.asarray(p_second.labels), float(p_second.cost)),
        tstats.finish(),
    )


def unbalanced_start_task(
    seed: int,
    *,
    handle: SharedGraphHandle,
    U_star: int,
    cfg,
) -> Tuple[np.ndarray, float, dict]:
    """One unbalanced start of the balanced driver (greedy + LS at phi=512).

    Returns ``(labels, cost, stats)``; the parent rebalances sequentially
    with its own derived RNG per start.
    """
    from ..assembly.cells import PartitionState
    from ..assembly.greedy import greedy_labels_for_graph
    from ..assembly.local_search import local_search

    g = resolve_graph(handle)
    tstats = _TaskStats()
    rng = np.random.default_rng(seed)
    with profile_span("balanced.unbalanced_start"):
        labels = greedy_labels_for_graph(g, U_star, rng, cfg.score_a, cfg.score_b)
        state = PartitionState(g, labels)
        local_search(
            state,
            U_star,
            variant=cfg.local_search,
            phi_max=cfg.phi,
            rng=rng,
            score_a=cfg.score_a,
            score_b=cfg.score_b,
        )
    return np.asarray(state.labels), float(state.cost), tstats.finish()
