"""Execution supervisor: watchdog, restart budget, orphaned-segment reaper.

Long-running partition runs must survive three failure families that the
per-item resilience of :func:`~repro.runtime.executor.resilient_map` cannot
see on its own (``docs/RESILIENCE.md`` has the full failure matrix):

- **dead or hung workers** — a SIGKILLed worker surfaces as
  ``BrokenProcessPool`` only when a future is harvested; a *hung* worker
  (e.g. stuck in an unbounded flow solve) never surfaces at all.  The
  :class:`Supervisor` watchdogs the pool: cheap liveness checks on every
  dispatch plus periodic heartbeat sentinel tasks with a timeout.
- **pool collapse mid-run** — the degradation ladder (processes → threads
  → serial) finishes the current map deterministically; the supervisor
  additionally holds a *restart budget* so the next dispatch can respawn a
  fresh process pool instead of running the rest of the job degraded.
  Work is always replayed from its derived seeds, never from partial
  state, so respawns cannot change the partition.
- **orphaned shared memory** — a driver killed between exporting a
  :class:`~repro.parallel.shared_graph.SharedGraph` and unlinking it leaks
  ``/dev/shm`` segments.  Every export is recorded in a small on-disk
  ownership registry (owner PID + segment names); :func:`reap_orphan_
  segments` scans it at supervisor startup, unlinks segments whose owner
  is gone, and removes the stale record.

The supervisor never makes algorithmic decisions — it only decides *where*
work runs and *when* to give up on an executor tier — so the bit-identical
determinism contract (serial ≡ threads ≡ processes) is preserved by
construction.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Supervisor",
    "register_segments",
    "unregister_segments",
    "registered_tokens",
    "reap_orphan_segments",
]


# ---------------------------------------------------------------------------
# Shared-memory ownership registry (sidecar files, one per export)
# ---------------------------------------------------------------------------


def _registry_dir(create: bool = True) -> Path:
    """Directory of ownership records (override: ``REPRO_SHM_REGISTRY``)."""
    base = os.environ.get("REPRO_SHM_REGISTRY", "").strip()
    path = Path(base) if base else Path(tempfile.gettempdir()) / "repro-shm-registry"
    if create:
        with contextlib.suppress(OSError):
            path.mkdir(parents=True, exist_ok=True)
    return path


def _record_path(pid: int, token: str) -> Path:
    return _registry_dir() / f"{pid}-{token}.json"


def register_segments(token: str, names: Sequence[str], pid: Optional[int] = None) -> None:
    """Record this process as the owner of shared-memory segments.

    Called by :class:`~repro.parallel.shared_graph.SharedGraph` at export
    time.  The record is advisory — losing it never breaks a run, it only
    means a crashed owner's segments wait for the OS instead of the reaper.
    """
    pid = os.getpid() if pid is None else int(pid)
    record = {"pid": pid, "token": token, "segments": list(names)}
    with contextlib.suppress(OSError):
        _record_path(pid, token).write_text(json.dumps(record))


def unregister_segments(token: str, pid: Optional[int] = None) -> None:
    """Drop the ownership record for ``token`` (idempotent)."""
    pid = os.getpid() if pid is None else int(pid)
    with contextlib.suppress(OSError):
        _record_path(pid, token).unlink(missing_ok=True)


def registered_tokens(pid: Optional[int] = None) -> List[str]:
    """Tokens currently registered for ``pid`` (tests / leak assertions)."""
    pid = os.getpid() if pid is None else int(pid)
    prefix = f"{pid}-"
    out: List[str] = []
    root = _registry_dir(create=False)
    if not root.is_dir():
        return out
    for entry in sorted(root.iterdir()):
        if entry.name.startswith(prefix) and entry.suffix == ".json":
            out.append(entry.name[len(prefix) : -len(".json")])
    return out


def _pid_alive(pid: int) -> bool:
    """True when a process with this PID exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown: err on the side of not reaping
    return True


def reap_orphan_segments() -> dict:
    """Unlink segments whose recorded owner process is gone.

    Scans the ownership registry; for every record whose PID no longer
    exists, unlinks the listed segments (attach + unlink — unlinking also
    clears this process's resource-tracker entry) and removes the record.
    Records of live owners are left untouched.  Returns a report dict:
    ``{"reaped_segments": [...], "stale_records": int}``.
    """
    reaped: List[str] = []
    stale = 0
    root = _registry_dir(create=False)
    if not root.is_dir():
        return {"reaped_segments": reaped, "stale_records": stale}
    for entry in sorted(root.glob("*.json")):
        try:
            record = json.loads(entry.read_text())
            pid = int(record["pid"])
            names = [str(n) for n in record.get("segments", [])]
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable record: treat as stale only if clearly abandoned
            # (we cannot know the owner, so never touch segments)
            with contextlib.suppress(OSError):
                entry.unlink()
            stale += 1
            continue
        if _pid_alive(pid):
            continue
        for name in names:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue  # already gone (finalizer or resource tracker won)
            except OSError:
                continue  # cannot attach: leave it for the OS
            with contextlib.suppress(OSError):
                shm.unlink()
            with contextlib.suppress(OSError):
                shm.close()
            reaped.append(name)
        with contextlib.suppress(OSError):
            entry.unlink()
        stale += 1
    return {"reaped_segments": reaped, "stale_records": stale}


# ---------------------------------------------------------------------------
# Heartbeat sentinel (module-level: must pickle into process pools)
# ---------------------------------------------------------------------------


def _heartbeat_probe(token: int) -> tuple:
    """Trivial sentinel task: echo the token back with the worker PID."""
    return (os.getpid(), token)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class Supervisor:
    """Watchdog + restart budget + reaper for one run's parallel runtime.

    Created by the drivers when ``RuntimeConfig.supervise`` is set and
    attached to the run's :class:`~repro.parallel.pool.ParallelRuntime`.
    Duck-typed against by :class:`~repro.parallel.pool.WorkerPool` (only
    :meth:`inspect` and the counters are consumed there), so the parallel
    package never has to import this module.

    Parameters
    ----------
    heartbeat_timeout : seconds a heartbeat sentinel may take before the
        pool is declared hung.
    heartbeat_interval : minimum seconds between heartbeat probes (liveness
        checks run on every dispatch regardless; 0 probes every time).
    max_pool_restarts : how many fresh process pools may be respawned after
        collapses before the run stays on the degraded tiers.
    max_stall_beats : how many consecutive *healthy* heartbeats a single
        stuck future may survive before the pool is declared hung anyway
        (covers one wedged worker while its siblings stay responsive).
    """

    def __init__(
        self,
        heartbeat_timeout: float = 10.0,
        heartbeat_interval: float = 2.0,
        max_pool_restarts: int = 1,
        max_stall_beats: int = 3,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0")
        if heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        if max_stall_beats < 1:
            raise ValueError("max_stall_beats must be >= 1")
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_pool_restarts = int(max_pool_restarts)
        self.max_stall_beats = int(max_stall_beats)
        # counters surfaced through run_report()["supervisor"]
        self.dead_workers_detected = 0
        self.hung_pools_detected = 0
        self.heartbeats_ok = 0
        self.pool_restarts = 0
        self.orphans_reaped = 0
        self.stale_records_removed = 0
        self._hb_token = 0
        self._last_beat: Optional[float] = None
        self._startup_report: Dict[str, object] = {}

    # -- startup -----------------------------------------------------------
    def startup(self) -> dict:
        """Reap orphaned segments left by dead owners; returns the report."""
        report = reap_orphan_segments()
        self.orphans_reaped += len(report["reaped_segments"])
        self.stale_records_removed += int(report["stale_records"])
        self._startup_report = report
        return report

    # -- watchdog ----------------------------------------------------------
    def inspect(self, pool) -> bool:
        """Health verdict for a :class:`WorkerPool` (True = keep using it).

        Thread pools share the driver process and cannot die independently,
        so only process pools are probed.  A ``False`` verdict means the
        caller should ``mark_broken()`` the pool; the resilience ladder (or
        a granted restart) takes it from there.  Scheduling-only: the
        verdict never influences task payloads or RNG streams.
        """
        if getattr(pool, "kind", "threads") != "processes":
            return True
        if not self._workers_alive(pool):
            self.dead_workers_detected += 1
            return False
        if not self._heartbeat_due():
            return True
        if not self._heartbeat(pool):
            self.hung_pools_detected += 1
            return False
        return True

    def _workers_alive(self, pool) -> bool:
        """Cheap liveness scan over the executor's worker processes."""
        procs = getattr(pool.executor, "_processes", None)
        if not procs:
            return True  # not spawned yet (or private API moved): trust it
        return all(p.is_alive() for p in list(procs.values()))

    def _heartbeat_due(self) -> bool:
        now = time.monotonic()
        if self._last_beat is not None and now - self._last_beat < self.heartbeat_interval:
            return False
        self._last_beat = now
        return True

    def _heartbeat(self, pool) -> bool:
        """Round-trip a sentinel task; False when it times out or errors."""
        self._hb_token += 1
        token = self._hb_token
        try:
            fut = pool.executor.submit(_heartbeat_probe, token)
            _pid, echoed = fut.result(timeout=self.heartbeat_timeout)
        except Exception:
            return False
        if echoed != token:
            return False
        self.heartbeats_ok += 1
        return True

    # -- restart budget ----------------------------------------------------
    def grant_restart(self) -> bool:
        """Consume one pool-restart grant; False once the budget is spent."""
        if self.pool_restarts >= self.max_pool_restarts:
            return False
        self.pool_restarts += 1
        return True

    # -- reporting ---------------------------------------------------------
    def report(self) -> dict:
        """Run-report section (``run_report()["supervisor"]``)."""
        out: Dict[str, object] = {"enabled": True}
        if self.orphans_reaped:
            out["orphans_reaped"] = self.orphans_reaped
        if self.stale_records_removed:
            out["stale_records_removed"] = self.stale_records_removed
        if self.dead_workers_detected:
            out["dead_workers_detected"] = self.dead_workers_detected
        if self.hung_pools_detected:
            out["hung_pools_detected"] = self.hung_pools_detected
        if self.heartbeats_ok:
            out["heartbeats_ok"] = self.heartbeats_ok
        if self.pool_restarts:
            out["pool_restarts"] = self.pool_restarts
        return out
