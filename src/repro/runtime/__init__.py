"""Resilient pipeline runtime: budgets, fault-tolerant execution, checkpoints.

The algorithm-engineering literature treats wall-clock budgets and anytime
behaviour as first-class concerns; PUNCH's structure cooperates naturally,
because both phases are built from independently failable units (each
natural-cut min-cut subproblem is solved in isolation, and each multistart
iteration only ever *adds* a candidate).  This package provides the four
pieces that turn that structure into a resilient runtime:

- :mod:`~repro.runtime.budget` — :class:`RunBudget`, a shared deadline with
  cooperative cancellation checkpoints; on expiry each phase returns its
  best-so-far *valid* state instead of raising.
- :mod:`~repro.runtime.executor` — :func:`resilient_map`, a fault-tolerant
  wrapper over :func:`~repro.filtering.executor.map_subproblems` with
  per-item timeouts, bounded retries with exponential backoff and seeded
  jitter, and automatic degradation ``processes -> threads -> serial``.
- :mod:`~repro.runtime.checkpoint` — crash-consistent checkpoint files for
  the multistart and balanced loops (checksummed manifest, rotated
  generations, safe degradation), so killed runs can be resumed.
- :mod:`~repro.runtime.faults` — a seeded, deterministic :class:`FaultPlan`
  that injects exceptions, delays, and timeouts so all of the above is
  testable in CI without flaky timing tricks.
- :mod:`~repro.runtime.supervisor` — the execution :class:`Supervisor`:
  worker watchdog (liveness + heartbeat sentinels), pool-restart budget,
  and the orphaned shared-memory reaper.
- :mod:`~repro.runtime.chaos` — :class:`ChaosPlan`, the deterministic chaos
  harness (worker kills, checkpoint corruption, memory pressure).

See ``docs/RESILIENCE.md`` for the full policy description.
"""

from .budget import RunBudget
from .chaos import ChaosPlan
from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    load_checkpoint_safe,
    rng_state_checksum,
    save_checkpoint,
)
from .executor import ExecutionReport, resilient_map
from .faults import FaultPlan, InjectedFault
from .supervisor import Supervisor, reap_orphan_segments

__all__ = [
    "RunBudget",
    "ExecutionReport",
    "resilient_map",
    "FaultPlan",
    "InjectedFault",
    "ChaosPlan",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_safe",
    "rng_state_checksum",
    "Supervisor",
    "reap_orphan_segments",
]
