"""Resilient pipeline runtime: budgets, fault-tolerant execution, checkpoints.

The algorithm-engineering literature treats wall-clock budgets and anytime
behaviour as first-class concerns; PUNCH's structure cooperates naturally,
because both phases are built from independently failable units (each
natural-cut min-cut subproblem is solved in isolation, and each multistart
iteration only ever *adds* a candidate).  This package provides the four
pieces that turn that structure into a resilient runtime:

- :mod:`~repro.runtime.budget` — :class:`RunBudget`, a shared deadline with
  cooperative cancellation checkpoints; on expiry each phase returns its
  best-so-far *valid* state instead of raising.
- :mod:`~repro.runtime.executor` — :func:`resilient_map`, a fault-tolerant
  wrapper over :func:`~repro.filtering.executor.map_subproblems` with
  per-item timeouts, bounded retries with exponential backoff and seeded
  jitter, and automatic degradation ``processes -> threads -> serial``.
- :mod:`~repro.runtime.checkpoint` — atomic checkpoint files for the
  multistart and balanced loops, so killed runs can be resumed.
- :mod:`~repro.runtime.faults` — a seeded, deterministic :class:`FaultPlan`
  that injects exceptions, delays, and timeouts so all of the above is
  testable in CI without flaky timing tricks.

See ``docs/RESILIENCE.md`` for the full policy description.
"""

from .budget import RunBudget
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .executor import ExecutionReport, resilient_map
from .faults import FaultPlan, InjectedFault

__all__ = [
    "RunBudget",
    "ExecutionReport",
    "resilient_map",
    "FaultPlan",
    "InjectedFault",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
]
