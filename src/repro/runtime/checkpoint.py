"""Crash-consistent checkpoint files for resumable multistart / balanced runs.

A checkpoint is a pickled envelope written via a temporary file and
``os.replace``, so a kill mid-write never corrupts an existing checkpoint.
Format version 2 adds a crash-consistency manifest around the payload::

    {"version": 2, "kind": "multistart" | "balanced",
     "crc": <crc32 of the pickled state bytes>,
     "rng": {"bit_generator": "PCG64", "state_crc": <crc32>} | None,
     "state": <pickled state bytes>}

``kind`` tags the producing loop; loading with the wrong kind — or a future
format version — raises :class:`CheckpointError` rather than resuming
garbage.  The ``crc`` detects truncated or bit-flipped files; the ``rng``
manifest records which bit generator produced the stored stream so a resume
under a different RNG configuration is rejected with a clear error instead
of silently diverging.  Version-1 files (no manifest) still load.

Two layers of corruption handling:

- :func:`load_checkpoint` is strict — any mismatch raises.
- :func:`load_checkpoint_safe` never raises for bad files: it falls back
  through rotated generations (``<path>.bak1``, ``.bak2``, …, written when
  ``save_checkpoint(..., generations=N)`` with ``N > 1``) and degrades to a
  clean fresh start with a surfaced ``RuntimeWarning`` when nothing valid
  remains.  The drivers use this path so a garbled checkpoint can never
  abort a run.

The ``state`` payload is producer-defined but always contains the loop
index, the best-so-far solution, and the numpy bit-generator state, so a
resumed run continues the *same* random sequence it would have followed.
The format is documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
import warnings
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_safe",
    "rng_state_checksum",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_VERSION = 2

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used (corrupt/kind/version/RNG)."""


def rng_state_checksum(bit_generator_state: dict) -> int:
    """Stable CRC32 of a numpy bit-generator state dict.

    Used both in the manifest (integrity of the stored stream) and by the
    drivers to fingerprint the RNG stream position at loop entry, which is a
    pure function of the run's seed configuration.
    """
    return zlib.crc32(pickle.dumps(bit_generator_state, protocol=4)) & 0xFFFFFFFF


def _rng_manifest(state: dict) -> Optional[dict]:
    """Manifest entry describing the RNG state carried by ``state``."""
    rng_state = state.get("rng_state") if isinstance(state, dict) else None
    if not isinstance(rng_state, dict):
        return None
    return {
        "bit_generator": rng_state.get("bit_generator"),
        "state_crc": rng_state_checksum(rng_state),
    }


def _generation_path(path: Path, gen: int) -> Path:
    """The rotated backup path for generation ``gen`` (1 = newest backup)."""
    return path.with_name(path.name + f".bak{gen}")


def save_checkpoint(
    path: PathLike,
    kind: str,
    state: dict,
    *,
    generations: int = 1,
    fault_plan=None,
    key: int = 0,
) -> None:
    """Atomically write ``state`` (pickle) tagged with ``kind``.

    With ``generations > 1`` the previous checkpoint is rotated to
    ``<path>.bak1`` (and older backups shift down) before the new file
    lands, so a corrupted newest generation can be recovered by
    :func:`load_checkpoint_safe`.  Every rename is atomic; a crash at any
    point leaves at least one valid generation on disk.

    ``fault_plan``/``key`` are the chaos-testing hook: a plan exposing
    ``corrupt_checkpoint(path, key)`` (see :class:`~repro.runtime.chaos.
    ChaosPlan`) is invoked after the write, simulating a torn file.
    """
    if generations < 1:
        raise ValueError("generations must be >= 1")
    path = Path(path)
    state_bytes = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    payload = {
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "crc": zlib.crc32(state_bytes) & 0xFFFFFFFF,
        "rng": _rng_manifest(state),
        "state": state_bytes,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
        for gen in range(generations - 1, 1, -1):
            older = _generation_path(path, gen - 1)
            if older.exists():
                os.replace(older, _generation_path(path, gen))
        if generations > 1 and path.exists():
            os.replace(path, _generation_path(path, 1))
        os.replace(tmp, path)
    except BaseException:
        # cleanup of the temp file must not mask the original failure
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    if fault_plan is not None:
        corrupt = getattr(fault_plan, "corrupt_checkpoint", None)
        if corrupt is not None:
            corrupt(path, key)


def _verify_rng(payload: dict, state: dict, path: Path, rng) -> None:
    """Cross-check the RNG manifest against the state and the resuming rng."""
    manifest = payload.get("rng")
    if not isinstance(manifest, dict):
        return
    rng_state = state.get("rng_state") if isinstance(state, dict) else None
    if isinstance(rng_state, dict):
        if rng_state_checksum(rng_state) != manifest.get("state_crc"):
            raise CheckpointError(
                f"checkpoint {path} RNG state does not match its manifest "
                "checksum; the file is corrupted"
            )
    if rng is not None:
        expected = type(rng.bit_generator).__name__
        stored = manifest.get("bit_generator")
        if stored is not None and stored != expected:
            raise CheckpointError(
                f"checkpoint {path} was produced with the {stored!r} bit "
                f"generator but this run uses {expected!r}; resuming would "
                "silently diverge from both seed configurations"
            )


def load_checkpoint(path: PathLike, kind: str, *, rng=None) -> Optional[dict]:
    """Load a checkpoint's state; ``None`` when the file does not exist.

    Raises :class:`CheckpointError` when the file is unreadable or fails its
    checksum, was written by a different loop kind, has an unknown format
    version, or (with ``rng`` given) carries a stream from a different bit
    generator than the resuming run's.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(f"checkpoint {path} has an unexpected shape")
    version = payload.get("version")
    if version not in (1, CHECKPOINT_VERSION):
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; "
            f"this build reads versions 1..{CHECKPOINT_VERSION}"
        )
    if payload.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} was written by a {payload.get('kind')!r} loop, "
            f"not {kind!r}"
        )
    if version == 1:
        return payload["state"]
    state_bytes = payload["state"]
    if not isinstance(state_bytes, bytes):
        raise CheckpointError(f"checkpoint {path} has an unexpected shape")
    if zlib.crc32(state_bytes) & 0xFFFFFFFF != payload.get("crc"):
        raise CheckpointError(
            f"checkpoint {path} failed its checksum (truncated or bit-flipped)"
        )
    try:
        state = pickle.loads(state_bytes)
    except (pickle.UnpicklingError, EOFError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"cannot decode checkpoint {path}: {exc}") from exc
    _verify_rng(payload, state, path, rng)
    return state


def load_checkpoint_safe(
    path: PathLike,
    kind: str,
    *,
    rng=None,
    generations: int = 1,
) -> Tuple[Optional[dict], dict]:
    """Load the newest valid checkpoint generation; never raises for bad files.

    Tries ``path`` first, then the rotated backups ``<path>.bak1`` …
    ``.bak{generations-1}``.  Returns ``(state, recovery)`` where
    ``recovery`` is empty for a clean load, and otherwise records what was
    discarded and where the state came from::

        {"recovered_from": "run.ckpt.bak1",
         "discarded": ["run.ckpt: ... checksum ..."]}       # older gen won
        {"fresh_start": True, "discarded": [...]}           # nothing valid

    Any degradation is additionally surfaced as a ``RuntimeWarning`` so an
    operator watching the run learns that history was lost, while the run
    itself continues — a garbled checkpoint must never crash a resume.
    """
    path = Path(path)
    candidates = [path] + [_generation_path(path, g) for g in range(1, max(1, generations))]
    discarded: List[str] = []
    for pos, cand in enumerate(candidates):
        try:
            state = load_checkpoint(cand, kind, rng=rng)
        except CheckpointError as exc:
            discarded.append(f"{cand.name}: {exc}")
            continue
        if state is None:
            continue  # this generation does not exist
        if pos == 0 and not discarded:
            return state, {}
        recovery = {"recovered_from": cand.name, "discarded": list(discarded)}
        warnings.warn(
            f"checkpoint degraded to generation {cand.name!r}; discarded: "
            + "; ".join(discarded),
            RuntimeWarning,
            stacklevel=2,
        )
        return state, recovery
    if discarded:
        warnings.warn(
            "no valid checkpoint generation found; starting fresh (discarded: "
            + "; ".join(discarded) + ")",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, {"fresh_start": True, "discarded": discarded}
    return None, {}
