"""Atomic checkpoint files for resumable multistart / balanced runs.

A checkpoint is a pickled dict ``{"version", "kind", "state"}`` written via
a temporary file and ``os.replace``, so a kill mid-write never corrupts an
existing checkpoint.  ``kind`` tags the producing loop (``"multistart"`` or
``"balanced"``); loading with the wrong kind — or a future format version —
raises :class:`CheckpointError` rather than resuming garbage.

The ``state`` payload is producer-defined but always contains the loop
index, the best-so-far solution, and the numpy bit-generator state, so a
resumed run continues the *same* random sequence it would have followed.
The format is documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used (wrong kind/version/shape)."""


def save_checkpoint(path: PathLike, kind: str, state: dict) -> None:
    """Atomically write ``state`` (pickle) tagged with ``kind``."""
    path = Path(path)
    payload = {"version": CHECKPOINT_VERSION, "kind": str(kind), "state": state}
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        # cleanup of the temp file must not mask the original failure
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def load_checkpoint(path: PathLike, kind: str) -> Optional[dict]:
    """Load a checkpoint's state; ``None`` when the file does not exist.

    Raises :class:`CheckpointError` when the file is unreadable, was written
    by a different loop kind, or has an unknown format version.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(f"checkpoint {path} has an unexpected shape")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {payload.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if payload.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} was written by a {payload.get('kind')!r} loop, "
            f"not {kind!r}"
        )
    return payload["state"]
