"""Wall-clock run budgets with cooperative cancellation checkpoints.

A :class:`RunBudget` is created once per run and handed down through the
phases.  Code at natural stopping points calls :meth:`RunBudget.checkpoint`
(or :meth:`expired`); when the deadline has passed, the caller is expected
to stop starting new work and return its best-so-far valid state — never to
raise.  The budget records *where* expiry was noticed (the checkpoint
labels), which the drivers surface in their run reports.

The clock is injectable so tests can drive expiry deterministically instead
of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

__all__ = ["RunBudget"]


class RunBudget:
    """A wall-clock budget shared by every phase of a run.

    Parameters
    ----------
    seconds : total budget in seconds, or ``None`` for unlimited.
    clock : monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError("budget seconds must be >= 0 (or None for unlimited)")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()
        #: labels of checkpoints at which expiry was observed, in order
        self.expired_at: List[str] = []

    @classmethod
    def unlimited(cls) -> "RunBudget":
        """A budget that never expires."""
        return cls(None)

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, clamped at 0)."""
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the deadline has passed (always False when unlimited)."""
        return self.seconds is not None and self.elapsed() >= self.seconds

    def checkpoint(self, label: str = "") -> bool:
        """Cooperative cancellation point: returns True when expired.

        Records ``label`` so run reports can show where the deadline hit.
        """
        if not self.expired():
            return False
        if label and (not self.expired_at or self.expired_at[-1] != label):
            self.expired_at.append(label)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.seconds is None:
            return "RunBudget(unlimited)"
        return f"RunBudget({self.seconds}s, {self.remaining():.2f}s left)"
