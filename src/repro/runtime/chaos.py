"""Deterministic chaos harness: hard faults on a seeded schedule.

:class:`ChaosPlan` extends :class:`~repro.runtime.faults.FaultPlan` with the
three fault families the execution supervisor must survive (see
``docs/RESILIENCE.md``):

- **worker kills** — a true ``SIGKILL`` of the worker process at the
  ``"process"`` site (unlike ``crash_rate``'s ``os._exit``, the process gets
  no chance to flush or clean up), which collapses the pool and exercises
  watchdog detection plus executor-tier degradation;
- **checkpoint corruption** — after :func:`~repro.runtime.checkpoint.
  save_checkpoint` writes a file, the plan may truncate it or flip a byte,
  exercising checksum detection and generation fallback on resume;
- **memory pressure** — per-sweep shrinking of the
  :class:`~repro.perf.cut_cache.CutCache`, forcing evictions (safe by
  construction: cache hits are bit-identical to fresh solves, so pressure
  can change only speed, never partitions).

Every decision is a pure function of ``(seed, site, key)``, so a chaos run
is exactly reproducible — the same plan kills the same workers and corrupts
the same checkpoints on every execution, which is what lets the chaos suite
assert bit-identical partitions against a fault-free serial baseline.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from .faults import FaultPlan, InjectedFault, _uniform

__all__ = ["ChaosPlan"]

#: file-corruption modes understood by :meth:`ChaosPlan.corrupt_checkpoint`
_CORRUPT_MODES = ("truncate", "bitflip")


@dataclass(frozen=True)
class ChaosPlan(FaultPlan):
    """Seeded schedule of kills, checkpoint corruption, and memory pressure.

    Attributes (on top of :class:`FaultPlan`)
    -----------------------------------------
    kill_rate : probability that a ``"process"``-site check SIGKILLs the
        worker process — a harder failure than ``crash_rate`` because the
        process cannot run any cleanup.
    checkpoint_corrupt_rate : probability that a checkpoint write (keyed by
        its loop iteration) is corrupted *after* the atomic rename, as a
        crash between write and fsync would.
    checkpoint_corrupt_mode : ``"truncate"`` (keep the first half of the
        file) or ``"bitflip"`` (flip one deterministic byte).
    cache_pressure_rate / cache_pressure_cap : probability that a filtering
        sweep (keyed by index) caps the :class:`~repro.perf.cut_cache.
        CutCache` at ``cache_pressure_cap`` entries, forcing eviction.

    The ``sites`` filter of the base plan applies to the new checks through
    their own site names: ``"process"`` (kills), ``"checkpoint"``, and
    ``"memory"``.
    """

    kill_rate: float = 0.0
    checkpoint_corrupt_rate: float = 0.0
    checkpoint_corrupt_mode: str = "truncate"
    cache_pressure_rate: float = 0.0
    cache_pressure_cap: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("kill_rate", "checkpoint_corrupt_rate", "cache_pressure_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.checkpoint_corrupt_mode not in _CORRUPT_MODES:
            raise ValueError(
                f"checkpoint_corrupt_mode must be one of {_CORRUPT_MODES}, "
                f"got {self.checkpoint_corrupt_mode!r}"
            )
        if self.cache_pressure_cap < 1:
            raise ValueError("cache_pressure_cap must be >= 1")

    # -- worker kills -----------------------------------------------------
    def should_kill(self, site: str, key: int, attempt: int = 0) -> bool:
        """True when this check should SIGKILL the worker process.

        Like :meth:`FaultPlan.should_crash`, kills are exclusive to the
        ``"process"`` site: it is only visited inside pool workers, so the
        driver (and thread/serial fallback tiers) can never kill itself.
        """
        if site != "process":
            return False
        if not self._active(site, attempt) or self.kill_rate <= 0.0:
            return False
        return _uniform(self.seed, "kill:" + site, key, attempt) < self.kill_rate

    def apply(self, site: str, key: int, attempt: int = 0) -> None:
        """Run all injections for one site visit (delay, kill, crash, raise)."""
        d = self.delay(site, key, attempt)
        if d > 0:
            time.sleep(d)
        if self.should_kill(site, key, attempt):  # pragma: no cover - kills the process
            os.kill(os.getpid(), signal.SIGKILL)
        if self.should_crash(site, key, attempt):  # pragma: no cover - kills the process
            os._exit(77)
        if self.should_fail(site, key, attempt):
            raise InjectedFault(f"injected fault at {site}[{key}] attempt {attempt}")

    # -- checkpoint corruption --------------------------------------------
    def corrupt_checkpoint(self, path, key: int) -> str | None:
        """Maybe corrupt the checkpoint file at ``path`` (keyed by iteration).

        Called by :func:`~repro.runtime.checkpoint.save_checkpoint` after the
        atomic rename.  Returns the corruption mode applied, or ``None``.
        Deterministic: the same ``(seed, key)`` always makes the same call.
        """
        if not self._active("checkpoint", 0) or self.checkpoint_corrupt_rate <= 0.0:
            return None
        if _uniform(self.seed, "ckpt:corrupt", key, 0) >= self.checkpoint_corrupt_rate:
            return None
        path = Path(path)
        data = path.read_bytes()
        if not data:
            return None
        if self.checkpoint_corrupt_mode == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:  # bitflip
            offset = int(_uniform(self.seed, "ckpt:offset", key, 0) * len(data))
            offset = min(offset, len(data) - 1)
            flipped = bytes([data[offset] ^ 0xFF])
            path.write_bytes(data[:offset] + flipped + data[offset + 1 :])
        return self.checkpoint_corrupt_mode

    # -- memory pressure ---------------------------------------------------
    def cache_pressure(self, key: int) -> int | None:
        """Cache cap to apply for sweep ``key`` (``None`` = no pressure)."""
        if not self._active("memory", 0) or self.cache_pressure_rate <= 0.0:
            return None
        if _uniform(self.seed, "mem:pressure", key, 0) < self.cache_pressure_rate:
            return int(self.cache_pressure_cap)
        return None
