"""Fault-tolerant map over independent subproblems.

:func:`resilient_map` wraps :func:`~repro.filtering.executor.map_subproblems`
with the resilience policy described in ``docs/RESILIENCE.md``:

- **per-item timeout** — a task that exceeds ``timeout`` seconds counts as a
  failed attempt (pooled executors only; a serial loop cannot preempt).
- **bounded retry** — every item gets ``max_retries`` extra attempts, with
  exponential backoff and seeded jitter between attempts.
- **tier degradation** — ``BrokenProcessPool`` / pickling errors demote the
  executor ``processes -> threads -> serial`` and re-run everything not yet
  finished; degradation does not consume item attempts.
- **deadline skips** — when a :class:`~repro.runtime.budget.RunBudget`
  expires, unfinished items are skipped (result ``None``) instead of raised.

Items that exhaust their attempts are also skipped, so the caller always
gets a result list of the same length as the input; the paired
:class:`ExecutionReport` accounts for every retry, timeout, skip, and
degradation.  With no timeout, faults, or budget, pooled tiers take the
plain chunked ``map_subproblems`` fast path, keeping no-fault overhead
negligible.
"""

from __future__ import annotations

import contextlib
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from .budget import RunBudget
from .faults import FaultPlan

__all__ = ["ExecutionReport", "resilient_map", "DEGRADATION_ORDER"]

T = TypeVar("T")

#: executor tiers from most to least parallel; degradation walks rightward
DEGRADATION_ORDER = ("processes", "threads", "serial")

#: exceptions that indict the executor tier rather than the task
_DEGRADE_ERRORS = (BrokenExecutor, pickle.PicklingError)


def _is_degrade_error(exc: BaseException) -> bool:
    """True when the failure indicts the executor tier, not the task.

    CPython reports unpicklable callables inconsistently — lambdas defined
    at module scope raise :class:`pickle.PicklingError`, but *local* objects
    (closures, lambdas inside a function) raise ``AttributeError: Can't
    pickle local object`` and some types ``TypeError: cannot pickle`` — so
    the message is consulted for those two types.
    """
    if isinstance(exc, _DEGRADE_ERRORS):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(exc).lower()

_MAX_ERROR_SAMPLES = 8


@dataclass
class ExecutionReport:
    """Accounting for one :func:`resilient_map` call.

    ``failures`` counts raised attempts (including ones that later succeeded
    on retry); ``skipped`` counts items that exhausted their attempts and
    ``deadline_skipped`` items never finished because the budget expired —
    both appear as ``None`` in the result list.
    """

    requested_executor: str = "serial"
    final_executor: str = "serial"
    items: int = 0
    succeeded: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    skipped: int = 0
    deadline_skipped: int = 0
    executor_degradations: int = 0
    error_samples: List[str] = field(default_factory=list)

    def record_error(self, exc: BaseException) -> None:
        """Keep a bounded sample of failure messages for the run report."""
        if len(self.error_samples) < _MAX_ERROR_SAMPLES:
            self.error_samples.append(f"{type(exc).__name__}: {exc}")

    def any_incident(self) -> bool:
        """True when anything other than clean first-try successes happened."""
        return bool(
            self.failures
            or self.retries
            or self.timeouts
            or self.skipped
            or self.deadline_skipped
            or self.executor_degradations
        )

    def merge(self, other: "ExecutionReport") -> None:
        """Accumulate another report (e.g. one per coverage sweep)."""
        self.items += other.items
        self.succeeded += other.succeeded
        self.failures += other.failures
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.skipped += other.skipped
        self.deadline_skipped += other.deadline_skipped
        self.executor_degradations += other.executor_degradations
        self.final_executor = other.final_executor
        for msg in other.error_samples:
            if len(self.error_samples) < _MAX_ERROR_SAMPLES:
                self.error_samples.append(msg)


def _fault_call(fn, item, plan: Optional[FaultPlan], key: int, attempt: int, in_process: bool):
    """Module-level task wrapper (stays picklable for process pools)."""
    if plan is not None:
        if in_process:
            plan.apply("process", key, attempt)
        plan.apply("worker", key, attempt)
    return fn(item)


def _pool_unhealthy(pool, tier: str) -> bool:
    """Pre-dispatch watchdog: True when the borrowed pool must be abandoned.

    Duck-typed: pools without a ``health_check`` (or without a supervisor
    behind it) are simply trusted, preserving classic behavior.  A failing
    check has already marked the pool broken, so the caller degrades to the
    next tier and the items are replayed from scratch — never resumed from
    partial state.
    """
    if pool is None or getattr(pool, "kind", None) != tier:
        return False
    check = getattr(pool, "health_check", None)
    if check is None:
        return False
    return not check()


def _await_future(fut, wait, pool, use_pool):
    """Harvest one future, heartbeat-slicing the wait on supervised pools.

    Without a caller timeout a hung worker would wedge the harvest loop
    forever.  When the borrowed pool carries a supervisor, the wait is cut
    into heartbeat-sized slices; between slices the watchdog inspects the
    pool (liveness scan + sentinel probe) and converts a dead or hung pool
    into an ordinary degrade error.  A single stuck future that survives
    ``max_stall_beats`` healthy probes is treated as a hung pool too, so
    one wedged worker cannot stall the run while its siblings idle.
    """
    sup = getattr(pool, "supervisor", None) if use_pool else None
    if sup is None:
        return fut.result(timeout=wait)
    beats = 0
    remaining = wait
    while True:
        slice_ = sup.heartbeat_timeout
        if remaining is not None:
            slice_ = min(slice_, remaining)
        try:
            return fut.result(timeout=slice_)
        except FutureTimeoutError:
            if remaining is not None:
                remaining -= slice_
                if remaining <= 0:
                    raise  # the caller's own timeout: counts as item timeout
            if not pool.health_check():
                raise BrokenExecutor(
                    "supervisor: pool failed its health check while waiting"
                ) from None
            beats += 1
            if beats >= sup.max_stall_beats:
                pool.mark_broken()
                raise BrokenExecutor(
                    f"supervisor: future still pending after {beats} healthy "
                    "heartbeats; declaring the pool hung"
                ) from None


def _tier_chain(executor: str) -> List[str]:
    if executor not in DEGRADATION_ORDER:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {tuple(reversed(DEGRADATION_ORDER))}"
        )
    return list(DEGRADATION_ORDER[DEGRADATION_ORDER.index(executor) :])


class _Backoff:
    """Exponential backoff with seeded jitter; sleeps are skipped at base 0."""

    def __init__(self, base: float, cap: float, jitter: float, seed: int) -> None:
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.rng = np.random.default_rng(seed)

    def sleep(self, attempt: int) -> None:
        if self.base <= 0:
            return
        delay = min(self.cap, self.base * (2.0 ** attempt))
        delay *= 1.0 + self.jitter * float(self.rng.random())
        time.sleep(delay)


def resilient_map(
    fn: Callable[[T], object],
    items: Sequence[T],
    executor: str = "serial",
    workers: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    backoff_max: float = 1.0,
    backoff_jitter: float = 0.1,
    seed: int = 0,
    budget: Optional[RunBudget] = None,
    fault_plan: Optional[FaultPlan] = None,
    pool=None,
) -> tuple[List[Optional[object]], ExecutionReport]:
    """Apply ``fn`` to every item with the resilience policy; order preserved.

    Returns ``(results, report)`` where ``results[i]`` is ``fn(items[i])``
    or ``None`` when the item was skipped (attempts exhausted or deadline).
    Never raises for per-item failures; programming errors such as an
    unknown executor still raise.

    ``pool`` is an optional persistent :class:`~repro.parallel.pool.WorkerPool`
    (duck-typed — this module must not import the parallel package): the
    tier matching ``pool.kind`` submits to it instead of constructing a
    fresh executor.  When that tier degrades, ``pool.mark_broken()`` is
    called before moving on, which lets the pool's owner release its
    shared-memory exports (no worker can read them anymore) while the
    thread/serial fallbacks keep resolving graphs through the in-process
    registry.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    tiers = _tier_chain(executor)
    report = ExecutionReport(requested_executor=executor, final_executor=executor)
    report.items = len(items)
    results: List[Optional[object]] = [None] * len(items)
    if not items:
        return results, report

    backoff = _Backoff(backoff_base, backoff_max, backoff_jitter, seed)
    # (index, attempts_used) of items still owed a result
    pending: List[tuple[int, int]] = [(i, 0) for i in range(len(items))]
    plain = timeout is None and fault_plan is None and budget is None

    for tier_pos, tier in enumerate(tiers):
        if not pending:
            break
        report.final_executor = tier

        if plain and tier != "serial":
            # fast path: nothing to inject, time, or cancel — use the chunked
            # pool map and only fall back on executor-tier failures
            # (imported lazily: filtering <-> runtime would otherwise cycle
            # through core.config)
            from ..filtering.executor import map_subproblems

            if _pool_unhealthy(pool, tier):
                report.executor_degradations += 1
                continue  # watchdog verdict: replay everything on the next tier
            try:
                mapped = map_subproblems(
                    fn, [items[i] for i, _ in pending], tier, workers, pool=pool
                )
            except Exception as exc:
                if _is_degrade_error(exc):
                    report.executor_degradations += 1
                    report.record_error(exc)
                    if pool is not None and pool.kind == tier:
                        pool.mark_broken()
                    continue  # next tier re-runs all of pending
                # a task failed inside the batch: isolate it below with the
                # per-item path on this same tier
            else:
                for (i, _), value in zip(pending, mapped):
                    results[i] = value
                report.succeeded += len(pending)
                pending = []
                break

        if tier == "serial":
            pending = _run_serial(
                fn, items, pending, results, report, backoff,
                max_retries, budget, fault_plan,
            )
        else:
            pending, degraded = _run_pooled(
                fn, items, pending, results, report, backoff, tier, workers,
                timeout, max_retries, budget, fault_plan, pool,
            )
            if degraded and tier_pos + 1 < len(tiers):
                continue
        break

    # anything still pending after the last tier was never completed
    for _i, _ in pending:
        report.skipped += 1
    return results, report


def _run_serial(fn, items, pending, results, report, backoff, max_retries, budget, fault_plan):
    """Serial tier: in-line loop with retries; cannot preempt, so no timeout."""
    queue = list(pending)
    while queue:
        if budget is not None and budget.checkpoint("executor"):
            report.deadline_skipped += len(queue)
            return []  # remaining items stay None in the result list
        i, attempt = queue.pop(0)
        try:
            results[i] = _fault_call(fn, items[i], fault_plan, i, attempt, False)
            report.succeeded += 1
        except Exception as exc:
            report.failures += 1
            report.record_error(exc)
            if attempt < max_retries:
                report.retries += 1
                backoff.sleep(attempt)
                queue.append((i, attempt + 1))
            else:
                report.skipped += 1
    return []


def _run_pooled(
    fn, items, pending, results, report, backoff, tier, workers,
    timeout, max_retries, budget, fault_plan, pool=None,
):
    """Pooled tier: submit/collect rounds with timeouts and retry rounds.

    Returns ``(still_pending, degraded)``; ``degraded`` means the pool (or
    pickling) broke and the remaining items should move to the next tier.
    A persistent ``pool`` whose kind matches the tier is borrowed instead
    of constructing a fresh executor (and is *not* shut down here); when
    that borrowed pool breaks, ``mark_broken()`` notifies its owner.
    """
    if _pool_unhealthy(pool, tier):
        report.executor_degradations += 1
        return list(pending), True
    use_pool = pool is not None and pool.kind == tier and pool.usable()
    in_process = tier == "processes"
    queue = list(pending)
    try:
        if use_pool:
            cm = contextlib.nullcontext(pool.executor)
        else:
            pool_cls = ProcessPoolExecutor if tier == "processes" else ThreadPoolExecutor
            cm = pool_cls(max_workers=workers)
        with cm as ex:
            while queue:
                futures = []
                for i, attempt in queue:
                    futures.append(
                        (i, attempt, ex.submit(_fault_call, fn, items[i], fault_plan, i, attempt, in_process))
                    )
                retry_round: List[tuple[int, int]] = []
                for pos, (i, attempt, fut) in enumerate(futures):
                    if budget is not None and budget.checkpoint("executor"):
                        rest = futures[pos:]
                        for _j, _a, f in rest:
                            f.cancel()
                        report.deadline_skipped += len(rest) + len(retry_round)
                        return [], False
                    try:
                        wait = timeout
                        if budget is not None:
                            rem = budget.remaining()
                            if rem != float("inf"):
                                wait = rem if wait is None else min(wait, rem)
                        results[i] = _await_future(fut, wait, pool, use_pool)
                        report.succeeded += 1
                    except FutureTimeoutError:
                        fut.cancel()
                        report.timeouts += 1
                        report.failures += 1
                        if attempt < max_retries:
                            report.retries += 1
                            retry_round.append((i, attempt + 1))
                        else:
                            report.skipped += 1
                    except Exception as exc:
                        if _is_degrade_error(exc):
                            # the pool itself is broken: everything not yet
                            # harvested moves to the next tier (no attempt used)
                            report.executor_degradations += 1
                            report.record_error(exc)
                            if use_pool:
                                pool.mark_broken()
                            unfinished = [(i, attempt)] + [(j, a) for j, a, _ in futures[pos + 1 :]]
                            return unfinished + retry_round, True
                        report.failures += 1
                        report.record_error(exc)
                        if attempt < max_retries:
                            report.retries += 1
                            backoff.sleep(attempt)
                            retry_round.append((i, attempt + 1))
                        else:
                            report.skipped += 1
                queue = retry_round
        return [], False
    except _DEGRADE_ERRORS as exc:  # pool construction / shutdown failure
        report.executor_degradations += 1
        report.record_error(exc)
        if use_pool:
            pool.mark_broken()
        return queue, True
