"""Deterministic fault injection for testing the resilient runtime.

A :class:`FaultPlan` is a small frozen dataclass of primitives — picklable,
so it survives the trip into process-pool workers — whose decisions are pure
functions of ``(seed, site, key, attempt)``.  The same plan therefore
injects the same faults on every run, which makes retry, fallback, and
degradation paths testable in CI without flaky timing tricks.

Sites used by the pipeline:

- ``"flow"``    — inside a natural-cut flow solve (keyed by the problem's
  center vertex; the attempt number is the position in the solver fallback
  chain, so ``max_attempt=0`` means the primary solver fails and the
  fallback succeeds).
- ``"worker"``  — around a whole executor task (keyed by item index; the
  attempt number is the retry count, so ``max_attempt=0`` means the first
  try fails and the retry succeeds).
- ``"process"`` — simulated pool collapse: the worker calls ``os._exit``,
  which surfaces as ``BrokenProcessPool`` and exercises executor-tier
  degradation.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultPlan", "InjectedFault"]


class InjectedFault(RuntimeError):
    """An exception injected by a :class:`FaultPlan`."""


def _uniform(seed: int, site: str, key: int, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (site, key, attempt)."""
    site_id = zlib.crc32(site.encode("utf-8"))
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, site_id, key & 0xFFFFFFFF, attempt])
    return float(np.random.default_rng(ss).random())


@dataclass(frozen=True)
class FaultPlan:
    """Seeded plan of exceptions, delays, and crashes to inject.

    Attributes
    ----------
    seed : base seed; different seeds give independent fault patterns.
    failure_rate : probability that a given (site, key) raises
        :class:`InjectedFault`.
    delay_rate / delay_seconds : probability and duration of an injected
        ``time.sleep`` — long delays plus a per-subproblem timeout simulate
        hung workers.
    crash_rate : probability that a ``"process"``-site check hard-kills the
        worker process (``os._exit``), collapsing the pool.
    max_attempt : faults only fire while ``attempt <= max_attempt``; the
        default 0 makes first tries fail and retries/fallbacks succeed, so a
        plan with a high ``failure_rate`` still lets runs complete.
    sites : restrict injection to these site names ("" matches all).
    """

    seed: int = 0
    failure_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    crash_rate: float = 0.0
    max_attempt: int = 0
    sites: tuple = ()

    def __post_init__(self) -> None:
        for name in ("failure_rate", "delay_rate", "crash_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")

    def _active(self, site: str, attempt: int) -> bool:
        if attempt > self.max_attempt:
            return False
        return not self.sites or site in self.sites

    def should_fail(self, site: str, key: int, attempt: int = 0) -> bool:
        """True when this (site, key, attempt) is scheduled to raise."""
        if not self._active(site, attempt) or self.failure_rate <= 0.0:
            return False
        return _uniform(self.seed, "fail:" + site, key, attempt) < self.failure_rate

    def delay(self, site: str, key: int, attempt: int = 0) -> float:
        """Injected sleep duration in seconds (0 when none scheduled)."""
        if not self._active(site, attempt) or self.delay_rate <= 0.0:
            return 0.0
        if _uniform(self.seed, "delay:" + site, key, attempt) < self.delay_rate:
            return self.delay_seconds
        return 0.0

    def should_crash(self, site: str, key: int, attempt: int = 0) -> bool:
        """True when this check should hard-kill the worker process.

        Crashes are exclusive to the ``"process"`` site: it is the only one
        guaranteed to be visited inside a pool worker, and ``os._exit`` at
        any other site would take down the main interpreter.
        """
        if site != "process":
            return False
        if not self._active(site, attempt) or self.crash_rate <= 0.0:
            return False
        return _uniform(self.seed, "crash:" + site, key, attempt) < self.crash_rate

    def apply(self, site: str, key: int, attempt: int = 0) -> None:
        """Run all injections for one site visit (delay, crash, raise)."""
        d = self.delay(site, key, attempt)
        if d > 0:
            time.sleep(d)
        if self.should_crash(site, key, attempt):  # pragma: no cover - kills the process
            os._exit(77)
        if self.should_fail(site, key, attempt):
            raise InjectedFault(f"injected fault at {site}[{key}] attempt {attempt}")
