"""Customizable Route Planning on PUNCH partitions — the paper's use case."""

from .dijkstra import dijkstra
from .overlay import (
    CellTopology,
    Overlay,
    build_cell_topology,
    build_overlay,
    build_overlay_reference,
    customize_overlay,
    customize_overlay_reference,
)
from .multilevel import (
    MultiLevelOverlay,
    build_multilevel_overlay,
    build_multilevel_overlay_reference,
    customize_multilevel_overlay,
    ml_query,
)
from .query import crp_query

__all__ = [
    "dijkstra",
    "build_overlay",
    "build_overlay_reference",
    "build_cell_topology",
    "CellTopology",
    "customize_overlay",
    "customize_overlay_reference",
    "Overlay",
    "crp_query",
    "build_multilevel_overlay",
    "build_multilevel_overlay_reference",
    "customize_multilevel_overlay",
    "MultiLevelOverlay",
    "ml_query",
]
