"""Customizable Route Planning on PUNCH partitions — the paper's use case."""

from .dijkstra import dijkstra
from .overlay import Overlay, build_overlay, customize_overlay
from .multilevel import MultiLevelOverlay, build_multilevel_overlay, ml_query
from .query import crp_query

__all__ = ["dijkstra", "build_overlay", "customize_overlay", "Overlay", "crp_query", "build_multilevel_overlay", "MultiLevelOverlay", "ml_query"]
