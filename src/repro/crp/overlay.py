"""CRP overlay construction over a PUNCH partition.

Customizable Route Planning [Delling, Goldberg, Pajor, Werneck; SEA'11] is
the application PUNCH was designed for (the paper's introduction and the
CRP citation [7]).  Preprocessing builds an *overlay*:

- vertices: the partition's **boundary vertices** (endpoints of cut edges);
- edges: the cut edges themselves, plus one **clique edge** per pair of
  boundary vertices of the same cell, weighted by the shortest-path
  distance *inside* that cell.

Queries then search the source cell, the overlay, and the target cell —
never the interior of any other cell.  Overlay size, and hence both
customization and query cost, is governed by the number of cut edges:
exactly the objective PUNCH minimizes.

Customization is the production hot path (a new travel-time profile means
recomputing every in-cell clique), so it is split metric-independent /
metric-dependent: a :class:`CellTopology` captures each cell's local CSR
subgraph and boundary indices once per partition, and
:func:`customize_overlay` only regathers edge weights into that structure
and reruns the (cell-local, early-terminating) clique searches.  The
original scalar paths are retained as bit-identical ``*_reference`` twins
— :func:`build_overlay_reference` / :func:`customize_overlay_reference` —
per the repo's vectorization contract (docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.partition import Partition
from ..graph.csr import gather_csr_rows, repeat_rows
from ..graph.graph import Graph
from .dijkstra import dijkstra

__all__ = [
    "Overlay",
    "CellTopology",
    "build_cell_topology",
    "build_overlay",
    "build_overlay_reference",
    "customize_overlay",
    "customize_overlay_reference",
    "patch_cell_topology",
    "patch_overlay",
    "patch_overlay_weights",
]


# ---------------------------------------------------------------------------
# Metric-independent per-cell structure
# ---------------------------------------------------------------------------


@dataclass
class _CellLocal:
    """One cell's local search structure (all indices cell-local).

    ``xadj``/``nbr`` are the cell-induced subgraph in CSR form over the
    cell's members (ascending global id); ``heid`` maps each local
    half-edge back to its global undirected edge id, which is the only
    hook a metric swap needs.  ``members``/``blocal`` are kept as plain
    lists because the clique kernel consumes them item-wise.
    """

    cell: int
    members: List[int]  # global vertex ids, ascending
    blocal: List[int]  # local indices of the boundary vertices, ascending
    xadj: List[int]  # local CSR offsets (len(members) + 1)
    nbr: List[int]  # local neighbor index per half-edge
    heid: np.ndarray  # global edge id per half-edge (weight gather hook)


@dataclass
class CellTopology:
    """Metric-independent overlay skeleton of one partition.

    Everything :func:`customize_overlay` needs that does *not* depend on
    edge weights: per-cell local subgraphs, boundary vertex lists, and the
    cut-edge endpoint arrays.  Built once per partition (the boundary and
    member index arrays themselves are memoized on the
    :class:`~repro.core.partition.Partition`) and carried through every
    customized :class:`Overlay`, so repeated metric swaps re-derive
    nothing structural.
    """

    labels: np.ndarray
    cells: List[_CellLocal]  # cells with >= 1 boundary vertex, ascending id
    cut_eids: np.ndarray  # undirected cut edge ids
    cut_u: np.ndarray  # canonical endpoints of the cut edges
    cut_v: np.ndarray

    @property
    def num_boundary_cells(self) -> int:
        """Number of cells owning at least one boundary vertex."""
        return len(self.cells)


def build_cell_topology(partition: Partition) -> CellTopology:
    """Extract the metric-independent overlay skeleton of ``partition``.

    Vectorized: one batched CSR gather over all members of all boundary
    cells, split per cell afterwards — no per-vertex Python work.
    """
    g = partition.graph
    labels = partition.labels
    boff, bverts = partition.boundary_index
    moff, members_all = partition.cell_index

    # local index of every vertex within its cell's ascending member list
    local_of = np.zeros(max(g.n, 1), dtype=np.int64)
    if g.n:
        local_of[members_all] = np.arange(g.n, dtype=np.int64) - moff[labels[members_all]]

    cut = partition.cut_edges
    cells: List[_CellLocal] = []
    for c in np.flatnonzero(np.diff(boff) > 0):
        c = int(c)
        mem = members_all[moff[c] : moff[c + 1]]
        ys = gather_csr_rows(g.xadj, g.adjncy, mem).astype(np.int64)
        eids = gather_csr_rows(g.xadj, g.eid, mem).astype(np.int64)
        src = repeat_rows(g.xadj, mem)
        internal = labels[ys] == c
        # local CSR offsets: per-member internal-degree prefix sum
        deg = np.bincount(local_of[src[internal]], minlength=len(mem))
        xadj = np.zeros(len(mem) + 1, dtype=np.int64)
        np.cumsum(deg, out=xadj[1:])
        cells.append(
            _CellLocal(
                cell=c,
                members=[int(v) for v in mem],
                blocal=[int(x) for x in local_of[bverts[boff[c] : boff[c + 1]]]],
                xadj=[int(x) for x in xadj],
                nbr=[int(x) for x in local_of[ys[internal]]],
                heid=eids[internal],
            )
        )
    return CellTopology(
        labels=labels,
        cells=cells,
        cut_eids=cut,
        cut_u=g.edge_u[cut].astype(np.int64),
        cut_v=g.edge_v[cut].astype(np.int64),
    )


# ---------------------------------------------------------------------------
# The overlay
# ---------------------------------------------------------------------------


@dataclass
class Overlay:
    """The boundary-vertex overlay of a partition.

    ``adj`` maps each boundary vertex to ``[(neighbor, weight), ...]``
    combining clique edges (intra-cell shortest-path distances) and cut
    edges (inter-cell).  ``boundary_of_cell`` lists each cell's boundary
    vertices.  ``topology`` (when present) is the metric-independent
    skeleton reused by :func:`customize_overlay`; ``as_csr`` exports the
    overlay adjacency as flat arrays for the serving engine.
    """

    graph: Graph
    labels: np.ndarray
    adj: Dict[int, List[Tuple[int, float]]]
    boundary_of_cell: Dict[int, List[int]]
    clique_edges: int
    cut_edges: int
    topology: Optional[CellTopology] = None
    _csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_boundary_vertices(self) -> int:
        """Number of overlay vertices."""
        return len(self.adj)

    def cells_of(self, v: int) -> int:
        """Cell id of a vertex under the overlay's partition."""
        return int(self.labels[v])

    def as_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Overlay adjacency as ``(xadj, dst, w)`` flat arrays over all n.

        Non-boundary vertices get empty rows.  Entry order per vertex
        matches ``adj`` exactly, so array-based searches relax the same
        candidates as the dict-based scalar path.  Memoized (overlays are
        immutable once built).
        """
        if self._csr is None:
            n = self.graph.n
            counts = np.zeros(n, dtype=np.int64)
            for v, lst in self.adj.items():
                counts[v] = len(lst)
            xadj = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=xadj[1:])
            dst = np.zeros(int(xadj[-1]), dtype=np.int64)
            w = np.zeros(int(xadj[-1]), dtype=np.float64)
            for v, lst in self.adj.items():
                lo = int(xadj[v])
                for i, (u, wt) in enumerate(lst):
                    dst[lo + i] = u
                    w[lo + i] = wt
            self._csr = (xadj, dst, w)
        return self._csr


# ---------------------------------------------------------------------------
# Clique kernel (metric-dependent, cell-local)
# ---------------------------------------------------------------------------


def _cell_clique_lists(
    local: _CellLocal, half_w: List[float]
) -> List[List[Tuple[int, float]]]:
    """Per-boundary-vertex clique lists of one cell under one metric.

    Runs one early-terminating Dijkstra per boundary vertex over the
    cell-local CSR (plain Python lists: local indices are small and dense,
    so list indexing beats both dict lookups and NumPy scalar reads).
    Returns, for each boundary vertex ``s`` (in ``blocal`` order), the list
    ``[(t_global, dist), ...]`` over the other boundary vertices in
    ascending order — exactly the entries and order the scalar reference
    appends.  Distances are bit-identical to the reference's masked
    Dijkstra: both accumulate ``d(parent) + w`` along shortest paths, and
    equal floats are identical floats.
    """
    xadj, nbr, members, blocal = local.xadj, local.nbr, local.members, local.blocal
    nc = len(members)
    b = len(blocal)
    out: List[List[Tuple[int, float]]] = []
    if b < 2:
        return [[] for _ in range(b)]
    is_target = [False] * nc
    for t in blocal:
        is_target[t] = True
    inf = float("inf")
    for s in blocal:
        dist = [inf] * nc
        done = [False] * nc
        dist[s] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, s)]
        remaining = b
        while heap:
            d, v = heappop(heap)
            if done[v]:
                continue
            done[v] = True
            if is_target[v]:
                remaining -= 1
                if remaining == 0:
                    break
            for i in range(xadj[v], xadj[v + 1]):
                u = nbr[i]
                nd = d + half_w[i]
                if nd < dist[u]:
                    dist[u] = nd
                    heappush(heap, (nd, u))
        lst = [
            (members[t], dist[t]) for t in blocal if t != s and dist[t] != inf
        ]
        out.append(lst)
    return out


def _overlay_from_topology(
    topo: CellTopology,
    g: Graph,
    reuse_cliques: Optional[Dict[int, List[List[Tuple[int, float]]]]] = None,
) -> Overlay:
    """Assemble an :class:`Overlay` for graph ``g`` from a prebuilt skeleton.

    ``g`` must share the topology's structure (only weights may differ).
    Produces per-vertex adjacency lists identical to the scalar reference:
    clique entries first (ascending targets), then cut edges in cut-edge
    order.

    ``reuse_cliques`` maps a cell id to that cell's precomputed clique
    lists (``blocal`` order) — the incremental update path passes the rows
    of cells whose internal metric is untouched, so only dirty cells run
    the clique kernel.  Reused rows must equal what the kernel would
    produce; the bit-identity contract is property-tested.
    """
    adj: Dict[int, List[Tuple[int, float]]] = {}
    boundary_of_cell: Dict[int, List[int]] = {}
    clique_edges = 0
    ewgt = g.ewgt
    for local in topo.cells:
        if reuse_cliques is not None and local.cell in reuse_cliques:
            cliques = reuse_cliques[local.cell]
        else:
            half_w = ewgt[local.heid].tolist()
            cliques = _cell_clique_lists(local, half_w)
        bglobal = [local.members[t] for t in local.blocal]
        boundary_of_cell[local.cell] = bglobal
        if cliques:
            for s, lst in zip(bglobal, cliques):
                adj[s] = lst
                clique_edges += len(lst)
        else:  # b < 2: boundary vertices still own (empty) overlay rows
            for s in bglobal:
                adj[s] = []
    cut_w = ewgt[topo.cut_eids]
    for a, b, w in zip(topo.cut_u.tolist(), topo.cut_v.tolist(), cut_w.tolist()):
        adj.setdefault(a, []).append((b, w))
        adj.setdefault(b, []).append((a, w))
    return Overlay(
        graph=g,
        labels=topo.labels,
        adj=adj,
        boundary_of_cell=boundary_of_cell,
        clique_edges=clique_edges,
        cut_edges=len(topo.cut_eids),
        topology=topo,
    )


# ---------------------------------------------------------------------------
# Public construction / customization
# ---------------------------------------------------------------------------


def build_overlay(partition: Partition) -> Overlay:
    """Build the CRP overlay for a partition of its graph (vectorized).

    Bit-identical to :func:`build_overlay_reference` — same boundary
    vertices, same adjacency entries in the same per-vertex order, same
    float distances (pinned by tests) — but batches the structural work
    into CSR gathers and runs the clique searches cell-locally instead of
    masking the whole graph per cell.
    """
    topo = build_cell_topology(partition)
    return _overlay_from_topology(topo, partition.graph)


def build_overlay_reference(partition: Partition) -> Overlay:
    """Scalar reference overlay construction (the pre-vectorization path).

    Retained per the repo's contract: the vectorized :func:`build_overlay`
    must stay bit-identical to this.
    """
    g = partition.graph
    labels = partition.labels

    boundary_of_cell: Dict[int, set] = {}
    for e in partition.cut_edges:
        a, b = g.edge_endpoints(int(e))
        boundary_of_cell.setdefault(int(labels[a]), set()).add(a)
        boundary_of_cell.setdefault(int(labels[b]), set()).add(b)

    adj: Dict[int, List[Tuple[int, float]]] = {}
    clique_edges = 0
    for cell, bverts in boundary_of_cell.items():
        mask = labels == cell
        bl = sorted(bverts)
        for s in bl:
            dist, _ = dijkstra(g, s, targets=bl, vertex_mask=mask)
            lst = adj.setdefault(s, [])
            for t in bl:
                if t != s and t in dist:
                    lst.append((t, dist[t]))
                    clique_edges += 1

    for e in partition.cut_edges:
        a, b = g.edge_endpoints(int(e))
        w = float(g.ewgt[int(e)])
        adj.setdefault(a, []).append((b, w))
        adj.setdefault(b, []).append((a, w))

    return Overlay(
        graph=g,
        labels=labels,
        adj=adj,
        boundary_of_cell={c: sorted(s) for c, s in boundary_of_cell.items()},
        clique_edges=clique_edges,
        cut_edges=len(partition.cut_edges),
    )


def _reweighted_graph(g: Graph, new_weights: np.ndarray) -> Graph:
    """A structural copy of ``g`` under a new metric (arrays shared)."""
    new_weights = np.asarray(new_weights, dtype=np.float64)
    if new_weights.shape != (g.m,):
        raise ValueError("need one weight per edge of the original graph")
    if g.m and new_weights.min() <= 0:
        raise ValueError("edge weights must be positive")
    return Graph(
        g.xadj, g.adjncy, g.eid, g.edge_u, g.edge_v, g.vsize, new_weights, coords=g.coords
    )


def customize_overlay(overlay: Overlay, new_weights: np.ndarray) -> Overlay:
    """CRP's *customization* phase: swap the metric, keep the partition.

    The whole point of CRP's architecture is that the (expensive) partition
    is metric-independent: changing edge weights — new travel-time profile,
    avoid-highways, etc. — only requires recomputing the in-cell clique
    distances, not repartitioning.  Returns a fresh overlay over a graph
    with ``new_weights`` (one weight per undirected edge of the original).

    Vectorized: reuses the overlay's :class:`CellTopology` (building it on
    demand for overlays constructed elsewhere), so only the weight gather
    and the cell-local clique searches run per metric.  Bit-identical to
    :func:`customize_overlay_reference`.
    """
    g2 = _reweighted_graph(overlay.graph, new_weights)
    topo = overlay.topology
    if topo is None:
        topo = build_cell_topology(Partition(overlay.graph, overlay.labels))
    return _overlay_from_topology(topo, g2)


def customize_overlay_reference(overlay: Overlay, new_weights: np.ndarray) -> Overlay:
    """Scalar reference customization: full rebuild on a reweighted graph.

    This is the pre-vectorization path (partition re-derivation included);
    :func:`customize_overlay` must stay bit-identical to it.
    """
    g2 = _reweighted_graph(overlay.graph, new_weights)
    return build_overlay_reference(Partition(g2, overlay.labels))


# ---------------------------------------------------------------------------
# Incremental patching (dirty-region updates, docs/UPDATES.md)
# ---------------------------------------------------------------------------


def _cut_entry_counts(topo: CellTopology, n: int) -> np.ndarray:
    """Per-vertex count of cut entries appended to its overlay row.

    Each overlay row is clique entries followed by cut entries, so this is
    exactly what :func:`_clique_prefix_rows` strips off the tail.
    """
    ends = np.concatenate([topo.cut_u, topo.cut_v]) if len(topo.cut_eids) else (
        np.zeros(0, dtype=np.int64)
    )
    return np.bincount(ends, minlength=n)


def _clique_prefix_rows(
    overlay: Overlay, cut_count: np.ndarray, local: _CellLocal
) -> List[List[Tuple[int, float]]]:
    """One cell's clique lists recovered from a built overlay's rows.

    ``cut_count`` is :func:`_cut_entry_counts` of the overlay's own
    topology (computed once by the caller, shared across cells).
    """
    out: List[List[Tuple[int, float]]] = []
    for t in local.blocal:
        s = local.members[t]
        row = overlay.adj[s]
        out.append(row[: len(row) - int(cut_count[s])])
    return out


def patch_cell_topology(
    topo: CellTopology,
    partition: Partition,
    reusable: Dict[int, int],
    eid_map: np.ndarray,
) -> CellTopology:
    """Rebuild a :class:`CellTopology` touching only dirty cells.

    ``partition`` is the repaired partition of the *mutated* graph;
    ``reusable`` maps each new cell id whose structure is untouched to its
    old cell id (see :class:`repro.updates.engine.UpdateResult`);
    ``eid_map`` remaps old undirected edge ids to new ones (``-1`` =
    removed).  Reused cells copy their old local CSR with ``heid``
    remapped; every other boundary cell is gathered fresh, exactly as
    :func:`build_cell_topology` would.
    """
    g = partition.graph
    labels = partition.labels
    boff, bverts = partition.boundary_index
    moff, members_all = partition.cell_index

    local_of = np.zeros(max(g.n, 1), dtype=np.int64)
    if g.n:
        local_of[members_all] = np.arange(g.n, dtype=np.int64) - moff[labels[members_all]]

    old_cells = {lc.cell: lc for lc in topo.cells}
    cut = partition.cut_edges
    cells: List[_CellLocal] = []
    for c in np.flatnonzero(np.diff(boff) > 0):
        c = int(c)
        old_id = reusable.get(c)
        old_lc = old_cells.get(old_id) if old_id is not None else None
        if old_lc is not None:
            mem = members_all[moff[c] : moff[c + 1]]
            if not np.array_equal(np.asarray(old_lc.members, dtype=np.int64), mem):
                raise AssertionError(
                    f"cell {c} marked reusable but its members changed"
                )
            heid = eid_map[old_lc.heid]
            if heid.size and int(heid.min()) < 0:
                raise AssertionError(
                    f"cell {c} marked reusable but references a removed edge"
                )
            cells.append(
                _CellLocal(
                    cell=c,
                    members=old_lc.members,
                    blocal=old_lc.blocal,
                    xadj=old_lc.xadj,
                    nbr=old_lc.nbr,
                    heid=heid,
                )
            )
            continue
        mem = members_all[moff[c] : moff[c + 1]]
        ys = gather_csr_rows(g.xadj, g.adjncy, mem).astype(np.int64)
        eids = gather_csr_rows(g.xadj, g.eid, mem).astype(np.int64)
        src = repeat_rows(g.xadj, mem)
        internal = labels[ys] == c
        deg = np.bincount(local_of[src[internal]], minlength=len(mem))
        xadj = np.zeros(len(mem) + 1, dtype=np.int64)
        np.cumsum(deg, out=xadj[1:])
        cells.append(
            _CellLocal(
                cell=c,
                members=[int(v) for v in mem],
                blocal=[int(x) for x in local_of[bverts[boff[c] : boff[c + 1]]]],
                xadj=[int(x) for x in xadj],
                nbr=[int(x) for x in local_of[ys[internal]]],
                heid=eids[internal],
            )
        )
    return CellTopology(
        labels=labels,
        cells=cells,
        cut_eids=cut,
        cut_u=g.edge_u[cut].astype(np.int64),
        cut_v=g.edge_v[cut].astype(np.int64),
    )


def patch_overlay(
    overlay: Overlay,
    partition: Partition,
    reusable: Dict[int, int],
    eid_map: np.ndarray,
) -> Overlay:
    """Patch an overlay after a *structural* update (dirty cells only).

    ``partition`` is the repaired partition of the mutated graph.  Reused
    cells keep their clique rows verbatim (their members, internal edges,
    and internal metric are untouched by construction — the update engine
    guarantees it); dirty cells rebuild topology and rerun the clique
    kernel; cut entries are regathered for every boundary vertex.  The
    result is bit-identical to ``build_overlay(partition)``.
    """
    old_topo = overlay.topology
    if old_topo is None:
        old_topo = build_cell_topology(Partition(overlay.graph, overlay.labels))
    topo = patch_cell_topology(old_topo, partition, reusable, eid_map)
    old_cells = {lc.cell: lc for lc in old_topo.cells}
    cut_count = _cut_entry_counts(old_topo, overlay.graph.n)
    reuse: Dict[int, List[List[Tuple[int, float]]]] = {}
    for lc in topo.cells:
        old_id = reusable.get(lc.cell)
        if old_id is not None and old_id in old_cells:
            reuse[lc.cell] = _clique_prefix_rows(overlay, cut_count, old_cells[old_id])
    return _overlay_from_topology(topo, partition.graph, reuse_cliques=reuse)


def patch_overlay_weights(
    overlay: Overlay, new_weights: np.ndarray, dirty_cells: "List[int] | np.ndarray"
) -> Overlay:
    """Patch an overlay after a *weight-only* update.

    ``dirty_cells`` are the cells containing at least one reweighted
    intra-cell edge (the update engine computes them); only their clique
    searches rerun.  All cut entries are regathered from ``new_weights``
    (cheap — one fancy index).  Bit-identical to
    ``customize_overlay(overlay, new_weights)``, which is itself
    bit-identical to the scalar reference.
    """
    g2 = _reweighted_graph(overlay.graph, new_weights)
    topo = overlay.topology
    if topo is None:
        topo = build_cell_topology(Partition(overlay.graph, overlay.labels))
    dirty = {int(c) for c in dirty_cells}
    cut_count = _cut_entry_counts(topo, overlay.graph.n)
    reuse: Dict[int, List[List[Tuple[int, float]]]] = {}
    for lc in topo.cells:
        if lc.cell not in dirty:
            reuse[lc.cell] = _clique_prefix_rows(overlay, cut_count, lc)
    return _overlay_from_topology(topo, g2, reuse_cliques=reuse)
