"""CRP overlay construction over a PUNCH partition.

Customizable Route Planning [Delling, Goldberg, Pajor, Werneck; SEA'11] is
the application PUNCH was designed for (the paper's introduction and the
CRP citation [7]).  Preprocessing builds an *overlay*:

- vertices: the partition's **boundary vertices** (endpoints of cut edges);
- edges: the cut edges themselves, plus one **clique edge** per pair of
  boundary vertices of the same cell, weighted by the shortest-path
  distance *inside* that cell.

Queries then search the source cell, the overlay, and the target cell —
never the interior of any other cell.  Overlay size, and hence both
customization and query cost, is governed by the number of cut edges:
exactly the objective PUNCH minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.partition import Partition
from ..graph.graph import Graph
from .dijkstra import dijkstra

__all__ = ["Overlay", "build_overlay", "customize_overlay"]


@dataclass
class Overlay:
    """The boundary-vertex overlay of a partition.

    ``adj`` maps each boundary vertex to ``[(neighbor, weight), ...]``
    combining clique edges (intra-cell shortest-path distances) and cut
    edges (inter-cell).  ``boundary_of_cell`` lists each cell's boundary
    vertices.
    """

    graph: Graph
    labels: np.ndarray
    adj: Dict[int, List[Tuple[int, float]]]
    boundary_of_cell: Dict[int, List[int]]
    clique_edges: int
    cut_edges: int

    @property
    def num_boundary_vertices(self) -> int:
        """Number of overlay vertices."""
        return len(self.adj)

    def cells_of(self, v: int) -> int:
        """Cell id of a vertex under the overlay's partition."""
        return int(self.labels[v])


def build_overlay(partition: Partition) -> Overlay:
    """Build the CRP overlay for a partition of its graph."""
    g = partition.graph
    labels = partition.labels

    boundary_of_cell: Dict[int, set] = {}
    for e in partition.cut_edges:
        a, b = g.edge_endpoints(int(e))
        boundary_of_cell.setdefault(int(labels[a]), set()).add(a)
        boundary_of_cell.setdefault(int(labels[b]), set()).add(b)

    adj: Dict[int, List[Tuple[int, float]]] = {}
    clique_edges = 0
    for cell, bverts in boundary_of_cell.items():
        mask = labels == cell
        bl = sorted(bverts)
        for s in bl:
            dist, _ = dijkstra(g, s, targets=bl, vertex_mask=mask)
            lst = adj.setdefault(s, [])
            for t in bl:
                if t != s and t in dist:
                    lst.append((t, dist[t]))
                    clique_edges += 1

    for e in partition.cut_edges:
        a, b = g.edge_endpoints(int(e))
        w = float(g.ewgt[int(e)])
        adj.setdefault(a, []).append((b, w))
        adj.setdefault(b, []).append((a, w))

    return Overlay(
        graph=g,
        labels=labels,
        adj=adj,
        boundary_of_cell={c: sorted(s) for c, s in boundary_of_cell.items()},
        clique_edges=clique_edges,
        cut_edges=len(partition.cut_edges),
    )


def customize_overlay(overlay: Overlay, new_weights: np.ndarray) -> Overlay:
    """CRP's *customization* phase: swap the metric, keep the partition.

    The whole point of CRP's architecture is that the (expensive) partition
    is metric-independent: changing edge weights — new travel-time profile,
    avoid-highways, etc. — only requires recomputing the in-cell clique
    distances, not repartitioning.  Returns a fresh overlay over a graph
    with ``new_weights`` (one weight per undirected edge of the original).
    """
    g = overlay.graph
    new_weights = np.asarray(new_weights, dtype=np.float64)
    if new_weights.shape != (g.m,):
        raise ValueError("need one weight per edge of the original graph")
    if g.m and new_weights.min() <= 0:
        raise ValueError("edge weights must be positive")
    reweighted = Graph(
        g.xadj, g.adjncy, g.eid, g.edge_u, g.edge_v, g.vsize, new_weights, coords=g.coords
    )
    return build_overlay(Partition(reweighted, overlay.labels))
