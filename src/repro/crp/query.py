"""Two-level CRP queries on an overlay.

A query from ``s`` to ``t`` runs Dijkstra on the *merged* search graph:
the full interior of the source and target cells plus the overlay.  This
is exact — every shortest path either stays inside the two endpoint cells
or crosses boundary vertices, whose pairwise in-cell distances the overlay
encodes — and its search space is governed by the overlay size rather than
the input size.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Tuple

import numpy as np

from .overlay import Overlay

__all__ = ["crp_query"]


def crp_query(overlay: Overlay, s: int, t: int) -> Tuple[float, int]:
    """Exact shortest-path distance; returns ``(distance, settled_count)``.

    ``inf`` if ``t`` is unreachable from ``s``.  Handles the edge cases the
    serving layer depends on (pinned in ``tests/test_crp_edge_cases.py``):
    ``s == t`` answers ``0.0``, same-cell pairs are exact even when the
    shortest path detours through foreign cells, and disconnected pairs
    answer ``inf``.  Endpoints must be real vertex ids — negative ids would
    otherwise silently wrap through NumPy indexing and answer for the
    wrong vertex.
    """
    g = overlay.graph
    if not (0 <= s < g.n and 0 <= t < g.n):
        raise ValueError(f"query endpoints ({s}, {t}) out of range for n={g.n}")
    labels = overlay.labels
    cs, ct = int(labels[s]), int(labels[t])
    in_endpoint_cell = (labels == cs) | (labels == ct)

    xadj, adjncy = g.xadj, g.adjncy
    wgt = g.half_edge_weights()
    oadj = overlay.adj

    dist = {s: 0.0}
    settled = set()
    heap: list = [(0.0, s)]
    while heap:
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == t:
            return d, len(settled)

        # local edges, only while inside the source or target cell
        if in_endpoint_cell[v]:
            lo, hi = xadj[v], xadj[v + 1]
            for u, w in zip(adjncy[lo:hi], wgt[lo:hi]):
                u = int(u)
                if not in_endpoint_cell[u] and u not in oadj:
                    continue  # interior of a foreign cell: overlay handles it
                nd = d + float(w)
                if nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heappush(heap, (nd, u))
        # overlay edges from boundary vertices
        if v in oadj:
            for u, w in oadj[v]:
                nd = d + w
                if nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heappush(heap, (nd, u))
    return float("inf"), len(settled)
