"""Multi-level CRP: queries over a nested partition hierarchy.

Production CRP uses several nested partition levels (e.g. cells of 2^8
inside 2^12 inside 2^16 ...): a query climbs to the coarsest level whose
cell contains neither endpoint, so far-away regions are traversed with a
handful of giant overlay arcs while the endpoint neighborhoods are searched
at street level.

Level numbering here: level 0 is the input graph; level ``i >= 1`` is the
:class:`~repro.crp.overlay.Overlay` of ``nested.levels[i - 1]``.  When the
search scans vertex ``v`` it relaxes the arcs of the *query level*

    l(v) = max { i : the level-(i-1) cell of v contains neither s nor t }

(0 if even v's finest cell contains s or t).  Nesting makes this sound: a
graph edge entering a foreign cell at level i-1 is a cut edge of every
finer level too, so any vertex ever reached at query level i is a boundary
vertex of partition i-1 and owns overlay-i arcs.  Exactness is verified in
``tests/test_crp_multilevel.py`` against plain Dijkstra.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import List, Tuple

import numpy as np

from ..core.nested import NestedPartition
from .overlay import Overlay, build_overlay, build_overlay_reference, customize_overlay

__all__ = [
    "MultiLevelOverlay",
    "build_multilevel_overlay",
    "build_multilevel_overlay_reference",
    "customize_multilevel_overlay",
    "ml_query",
]


@dataclass
class MultiLevelOverlay:
    """Overlays for every level of a nested partition."""

    nested: NestedPartition
    overlays: List[Overlay]  # overlays[i] belongs to nested.levels[i]

    @property
    def graph(self):
        """The underlying input graph."""
        return self.nested.graph

    def total_clique_edges(self) -> int:
        """Clique edges summed over all levels (preprocessing space)."""
        return sum(o.clique_edges for o in self.overlays)


def build_multilevel_overlay(nested: NestedPartition) -> MultiLevelOverlay:
    """Build one overlay per nesting level (finest first; vectorized).

    Each level goes through the vectorized :func:`~.overlay.build_overlay`,
    so the per-level :class:`~.overlay.CellTopology` skeletons are retained
    for :func:`customize_multilevel_overlay`.
    """
    return MultiLevelOverlay(
        nested=nested, overlays=[build_overlay(p) for p in nested.levels]
    )


def build_multilevel_overlay_reference(nested: NestedPartition) -> MultiLevelOverlay:
    """Scalar reference twin of :func:`build_multilevel_overlay`."""
    return MultiLevelOverlay(
        nested=nested, overlays=[build_overlay_reference(p) for p in nested.levels]
    )


def customize_multilevel_overlay(
    mlo: MultiLevelOverlay, new_weights: np.ndarray
) -> MultiLevelOverlay:
    """Swap the metric of every level without touching any partition.

    Per-level vectorized customization: each level reuses its retained
    topology, so a metric swap costs only the clique recomputations — the
    multi-level analog of :func:`~.overlay.customize_overlay`.  All levels
    share one reweighted graph object (and hence one half-edge gather).
    """
    from .overlay import _overlay_from_topology, _reweighted_graph, build_cell_topology
    from ..core.partition import Partition

    g2 = _reweighted_graph(mlo.graph, new_weights)
    overlays = []
    for o in mlo.overlays:
        topo = o.topology
        if topo is None:
            topo = build_cell_topology(Partition(o.graph, o.labels))
        overlays.append(_overlay_from_topology(topo, g2))
    return MultiLevelOverlay(nested=mlo.nested, overlays=overlays)


def ml_query(mlo: MultiLevelOverlay, s: int, t: int) -> Tuple[float, int]:
    """Exact multi-level CRP query; returns ``(distance, settled_count)``."""
    g = mlo.graph
    if not (0 <= s < g.n and 0 <= t < g.n):
        raise ValueError(f"query endpoints ({s}, {t}) out of range for n={g.n}")
    levels = mlo.nested.levels
    L = len(levels)
    # per level: does each cell contain s or t?
    s_cell = [int(p.labels[s]) for p in levels]
    t_cell = [int(p.labels[t]) for p in levels]

    label_arrays = [p.labels for p in levels]

    def query_level(v: int) -> int:
        lvl = 0
        for i in range(L, 0, -1):  # coarsest first
            c = int(label_arrays[i - 1][v])
            if c != s_cell[i - 1] and c != t_cell[i - 1]:
                return i
        return 0

    xadj, adjncy = g.xadj, g.adjncy
    wgt = g.half_edge_weights()
    dist = {s: 0.0}
    settled = set()
    heap: list = [(0.0, s)]
    while heap:
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == t:
            return d, len(settled)
        lvl = query_level(v)
        if lvl == 0:
            lo, hi = xadj[v], xadj[v + 1]
            for u, w in zip(adjncy[lo:hi], wgt[lo:hi]):
                u = int(u)
                nd = d + float(w)
                if nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heappush(heap, (nd, u))
        else:
            for u, w in mlo.overlays[lvl - 1].adj.get(v, ()):
                nd = d + w
                if nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heappush(heap, (nd, u))
    return float("inf"), len(settled)
