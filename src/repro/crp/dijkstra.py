"""Dijkstra's algorithm on CSR graphs (the CRP substrate's baseline).

Plain single-source shortest paths with optional early termination, used
both as the query baseline and to build overlay cliques.  Operates directly
on the CSR arrays with a binary heap and lazy deletion.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..graph.graph import Graph

__all__ = ["dijkstra"]


def dijkstra(
    g: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    vertex_mask: Optional[np.ndarray] = None,
) -> Tuple[Dict[int, float], int]:
    """Shortest distances from ``source``; returns ``(dist, settled_count)``.

    Parameters
    ----------
    targets : stop once all of these are settled (None = exhaust component).
    vertex_mask : boolean mask; when given, the search is confined to
        vertices where the mask is True (used for cell-local searches).
    """
    xadj, adjncy = g.xadj, g.adjncy
    wgt = g.half_edge_weights()
    dist: Dict[int, float] = {source: 0.0}
    settled = set()
    want = set(int(t) for t in targets) if targets is not None else None
    heap: list = [(0.0, source)]
    while heap:
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if want is not None:
            want.discard(v)
            if not want:
                break
        lo, hi = xadj[v], xadj[v + 1]
        for u, w in zip(adjncy[lo:hi], wgt[lo:hi]):
            u = int(u)
            if vertex_mask is not None and not vertex_mask[u]:
                continue
            nd = d + float(w)
            if nd < dist.get(u, np.inf):
                dist[u] = nd
                heappush(heap, (nd, u))
    return dist, len(settled)
