"""Rebalancing: turn an unbalanced PUNCH partition into a k-cell one.

Paper Section 4: the unbalanced solution may have ``l > k`` cells.  Choose
``k`` *base cells* — each cell scored ``(2 + r) * s(C)`` with ``r`` uniform
in [0, 1], keep the ``k`` highest — and distribute the fragments of the
remaining cells among them:

repeat:
    U' = max_i (U - s(V_i))
    partition G[W] (the leftover fragments) with bound U'
    for each cell C of that partition, by decreasing size:
        pick a base cell V_i with s(V_i) + s(C) <= U at random with
        probability proportional to 1 / s(V_i)   (favor tighter fits)
        merge C into it, or skip C (it will be split again next round)
until everything is allocated (success) or no progress is possible (failure)

Cell connectivity may be sacrificed, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..assembly.cells import PartitionState
from ..assembly.greedy import greedy_labels_for_graph
from ..assembly.local_search import local_search
from ..core.config import AssemblyConfig
from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph

__all__ = ["RebalanceOutcome", "rebalance"]


@dataclass
class RebalanceOutcome:
    """Result of one rebalancing attempt (labels valid iff success)."""
    success: bool
    labels: Optional[np.ndarray]  # fragment -> cell in [0, k)
    cost: float = float("inf")
    rounds: int = 0


def _partition_leftovers(
    g: Graph,
    W: np.ndarray,
    U_prime: int,
    cfg: AssemblyConfig,
    phi: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Partition ``G[W]`` with bound ``U_prime``; returns lists of fragments."""
    sub, sub_to_g, _ = induced_subgraph(g, W)
    labels = greedy_labels_for_graph(sub, U_prime, rng, cfg.score_a, cfg.score_b)
    state = PartitionState(sub, labels)
    local_search(
        state,
        U_prime,
        variant=cfg.local_search,
        phi_max=phi,
        rng=rng,
        score_a=cfg.score_a,
        score_b=cfg.score_b,
    )
    cells: List[np.ndarray] = []
    for mem in state.cell_members.values():
        cells.append(sub_to_g[np.asarray(mem, dtype=np.int64)])
    return cells


def rebalance(
    g: Graph,
    labels: np.ndarray,
    k: int,
    U: int,
    cfg: AssemblyConfig,
    phi_rebalance: int,
    rng: np.random.Generator,
    max_rounds: int = 25,
) -> RebalanceOutcome:
    """Rebalance a fragment-graph partition to at most ``k`` cells.

    ``g`` is the fragment graph, ``labels`` the unbalanced cell assignment,
    ``U`` the hard cell-size bound (``U*`` of the paper).
    """
    labels = np.asarray(labels, dtype=np.int64)
    uniq, dense = np.unique(labels, return_inverse=True)
    ell = len(uniq)
    if ell <= k:
        out_cost = float(g.ewgt[dense[g.edge_u] != dense[g.edge_v]].sum())
        return RebalanceOutcome(success=True, labels=dense.astype(np.int64), cost=out_cost)

    sizes = np.bincount(dense, weights=g.vsize).astype(np.int64)
    scores = (2.0 + rng.random(ell)) * sizes
    base_ids = np.argsort(-scores, kind="stable")[:k]
    is_base = np.zeros(ell, dtype=bool)
    is_base[base_ids] = True

    # final assignment: fragment -> base index in [0, k)
    base_index = {int(c): i for i, c in enumerate(base_ids)}
    assign = np.full(g.n, -1, dtype=np.int64)
    base_size = sizes[base_ids].astype(np.int64).copy()
    for v in range(g.n):
        c = int(dense[v])
        if is_base[c]:
            assign[v] = base_index[c]
    W = np.flatnonzero(assign < 0)

    rounds = 0
    while len(W) and rounds < max_rounds:
        rounds += 1
        U_prime = int(U - base_size.min())
        if U_prime < int(g.vsize[W].max()):
            # not even the largest leftover fragment fits anywhere
            return RebalanceOutcome(success=False, labels=None, rounds=rounds)
        cells = _partition_leftovers(g, W, U_prime, cfg, phi_rebalance, rng)
        cells.sort(key=lambda c: -int(g.vsize[c].sum()))
        progressed = False
        for cell in cells:
            s_c = int(g.vsize[cell].sum())
            fits = np.flatnonzero(base_size + s_c <= U)
            if len(fits) == 0:
                continue  # C is skipped; it will be split next round
            probs = 1.0 / base_size[fits].astype(np.float64)
            probs /= probs.sum()
            i = int(rng.choice(fits, p=probs))
            assign[cell] = i
            base_size[i] += s_c
            progressed = True
        W = np.flatnonzero(assign < 0)
        if not progressed:
            return RebalanceOutcome(success=False, labels=None, rounds=rounds)

    if len(W):
        return RebalanceOutcome(success=False, labels=None, rounds=rounds)
    cost = float(g.ewgt[assign[g.edge_u] != assign[g.edge_v]].sum())
    return RebalanceOutcome(success=True, labels=assign, cost=cost, rounds=rounds)
