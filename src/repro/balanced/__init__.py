"""Balanced partitions with PUNCH (paper Section 4)."""

from .driver import balanced_cell_bound, balanced_from_fragments, run_balanced_punch
from .rebalance import RebalanceOutcome, rebalance

__all__ = ["run_balanced_punch", "balanced_from_fragments", "balanced_cell_bound", "rebalance", "RebalanceOutcome"]
