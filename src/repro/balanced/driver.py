"""Balanced PUNCH (paper Sections 4-5).

Given ``k`` and the tolerated imbalance ``epsilon``, each cell must have
size at most ``U* = floor((1 + eps) * ceil(n / k))``.  The driver follows
the paper's recipe:

1. run the filtering phase once with ``U = U*/3`` (smaller fragments make
   rebalancing feasible);
2. create ``ceil(32/k)`` (default) or ``ceil(256/k)`` (strong) unbalanced
   solutions with ``U = U*`` and ``phi = 512``;
3. rebalance each solution 50 times with ``phi = 128``;
4. return the best balanced solution found.

Resilience (``docs/RESILIENCE.md``): every (start, rebalance) step only
ever *adds* a candidate balanced solution, so the loop is anytime — once a
feasible solution exists, an expired :class:`~repro.runtime.budget.RunBudget`
stops the search and returns the best so far.  With
``config.runtime.checkpoint_path`` set, progress (loop indices, the current
unbalanced solution, the best balanced labels, and the RNG state) is
periodically serialized so a killed run can resume via
``config.runtime.resume``; a resumed run can only improve on the cost it
had at kill time.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Optional

import numpy as np

from ..assembly.cells import PartitionState
from ..assembly.greedy import greedy_labels_for_graph
from ..assembly.local_search import local_search
from ..core.config import BalancedConfig
from ..core.partition import Partition
from ..core.result import BalancedResult
from ..filtering.pipeline import run_filtering
from ..graph.graph import Graph
from ..lint.sanitizer import get_sanitizer
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from ..runtime.checkpoint import (
    CheckpointError,
    load_checkpoint_safe,
    rng_state_checksum,
    save_checkpoint,
)
from .rebalance import rebalance

__all__ = ["run_balanced_punch", "balanced_from_fragments", "balanced_cell_bound"]

CHECKPOINT_KIND = "balanced"


def balanced_cell_bound(total_size: int, k: int, epsilon: float) -> int:
    """``U* = floor((1 + eps) * ceil(n / k))``."""
    return int(math.floor((1.0 + epsilon) * math.ceil(total_size / k)))


def _supervisor_section(parallel) -> dict:
    """Supervisor telemetry of the runtime the run actually used, if any."""
    sup = getattr(parallel, "supervisor", None)
    return sup.report() if sup is not None else {}


def run_balanced_punch(
    g: Graph,
    k: int,
    epsilon: float | None = None,
    config: Optional[BalancedConfig] = None,
    rng: np.random.Generator | None = None,
    budget: RunBudget | None = None,
) -> BalancedResult:
    """Find an epsilon-balanced partition of ``g`` into at most ``k`` cells."""
    config = BalancedConfig() if config is None else config
    if epsilon is not None:
        config = replace(config, epsilon=epsilon)
    if rng is None:
        rng = np.random.default_rng(config.seed)
    if k < 1:
        raise ValueError("k must be >= 1")
    if budget is None and config.runtime.time_budget is not None:
        budget = config.runtime.make_budget()

    t_start = time.perf_counter()
    n_total = g.total_size()
    U_star = balanced_cell_bound(n_total, k, config.epsilon)
    if U_star < int(g.vsize.max(initial=1)):
        raise ValueError("U* smaller than the largest vertex size; infeasible")

    parallel = None
    supervisor = config.runtime.make_supervisor()
    if supervisor is not None:
        supervisor.startup()  # reap orphaned segments from dead runs
    if config.parallel is not None:
        from ..parallel.pool import ParallelRuntime

        parallel = ParallelRuntime(config.parallel)
        parallel.supervisor = supervisor
    try:
        U_filter = max(int(g.vsize.max(initial=1)), U_star // config.filter_divisor)
        filt = run_filtering(
            g, U_filter, config.filter, rng,
            runtime=config.runtime, budget=budget, parallel=parallel,
        )
        result = balanced_from_fragments(
            g,
            filt.fragment_graph,
            filt.map,
            k,
            U_star,
            config,
            rng,
            t_start=t_start,
            budget=budget,
            filter_report=filt.run_report(),
            parallel=parallel,
        )
        if supervisor is not None:
            result.supervisor_report = supervisor.report()
        return result
    finally:
        if parallel is not None:
            parallel.close()


def _checkpoint_state(
    frag: Graph,
    k: int,
    U_star: int,
    start: int,
    reb: int,
    start_labels,
    rng: np.random.Generator,
    best_labels,
    best_cost: float,
    attempts: int,
    failures: int,
    unbalanced_costs,
    entry_rng_crc=None,
) -> dict:
    return {
        "start": int(start),
        "rebalance": int(reb),
        "entry_rng_crc": entry_rng_crc,
        "start_labels": None if start_labels is None else np.asarray(start_labels).copy(),
        "rng_state": rng.bit_generator.state,
        "best_labels": None if best_labels is None else np.asarray(best_labels).copy(),
        "best_cost": float(best_cost),
        "attempts": int(attempts),
        "failures": int(failures),
        "unbalanced_costs": list(unbalanced_costs),
        "problem": {"n": int(frag.n), "m": int(frag.m), "k": int(k), "U_star": int(U_star)},
    }


def balanced_from_fragments(
    g: Graph,
    frag: Graph,
    frag_map: np.ndarray,
    k: int,
    U_star: int,
    config: BalancedConfig,
    rng: np.random.Generator,
    t_start: float | None = None,
    budget: RunBudget | None = None,
    filter_report: Optional[dict] = None,
    parallel=None,
) -> BalancedResult:
    """Steps 2-4 of the balanced recipe, given an existing fragment graph.

    Exposed separately so experiments can amortize one filtering run over
    several randomized assembly+rebalance runs.  See the module docstring
    for deadline and checkpoint/resume semantics.

    ``parallel`` (a :class:`~repro.parallel.pool.ParallelRuntime`) runs the
    independent unbalanced starts on the shared worker pool with seeds
    derived up front from the parent RNG; each start is then rebalanced
    sequentially with its own derived generator, so the outcome is
    executor-independent.  Parallel starts are skipped when checkpointing
    is enabled — the sequential loop owns the mid-start resume format.
    """
    t_start = time.perf_counter() if t_start is None else t_start
    runtime = config.runtime
    n_starts = max(1, math.ceil(config.numerator / k))
    asm_cfg = replace(config.assembly, phi=config.phi_unbalanced)

    if parallel is not None and runtime.checkpoint_path is None and n_starts > 1:
        return _balanced_parallel(
            g, frag, frag_map, k, U_star, config, rng, t_start, budget,
            filter_report, parallel, n_starts, asm_cfg,
        )

    best_labels = None
    best_cost = float("inf")
    attempts = 0
    failures = 0
    unbalanced_costs = []
    deadline_expired = False
    checkpoints_written = 0
    resumed_at = -1
    checkpoint_recovery: dict = {}
    # RNG stream fingerprint at loop entry: pure function of the run's seed
    # configuration, used to reject resumes under a different seed config
    entry_crc = rng_state_checksum(rng.bit_generator.state)

    start0 = 0
    reb0 = 0
    resumed_labels = None
    ckpt = runtime.checkpoint_path
    if ckpt and runtime.resume:
        state, checkpoint_recovery = load_checkpoint_safe(
            ckpt, CHECKPOINT_KIND, rng=rng, generations=runtime.checkpoint_generations
        )
        if state is not None:
            fp = state.get("problem", {})
            if (
                fp.get("n") != frag.n
                or fp.get("m") != frag.m
                or fp.get("k") != k
                or fp.get("U_star") != U_star
            ):
                raise CheckpointError(
                    "checkpoint does not match this problem "
                    f"(expected n={frag.n} m={frag.m} k={k} U*={U_star}, got {fp})"
                )
            stored_crc = state.get("entry_rng_crc")
            if stored_crc is not None and stored_crc != entry_crc:
                raise CheckpointError(
                    "checkpoint was written by a run with a different seed "
                    "configuration (RNG entry-state checksum mismatch); resuming "
                    "would silently diverge from both runs — pass the original "
                    "seed or start fresh"
                )
            start0 = state["start"]
            reb0 = state["rebalance"]
            resumed_labels = state["start_labels"]
            rng.bit_generator.state = state["rng_state"]
            best_labels = state["best_labels"]
            best_cost = state["best_cost"]
            attempts = state["attempts"]
            failures = state["failures"]
            unbalanced_costs = state["unbalanced_costs"]
            resumed_at = start0

    def save(start, reb, start_labels):
        save_checkpoint(
            ckpt,
            CHECKPOINT_KIND,
            _checkpoint_state(
                frag, k, U_star, start, reb, start_labels, rng,
                best_labels, best_cost, attempts, failures, unbalanced_costs,
                entry_rng_crc=entry_crc,
            ),
            generations=runtime.checkpoint_generations,
            fault_plan=runtime.fault_plan,
            key=start * (config.rebalance_attempts + 1) + reb,
        )

    for si in range(start0, n_starts):
        # the deadline is honored only once a feasible solution exists, so
        # an expired budget still yields a valid (if unpolished) result
        if (
            best_labels is not None
            and budget is not None
            and budget.checkpoint("balanced_start")
        ):
            deadline_expired = True
            break

        if si == start0 and resumed_labels is not None:
            # mid-start resume: the unbalanced solution was checkpointed
            state = PartitionState(frag, resumed_labels)
            ri0 = reb0
        else:
            with profile_span("balanced.unbalanced_start"):
                labels = greedy_labels_for_graph(
                    frag, U_star, rng, asm_cfg.score_a, asm_cfg.score_b
                )
                state = PartitionState(frag, labels)
                local_search(
                    state,
                    U_star,
                    variant=asm_cfg.local_search,
                    phi_max=asm_cfg.phi,
                    rng=rng,
                    score_a=asm_cfg.score_a,
                    score_b=asm_cfg.score_b,
                )
            unbalanced_costs.append(state.cost)
            ri0 = 0
            if ckpt:
                save(si, 0, state.labels)
                checkpoints_written += 1

        for ri in range(ri0, config.rebalance_attempts):
            if (
                best_labels is not None
                and budget is not None
                and budget.checkpoint("balanced_rebalance")
            ):
                deadline_expired = True
                break
            attempts += 1
            with profile_span("balanced.rebalance"):
                out = rebalance(
                    frag,
                    state.labels,
                    k,
                    U_star,
                    config.assembly,
                    config.phi_rebalance,
                    rng,
                )
            if out.success:
                if out.cost < best_cost:
                    best_cost = out.cost
                    best_labels = out.labels.copy()
            else:
                failures += 1
            if ckpt and (ri + 1) % runtime.checkpoint_every == 0:
                save(si, ri + 1, state.labels)
                checkpoints_written += 1
            if out.success and out.rounds == 0 and state.num_cells() <= k:
                break  # already balanced; rebalancing is deterministic here
        if deadline_expired:
            break
        if ckpt:
            save(si + 1, 0, None)
            checkpoints_written += 1

    if best_labels is None:
        hint = "try a larger epsilon or a smaller filter_divisor"
        if budget is not None and budget.expired():
            hint = (
                "the run budget expired before any solution could be "
                "rebalanced; increase the time budget"
            )
        raise RuntimeError(f"balanced PUNCH failed to rebalance any solution; {hint}")

    partition = Partition(g, best_labels[frag_map])
    # rebalancing may disconnect cells (paper Section 4), so only the size
    # bound and the fragment-to-input cost projection are asserted here
    get_sanitizer().check_partition(
        "balanced", g, partition.labels, U=U_star,
        expected_cost=best_cost, require_connected=False,
    )
    return BalancedResult(
        partition=partition,
        k=k,
        epsilon=config.epsilon,
        U_star=U_star,
        time_total=time.perf_counter() - t_start,
        attempts=attempts,
        failed_rebalances=failures,
        unbalanced_costs=unbalanced_costs,
        deadline_expired=deadline_expired,
        resumed_at=resumed_at,
        checkpoints_written=checkpoints_written,
        checkpoint_recovery=checkpoint_recovery,
        filter_report=dict(filter_report or {}),
        parallel_report=parallel.report() if parallel is not None else {},
        supervisor_report=_supervisor_section(parallel),
    )


def _balanced_parallel(
    g: Graph,
    frag: Graph,
    frag_map: np.ndarray,
    k: int,
    U_star: int,
    config: BalancedConfig,
    rng: np.random.Generator,
    t_start: float,
    budget: RunBudget | None,
    filter_report: Optional[dict],
    parallel,
    n_starts: int,
    asm_cfg,
) -> BalancedResult:
    """Steps 2-4 with the unbalanced starts on the worker pool.

    All start and rebalance seeds are derived from the parent RNG before
    dispatch; the starts run as one wave against the shared fragment graph
    and each surviving solution is rebalanced sequentially with its own
    generator.  Skipped starts (faults, deadline) lose only their start.
    """
    import functools

    from ..parallel.tasks import unbalanced_start_task
    from ..runtime.executor import resilient_map

    runtime = config.runtime
    start_seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=n_starts)]
    rebal_seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=n_starts)]
    handle = parallel.share(frag)
    task = functools.partial(
        unbalanced_start_task, handle=handle, U_star=U_star, cfg=asm_cfg
    )
    with profile_span("balanced.unbalanced_starts"):
        results, _report = resilient_map(
            task,
            start_seeds,
            executor=parallel.backend,
            workers=parallel.workers,
            max_retries=runtime.max_retries,
            backoff_base=runtime.backoff_base,
            backoff_max=runtime.backoff_max,
            backoff_jitter=runtime.backoff_jitter,
            seed=runtime.retry_seed,
            budget=budget,
            fault_plan=runtime.fault_plan,
            pool=parallel.pool(),
        )

    solutions = []
    for si, out in enumerate(results):
        if out is None:
            continue
        labels, cost, wstats = out
        parallel.note_batch(wstats)
        solutions.append((si, labels, float(cost)))
    if not solutions:
        # every start was skipped; run the first scheduled start inline so
        # the driver keeps its "at least one attempt" guarantee
        rng0 = np.random.default_rng(start_seeds[0])
        with profile_span("balanced.unbalanced_start"):
            labels = greedy_labels_for_graph(
                frag, U_star, rng0, asm_cfg.score_a, asm_cfg.score_b
            )
            state = PartitionState(frag, labels)
            local_search(
                state,
                U_star,
                variant=asm_cfg.local_search,
                phi_max=asm_cfg.phi,
                rng=rng0,
                score_a=asm_cfg.score_a,
                score_b=asm_cfg.score_b,
            )
        solutions = [(0, state.labels, float(state.cost))]

    best_labels = None
    best_cost = float("inf")
    attempts = 0
    failures = 0
    unbalanced_costs = []
    deadline_expired = False

    for si, labels, cost in solutions:
        if (
            best_labels is not None
            and budget is not None
            and budget.checkpoint("balanced_start")
        ):
            deadline_expired = True
            break
        unbalanced_costs.append(cost)
        state = PartitionState(frag, labels)
        rng_i = np.random.default_rng(rebal_seeds[si])
        for _ri in range(config.rebalance_attempts):
            if (
                best_labels is not None
                and budget is not None
                and budget.checkpoint("balanced_rebalance")
            ):
                deadline_expired = True
                break
            attempts += 1
            with profile_span("balanced.rebalance"):
                out = rebalance(
                    frag,
                    state.labels,
                    k,
                    U_star,
                    config.assembly,
                    config.phi_rebalance,
                    rng_i,
                )
            if out.success:
                if out.cost < best_cost:
                    best_cost = out.cost
                    best_labels = out.labels.copy()
            else:
                failures += 1
            if out.success and out.rounds == 0 and state.num_cells() <= k:
                break  # already balanced; rebalancing is deterministic here
        if deadline_expired:
            break

    if best_labels is None:
        hint = "try a larger epsilon or a smaller filter_divisor"
        if budget is not None and budget.expired():
            hint = (
                "the run budget expired before any solution could be "
                "rebalanced; increase the time budget"
            )
        raise RuntimeError(f"balanced PUNCH failed to rebalance any solution; {hint}")

    partition = Partition(g, best_labels[frag_map])
    # same invariants as the sequential loop: pooled starts must not change
    # what a valid balanced solution looks like
    get_sanitizer().check_partition(
        "balanced.parallel", g, partition.labels, U=U_star,
        expected_cost=best_cost, require_connected=False,
    )
    return BalancedResult(
        partition=partition,
        k=k,
        epsilon=config.epsilon,
        U_star=U_star,
        time_total=time.perf_counter() - t_start,
        attempts=attempts,
        failed_rebalances=failures,
        unbalanced_costs=unbalanced_costs,
        deadline_expired=deadline_expired,
        filter_report=dict(filter_report or {}),
        parallel_report=parallel.report(),
        supervisor_report=_supervisor_section(parallel),
    )
