"""Balanced PUNCH (paper Sections 4-5).

Given ``k`` and the tolerated imbalance ``epsilon``, each cell must have
size at most ``U* = floor((1 + eps) * ceil(n / k))``.  The driver follows
the paper's recipe:

1. run the filtering phase once with ``U = U*/3`` (smaller fragments make
   rebalancing feasible);
2. create ``ceil(32/k)`` (default) or ``ceil(256/k)`` (strong) unbalanced
   solutions with ``U = U*`` and ``phi = 512``;
3. rebalance each solution 50 times with ``phi = 128``;
4. return the best balanced solution found.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Optional

import numpy as np

from ..assembly.cells import PartitionState
from ..assembly.greedy import greedy_labels_for_graph
from ..assembly.local_search import local_search
from ..core.config import BalancedConfig
from ..core.partition import Partition
from ..core.result import BalancedResult
from ..filtering.pipeline import run_filtering
from ..graph.graph import Graph
from .rebalance import rebalance

__all__ = ["run_balanced_punch", "balanced_from_fragments", "balanced_cell_bound"]


def balanced_cell_bound(total_size: int, k: int, epsilon: float) -> int:
    """``U* = floor((1 + eps) * ceil(n / k))``."""
    return int(math.floor((1.0 + epsilon) * math.ceil(total_size / k)))


def run_balanced_punch(
    g: Graph,
    k: int,
    epsilon: float | None = None,
    config: Optional[BalancedConfig] = None,
    rng: np.random.Generator | None = None,
) -> BalancedResult:
    """Find an epsilon-balanced partition of ``g`` into at most ``k`` cells."""
    config = BalancedConfig() if config is None else config
    if epsilon is not None:
        config = replace(config, epsilon=epsilon)
    if rng is None:
        rng = np.random.default_rng(config.seed)
    if k < 1:
        raise ValueError("k must be >= 1")

    t_start = time.perf_counter()
    n_total = g.total_size()
    U_star = balanced_cell_bound(n_total, k, config.epsilon)
    if U_star < int(g.vsize.max(initial=1)):
        raise ValueError("U* smaller than the largest vertex size; infeasible")

    U_filter = max(int(g.vsize.max(initial=1)), U_star // config.filter_divisor)
    filt = run_filtering(g, U_filter, config.filter, rng)
    return balanced_from_fragments(
        g, filt.fragment_graph, filt.map, k, U_star, config, rng, t_start=t_start
    )


def balanced_from_fragments(
    g: Graph,
    frag: Graph,
    frag_map: np.ndarray,
    k: int,
    U_star: int,
    config: BalancedConfig,
    rng: np.random.Generator,
    t_start: float | None = None,
) -> BalancedResult:
    """Steps 2-4 of the balanced recipe, given an existing fragment graph.

    Exposed separately so experiments can amortize one filtering run over
    several randomized assembly+rebalance runs.
    """
    t_start = time.perf_counter() if t_start is None else t_start
    n_starts = max(1, math.ceil(config.numerator / k))
    asm_cfg = replace(config.assembly, phi=config.phi_unbalanced)

    best_labels = None
    best_cost = float("inf")
    attempts = 0
    failures = 0
    unbalanced_costs = []
    for _ in range(n_starts):
        labels = greedy_labels_for_graph(frag, U_star, rng, asm_cfg.score_a, asm_cfg.score_b)
        state = PartitionState(frag, labels)
        local_search(
            state,
            U_star,
            variant=asm_cfg.local_search,
            phi_max=asm_cfg.phi,
            rng=rng,
            score_a=asm_cfg.score_a,
            score_b=asm_cfg.score_b,
        )
        unbalanced_costs.append(state.cost)
        for _ in range(config.rebalance_attempts):
            attempts += 1
            out = rebalance(
                frag,
                state.labels,
                k,
                U_star,
                config.assembly,
                config.phi_rebalance,
                rng,
            )
            if not out.success:
                failures += 1
                continue
            if out.cost < best_cost:
                best_cost = out.cost
                best_labels = out.labels.copy()
            if out.rounds == 0 and state.num_cells() <= k:
                break  # already balanced; rebalancing is deterministic here

    if best_labels is None:
        raise RuntimeError(
            "balanced PUNCH failed to rebalance any solution; try a larger "
            "epsilon or a smaller filter_divisor"
        )

    partition = Partition(g, best_labels[frag_map])
    return BalancedResult(
        partition=partition,
        k=k,
        epsilon=config.epsilon,
        U_star=U_star,
        time_total=time.perf_counter() - t_start,
        attempts=attempts,
        failed_rebalances=failures,
        unbalanced_costs=unbalanced_costs,
    )
