"""Lightweight phase timing, per the hpc-parallel guide's measure-first rule."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    >>> t = PhaseTimer()
    >>> with t.phase("nat"):
    ...     pass
    >>> "nat" in t.totals
    True
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + time.perf_counter() - t0

    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.totals.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.2f}s" for k, v in self.totals.items())
        return f"PhaseTimer({parts})"
