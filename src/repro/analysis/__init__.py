"""Measurement harness: statistics, timing, tables, experiment drivers."""

from .instance_report import InstanceProfile, instances_report, profile_instance
from .stats import Aggregate, PartitionStats, aggregate, partition_stats
from .tables import fmt, render_table
from .timing import PhaseTimer

__all__ = [
    "PartitionStats",
    "partition_stats",
    "Aggregate",
    "aggregate",
    "render_table",
    "fmt",
    "PhaseTimer",
    "InstanceProfile",
    "profile_instance",
    "instances_report",
]
