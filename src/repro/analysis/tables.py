"""Fixed-width text tables in the visual style of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "fmt"]


def fmt(x) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(x, float):
        if x != x:  # NaN
            return "-"
        if abs(x) >= 1000 or x == int(x):
            return f"{x:.0f}"
        return f"{x:.1f}"
    return str(x)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    srows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
