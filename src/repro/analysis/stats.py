"""Partition statistics helpers used by experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.partition import Partition

__all__ = ["PartitionStats", "partition_stats", "aggregate"]


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of one partition."""
    num_cells: int
    cost: float
    max_cell_size: int
    min_cell_size: int
    mean_cell_size: float
    connected: bool

    @staticmethod
    def of(p: Partition) -> "PartitionStats":
        """Measure a :class:`~repro.core.Partition`."""
        sizes = p.cell_sizes
        return PartitionStats(
            num_cells=p.num_cells,
            cost=p.cost,
            max_cell_size=int(sizes.max()) if len(sizes) else 0,
            min_cell_size=int(sizes.min()) if len(sizes) else 0,
            mean_cell_size=float(sizes.mean()) if len(sizes) else 0.0,
            connected=p.all_cells_connected(),
        )


def partition_stats(p: Partition) -> PartitionStats:
    """Shorthand for :meth:`PartitionStats.of`."""
    return PartitionStats.of(p)


@dataclass(frozen=True)
class Aggregate:
    """best / avg / worst / median over a sequence of measurements."""

    best: float
    avg: float
    worst: float
    median: float
    count: int


def aggregate(values: Sequence[float]) -> Aggregate:
    """best / avg / worst / median over the values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return Aggregate(float("nan"), float("nan"), float("nan"), float("nan"), 0)
    return Aggregate(
        best=float(arr.min()),
        avg=float(arr.mean()),
        worst=float(arr.max()),
        median=float(np.median(arr)),
        count=len(arr),
    )
