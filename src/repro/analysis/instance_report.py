"""Characterize instances: does a graph look like a road network?

The substitution argument in DESIGN.md rests on the synthetic instances
having road-network structure: average degree < 3.5, abundant small cuts
(bridges, degree-2 chains, 2-cut classes), locally dense / globally sparse.
This report quantifies those features for any graph, so the claim is
checkable rather than asserted — and so users can compare their own
real-world inputs against the synthetic ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.biconnected import biconnected_components
from ..graph.components import connected_components
from ..graph.graph import Graph
from ..graph.twocuts import bridges, two_cut_classes
from .tables import render_table

__all__ = ["InstanceProfile", "profile_instance", "instances_report"]


@dataclass
class InstanceProfile:
    """Structural indicators of one instance (see module docstring)."""
    name: str
    n: int
    m: int
    avg_degree: float
    components: int
    degree2_fraction: float  # chain vertices: tiny-cut pass 2 fodder
    bridge_fraction: float  # bridges / m: pass 1 fodder
    two_cut_classes: int  # pass 3 fodder
    articulation_fraction: float

    def row(self):
        """The profile as a table row for :func:`instances_report`."""
        return (
            self.name,
            self.n,
            self.m,
            round(self.avg_degree, 2),
            self.components,
            f"{100 * self.degree2_fraction:.0f}%",
            f"{100 * self.bridge_fraction:.1f}%",
            self.two_cut_classes,
            f"{100 * self.articulation_fraction:.0f}%",
        )


def profile_instance(name: str, g: Graph) -> InstanceProfile:
    """Compute the road-network structure indicators of ``g``."""
    ncomp, _ = connected_components(g)
    deg = g.degrees
    _, _, art = biconnected_components(g)
    return InstanceProfile(
        name=name,
        n=g.n,
        m=g.m,
        avg_degree=float(2 * g.m / max(g.n, 1)),
        components=ncomp,
        degree2_fraction=float((deg == 2).mean()) if g.n else 0.0,
        bridge_fraction=float(len(bridges(g)) / max(g.m, 1)),
        two_cut_classes=len(two_cut_classes(g)),
        articulation_fraction=float(art.mean()) if g.n else 0.0,
    )


def instances_report(names=None) -> str:
    """Text table profiling the named synthetic instances."""
    from ..synthetic.instances import instance, instance_names

    names = instance_names() if names is None else list(names)
    rows = [profile_instance(name, instance(name)).row() for name in names]
    return render_table(
        ["instance", "|V|", "|E|", "deg", "cc", "deg-2", "bridges", "2-cut cls", "artic."],
        rows,
        title="Synthetic instance profiles (road-network structure indicators)",
    )
