"""Experiment drivers that regenerate every table and figure of the paper.

Each function reproduces one exhibit at the scaled-down operating point
documented in DESIGN.md (synthetic ``*_like`` instances, fewer repetitions,
reduced ``phi`` budgets — pure-Python constants differ from the paper's C++,
the *shape* is what we check).  The benchmark files under ``benchmarks/``
are thin wrappers around these drivers, so the same code also backs
EXPERIMENTS.md.

Scaled defaults vs the paper:

===================  =======================  ==========================
quantity             paper                    here (default)
===================  =======================  ==========================
instances            18M-50M vertices         1.4k-20k vertex analogs
Table 1 U sweep      2^10 .. 2^22             2^6 .. 2^12
runs per config      50 (T1) / 9 (T2-4)       3
phi (unbalanced)     512                      64
phi (rebalance)      128                      32
strong starts        ceil(256/k)              ceil(32/k)
default starts       ceil(32/k)               ceil(8/k)
rebalances/solution  50                       8
===================  =======================  ==========================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..balanced.driver import balanced_cell_bound, balanced_from_fragments
from ..core.config import AssemblyConfig, BalancedConfig, FilterConfig, PunchConfig
from ..core.punch import run_punch
from ..filtering.pipeline import run_filtering
from ..synthetic.instances import STREET_NAMES, TABLE1_NAMES, instance
from .stats import aggregate
from .tables import render_table

__all__ = [
    "table1_unbalanced",
    "render_table1",
    "balanced_tables",
    "render_table2",
    "render_table3",
    "render_table4",
    "fig1_natural_cut_anatomy",
    "fig2_filtering_reduction",
    "fig3_local_search_variants",
    "ablation_filter_params",
    "ablation_assembly",
    "baseline_comparison",
    "DEFAULT_T1_U",
    "DEFAULT_KS",
    "SCALED_ASSEMBLY",
    "SCALED_BALANCED",
    "SCALED_BALANCED_STRONG",
]

DEFAULT_T1_U = (64, 256, 1024, 4096)
DEFAULT_KS = (2, 4, 8, 16, 32, 64)

#: pure-Python-scaled phi budgets (see module docstring)
SCALED_ASSEMBLY = AssemblyConfig(phi=16)
SCALED_BALANCED = BalancedConfig(
    starts_numerator=8,
    rebalance_attempts=8,
    phi_unbalanced=64,
    phi_rebalance=32,
)
SCALED_BALANCED_STRONG = replace(SCALED_BALANCED, starts_numerator=32)


# ----------------------------------------------------------------------
# Table 1: unbalanced PUNCH, varying U
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One row of the Table 1 reproduction (one graph, one U)."""
    graph: str
    U: int
    lb: int
    cells_avg: float
    v_prime: float
    best: float
    avg: float
    worst: float
    t_tiny: float
    t_natural: float
    t_assembly: float
    t_total: float


def table1_unbalanced(
    names: Sequence[str] = TABLE1_NAMES,
    U_values: Sequence[int] = DEFAULT_T1_U,
    runs: int = 3,
    seed: int = 0,
    config: Optional[PunchConfig] = None,
) -> List[Table1Row]:
    """Reproduce Table 1: performance of PUNCH for varying cell sizes."""
    config = PunchConfig(assembly=SCALED_ASSEMBLY) if config is None else config
    rows: List[Table1Row] = []
    for name in names:
        g = instance(name)
        for U in U_values:
            costs, cells, vprime = [], [], []
            t_t = t_n = t_a = 0.0
            for r in range(runs):
                rng = np.random.default_rng(seed * 1_000_003 + hash((name, U, r)) % 2**31)
                res = run_punch(g, U, config, rng=rng)
                costs.append(res.cost)
                cells.append(res.num_cells)
                vprime.append(res.num_fragments)
                t_t += res.time_tiny
                t_n += res.time_natural
                t_a += res.time_assembly
            agg = aggregate(costs)
            rows.append(
                Table1Row(
                    graph=name,
                    U=U,
                    lb=-(-g.total_size() // U),
                    cells_avg=float(np.mean(cells)),
                    v_prime=float(np.mean(vprime)),
                    best=agg.best,
                    avg=agg.avg,
                    worst=agg.worst,
                    t_tiny=t_t / runs,
                    t_natural=t_n / runs,
                    t_assembly=t_a / runs,
                    t_total=(t_t + t_n + t_a) / runs,
                )
            )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 rows in the paper's column layout."""
    return render_table(
        ["graph", "U", "LB", "cells", "|V'|", "best", "avg", "worst", "tny", "nat", "asm", "total"],
        [
            (
                r.graph,
                r.U,
                r.lb,
                r.cells_avg,
                r.v_prime,
                r.best,
                r.avg,
                r.worst,
                round(r.t_tiny, 1),
                round(r.t_natural, 1),
                round(r.t_assembly, 1),
                round(r.t_total, 1),
            )
            for r in rows
        ],
        title="Table 1 (scaled): unbalanced PUNCH",
    )


# ----------------------------------------------------------------------
# Tables 2-4: balanced PUNCH
# ----------------------------------------------------------------------
@dataclass
class BalancedCell:
    """Aggregated results for one (instance, k) pair under one config."""

    best: float
    median: float
    avg_time: float
    runs: int
    feasible_runs: int


@dataclass
class BalancedTables:
    """All data behind Tables 2, 3 and 4."""

    default: Dict[str, Dict[int, BalancedCell]] = field(default_factory=dict)
    strong: Dict[str, Dict[int, BalancedCell]] = field(default_factory=dict)
    instance_meta: Dict[str, tuple] = field(default_factory=dict)  # name -> (|V|, |E|)


def balanced_tables(
    names: Sequence[str] = STREET_NAMES,
    ks: Sequence[int] = DEFAULT_KS,
    runs: int = 3,
    epsilon: float = 0.03,
    seed: int = 0,
    default_cfg: Optional[BalancedConfig] = None,
    strong_cfg: Optional[BalancedConfig] = None,
    share_filtering: bool = True,
) -> BalancedTables:
    """Reproduce the data behind Tables 2 (best, strong), 3 (default), 4 (strong).

    With ``share_filtering`` (scaled protocol) the filtering phase runs once
    per (instance, k) and its fragment graph is reused across runs and both
    configurations; the per-run time then counts assembly + rebalancing plus
    the amortized filtering share, mirroring how the paper amortizes
    preprocessing in spirit while keeping pure-Python wall time sane.
    """
    default_cfg = SCALED_BALANCED if default_cfg is None else default_cfg
    strong_cfg = SCALED_BALANCED_STRONG if strong_cfg is None else strong_cfg
    out = BalancedTables()
    for name in names:
        g = instance(name)
        out.instance_meta[name] = (g.n, g.m)
        out.default[name] = {}
        out.strong[name] = {}
        for k in ks:
            U_star = balanced_cell_bound(g.total_size(), k, epsilon)
            rng = np.random.default_rng(seed * 7_777_777 + hash((name, k)) % 2**31)
            t0 = time.perf_counter()
            U_filter = max(int(g.vsize.max(initial=1)), U_star // default_cfg.filter_divisor)
            filt = run_filtering(g, U_filter, default_cfg.filter, rng)
            t_filter = time.perf_counter() - t0

            refiltered = None  # lazily built U_filter/2 fallback (paper Sec. 4)
            for cfg, bucket in ((default_cfg, out.default), (strong_cfg, out.strong)):
                costs, times, feas = [], [], 0
                for r in range(runs):
                    rrng = np.random.default_rng(
                        seed * 97 + hash((name, k, r, cfg.numerator)) % 2**31
                    )
                    t1 = time.perf_counter()
                    try:
                        res = balanced_from_fragments(
                            g, filt.fragment_graph, filt.map, k, U_star, cfg, rrng
                        )
                    except RuntimeError:
                        # the paper's remedy: "reduce the threshold during
                        # filtering even further and start all over again"
                        if refiltered is None:
                            refiltered = run_filtering(
                                g, max(1, U_filter // 2), cfg.filter, rrng
                            )
                        try:
                            res = balanced_from_fragments(
                                g,
                                refiltered.fragment_graph,
                                refiltered.map,
                                k,
                                U_star,
                                cfg,
                                rrng,
                            )
                        except RuntimeError:
                            continue  # record the run as missing
                    times.append(time.perf_counter() - t1 + t_filter / runs)
                    costs.append(res.cost)
                    if res.feasible():
                        feas += 1
                agg = aggregate(costs)
                bucket[name][k] = BalancedCell(
                    best=agg.best,
                    median=agg.median,
                    avg_time=float(np.mean(times)) if times else float("nan"),
                    runs=runs,
                    feasible_runs=feas,
                )
    return out


def render_table2(data: BalancedTables, ks: Sequence[int] = DEFAULT_KS) -> str:
    """Render Table 2: best balanced solutions of the strong config."""
    rows = []
    for name, cells in data.strong.items():
        n, m = data.instance_meta[name]
        rows.append([name, n, m] + [cells[k].best for k in ks if k in cells])
    return render_table(
        ["instance", "|V|", "|E|"] + [str(k) for k in ks],
        rows,
        title="Table 2 (scaled): best balanced solutions, strong PUNCH",
    )


def render_table3(data: BalancedTables, ks: Sequence[int] = DEFAULT_KS) -> str:
    """Render Table 3: default balanced PUNCH, medians and times."""
    return _render_median_time(data.default, data, ks, "Table 3 (scaled): default PUNCH, balanced")


def render_table4(data: BalancedTables, ks: Sequence[int] = DEFAULT_KS) -> str:
    """Render Table 4: strong balanced PUNCH, medians and times."""
    return _render_median_time(data.strong, data, ks, "Table 4 (scaled): strong PUNCH, balanced")


def _render_median_time(bucket, data: BalancedTables, ks, title: str) -> str:
    rows = []
    for name, cells in bucket.items():
        med = [cells[k].median for k in ks if k in cells]
        tim = [round(cells[k].avg_time, 1) for k in ks if k in cells]
        rows.append([name] + med + tim)
    headers = ["instance"] + [f"med k={k}" for k in ks] + [f"t k={k}" for k in ks]
    return render_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# Figure 1: anatomy of natural cuts
# ----------------------------------------------------------------------
def fig1_natural_cut_anatomy(
    name: str = "europe_like",
    U: int = 1024,
    alpha: float = 1.0,
    f: float = 10.0,
    seed: int = 0,
):
    """Reproduce the quantities Fig. 1 illustrates: per-center BFS tree,
    core, ring sizes and the resulting cut values, over one coverage sweep.
    """
    from ..filtering.cut_problem import solve_cut_problem
    from ..filtering.natural_cuts import NaturalCutStats, collect_cut_problems

    g = instance(name)
    rng = np.random.default_rng(seed)
    stats = NaturalCutStats()
    problems = collect_cut_problems(g, U, alpha, f, rng, stats)
    cut_values = [solve_cut_problem(p)[0] for p in problems]
    return {
        "instance": name,
        "U": U,
        "centers": stats.centers,
        "tree_size": aggregate(stats.tree_sizes),
        "core_size": aggregate(stats.core_sizes),
        "ring_size": aggregate(stats.ring_sizes),
        "cut_value": aggregate(cut_values),
        "exhausted": stats.exhausted_regions,
    }


# ----------------------------------------------------------------------
# Figure 2: filtering reduction
# ----------------------------------------------------------------------
def fig2_filtering_reduction(
    name: str = "europe_like",
    U_values: Sequence[int] = DEFAULT_T1_U,
    seed: int = 0,
    config: Optional[FilterConfig] = None,
):
    """Reproduce Fig. 2 quantitatively: input -> fragment graph sizes per U."""
    g = instance(name)
    config = FilterConfig() if config is None else config
    rows = []
    for U in U_values:
        rng = np.random.default_rng(seed + U)
        res = run_filtering(g, U, config, rng)
        rows.append(
            {
                "U": U,
                "n_in": g.n,
                "m_in": g.m,
                "n_tiny": res.tiny_stats.n_after_pass3 if res.tiny_stats else g.n,
                "n_frag": res.fragment_graph.n,
                "m_frag": res.fragment_graph.m,
                "reduction": res.reduction_factor,
                "max_fragment": res.fragment_stats.max_fragment_size,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3: local search variants
# ----------------------------------------------------------------------
def fig3_local_search_variants(
    name: str = "europe_like",
    U: int = 1024,
    runs: int = 3,
    seed: int = 0,
    phi: int = 16,
    variants: Sequence[str] = ("none", "L2", "L2+", "L2*"),
):
    """Compare the three local searches (and no LS) at fixed seeds."""
    g = instance(name)
    rng = np.random.default_rng(seed)
    filt = run_filtering(g, U, FilterConfig(), rng)
    out = []
    from ..assembly.driver import run_assembly

    for variant in variants:
        costs, times = [], []
        for r in range(runs):
            rrng = np.random.default_rng(seed * 31 + r)
            cfg = AssemblyConfig(local_search=variant, phi=phi)
            t0 = time.perf_counter()
            res = run_assembly(filt.fragment_graph, U, cfg, rrng)
            times.append(time.perf_counter() - t0)
            costs.append(res.cost)
        out.append(
            {
                "variant": variant,
                "cost": aggregate(costs),
                "time": float(np.mean(times)),
            }
        )
    return out


# ----------------------------------------------------------------------
# Ablations (full-paper parameter study)
# ----------------------------------------------------------------------
def ablation_filter_params(
    name: str = "belgium_like",
    U: int = 256,
    alphas: Sequence[float] = (0.5, 1.0),
    fs: Sequence[float] = (4.0, 10.0, 20.0),
    Cs: Sequence[int] = (1, 2, 3),
    seed: int = 0,
):
    """Sensitivity of filtering (|V'|) and final cost to alpha, f, C."""
    g = instance(name)
    rows = []
    base = dict(alpha=1.0, f=10.0, coverage=2)
    sweeps = (
        [("alpha", a) for a in alphas]
        + [("f", f_) for f_ in fs]
        + [("coverage", c) for c in Cs]
    )
    for param, value in sweeps:
        kv = dict(base)
        kv[param] = value
        cfg = PunchConfig(filter=FilterConfig(**kv), assembly=SCALED_ASSEMBLY)
        rng = np.random.default_rng(seed + hash((param, value)) % 2**31)
        res = run_punch(g, U, cfg, rng=rng)
        rows.append(
            {
                "param": param,
                "value": value,
                "v_prime": res.num_fragments,
                "cost": res.cost,
                "cells": res.num_cells,
                "time": res.time_total,
            }
        )
    return rows


def ablation_assembly(
    name: str = "belgium_like",
    U: int = 256,
    phis: Sequence[int] = (1, 4, 16, 64),
    seed: int = 0,
    runs: int = 2,
):
    """phi sweep, combination on/off, and score-function ablation."""
    g = instance(name)
    rng = np.random.default_rng(seed)
    filt = run_filtering(g, U, FilterConfig(), rng)
    from ..assembly.driver import run_assembly

    rows = []
    for phi in phis:
        costs, times = [], []
        for r in range(runs):
            rrng = np.random.default_rng(seed * 13 + r + phi)
            t0 = time.perf_counter()
            res = run_assembly(filt.fragment_graph, U, AssemblyConfig(phi=phi), rrng)
            times.append(time.perf_counter() - t0)
            costs.append(res.cost)
        rows.append({"setting": f"phi={phi}", "cost": aggregate(costs), "time": float(np.mean(times))})
    for combo in (False, True):
        costs, times = [], []
        for r in range(runs):
            rrng = np.random.default_rng(seed * 17 + r + int(combo))
            cfg = AssemblyConfig(phi=16, multistart=4, use_combination=combo)
            t0 = time.perf_counter()
            res = run_assembly(filt.fragment_graph, U, cfg, rrng)
            times.append(time.perf_counter() - t0)
            costs.append(res.cost)
        rows.append(
            {
                "setting": f"multistart=4, combination={'on' if combo else 'off'}",
                "cost": aggregate(costs),
                "time": float(np.mean(times)),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Baseline comparison (Section 6 context)
# ----------------------------------------------------------------------
def baseline_comparison(
    name: str = "belgium_like",
    U: int = 256,
    seed: int = 0,
):
    """PUNCH vs multilevel vs region growing on the U-bounded problem,
    plus inertial flow / FlowCutter / spectral on the matching k-cell
    problem (they bound cell counts, not sizes)."""
    from ..baselines import (
        flowcutter_partition,
        inertial_flow_partition,
        multilevel_partition_U,
        region_growing_partition,
        spectral_partition,
    )
    from ..core.partition import Partition

    g = instance(name)
    rows = []

    t0 = time.perf_counter()
    res = run_punch(g, U, PunchConfig(assembly=SCALED_ASSEMBLY, seed=seed))
    rows.append(
        {
            "method": "PUNCH",
            "cost": res.cost,
            "cells": res.num_cells,
            "max_cell": res.partition.max_cell_size(),
            "connected": res.partition.all_cells_connected(),
            "time": time.perf_counter() - t0,
        }
    )
    for label, fn in (
        ("multilevel", lambda: multilevel_partition_U(g, U, np.random.default_rng(seed))),
        ("region-growing", lambda: region_growing_partition(g, U, np.random.default_rng(seed))),
    ):
        t0 = time.perf_counter()
        p = Partition(g, fn())
        rows.append(
            {
                "method": label,
                "cost": p.cost,
                "cells": p.num_cells,
                "max_cell": p.max_cell_size(),
                "connected": p.all_cells_connected(),
                "time": time.perf_counter() - t0,
            }
        )
    # the bisection-based partitioners solve the k-cell problem; use the
    # equivalent k for a like-for-like comparison of cut quality
    k = max(2, -(-g.total_size() // U))
    for label, fn in (
        (f"inertial-flow (k={k})", lambda: inertial_flow_partition(g, k, rng=np.random.default_rng(seed))),
        (f"flowcutter (k={k})", lambda: flowcutter_partition(g, k, rng=np.random.default_rng(seed))),
        (f"spectral (k={k})", lambda: spectral_partition(g, k)),
    ):
        t0 = time.perf_counter()
        p = Partition(g, fn())
        rows.append(
            {
                "method": label,
                "cost": p.cost,
                "cells": p.num_cells,
                "max_cell": p.max_cell_size(),
                "connected": p.all_cells_connected(),
                "time": time.perf_counter() - t0,
            }
        )
    return rows
