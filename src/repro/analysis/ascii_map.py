"""ASCII rendering of partitions over embedded graphs.

With no plotting stack available offline, a terminal heatmap is the next
best thing: each character cell shows the dominant partition cell among
the graph vertices that fall into it.  Good enough to eyeball whether a
partition follows the planted geography (rivers, highways, city borders).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph

__all__ = ["ascii_partition_map"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def ascii_partition_map(
    g: Graph,
    labels: np.ndarray,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render a labeling as a character grid (requires ``g.coords``)."""
    if g.coords is None:
        raise ValueError("ascii map requires vertex coordinates")
    labels = np.asarray(labels)
    xy = g.coords
    x0, y0 = xy.min(axis=0)
    x1, y1 = xy.max(axis=0)
    spanx = max(x1 - x0, 1e-12)
    spany = max(y1 - y0, 1e-12)
    col = np.minimum(((xy[:, 0] - x0) / spanx * (width - 1)).astype(int), width - 1)
    row = np.minimum(((xy[:, 1] - y0) / spany * (height - 1)).astype(int), height - 1)

    k = int(labels.max()) + 1 if len(labels) else 0
    # dominant label per character cell
    grid = np.full((height, width), -1, dtype=np.int64)
    counts: dict = {}
    for r, c, l in zip(row, col, labels):
        key = (int(r), int(c))
        bucket = counts.setdefault(key, {})
        bucket[int(l)] = bucket.get(int(l), 0) + 1
    for (r, c), bucket in counts.items():
        grid[r, c] = max(bucket, key=bucket.get)

    lines = []
    for r in range(height):
        chars = []
        for c in range(width):
            v = grid[r, c]
            chars.append(" " if v < 0 else _GLYPHS[v % len(_GLYPHS)])
        lines.append("".join(chars))
    return "\n".join(lines)
