"""BFS region-growing baseline for the cell-size-bounded problem.

The simplest credible comparator: repeatedly seed a new cell at a random
unassigned vertex and BFS-grow it until it reaches the size bound.  No cut
awareness at all — PUNCH should beat it comfortably on road networks, which
is exactly what the baseline benchmark demonstrates.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.graph import Graph

__all__ = ["region_growing_partition"]


def region_growing_partition(
    g: Graph, U: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Partition by greedy BFS growth; returns vertex labels (cells <= U)."""
    rng = np.random.default_rng() if rng is None else rng
    labels = np.full(g.n, -1, dtype=np.int64)
    cell = 0
    for seed in rng.permutation(g.n):
        seed = int(seed)
        if labels[seed] >= 0:
            continue
        if int(g.vsize[seed]) > U:
            raise ValueError("a vertex exceeds U; no feasible cell exists")
        size = int(g.vsize[seed])
        labels[seed] = cell
        q = deque([seed])
        while q:
            v = q.popleft()
            for u in g.neighbors(v):
                u = int(u)
                if labels[u] < 0 and size + int(g.vsize[u]) <= U:
                    labels[u] = cell
                    size += int(g.vsize[u])
                    q.append(u)
        cell += 1
    return labels
