"""Inertial Flow baseline (Schild & Sommer style).

A geometry-aware bisection: project vertices onto a direction, declare the
first ``b`` fraction the source set and the last ``b`` fraction the sink
set, and compute the minimum s-t cut between them.  Recursing yields a
k-way partition.  This is one of the few open road-network partitioners
(mentioned in the reproduction notes as a niche alternative to PUNCH) and a
natural baseline here because our synthetic instances carry coordinates.
"""

from __future__ import annotations

import math

import numpy as np

from ..flow.mincut import min_st_cut
from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph

__all__ = ["inertial_bisect", "inertial_flow_partition"]

_DIRECTIONS = [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, -1.0)]


def inertial_bisect(
    g: Graph,
    balance: float = 0.25,
    rng: np.random.Generator | None = None,
    solver: str = "dinic",
) -> np.ndarray:
    """Bisect ``g``; returns a boolean side mask (best of four directions)."""
    if g.coords is None:
        raise ValueError("inertial flow requires vertex coordinates")
    rng = np.random.default_rng() if rng is None else rng
    n = g.n
    a = max(1, int(balance * n))
    best_mask = None
    best_value = math.inf
    for dx, dy in _DIRECTIONS:
        proj = g.coords[:, 0] * dx + g.coords[:, 1] * dy
        order = np.argsort(proj, kind="stable")
        src = order[:a]
        snk = order[-a:]
        # contract source set into s, sink set into t
        local = np.full(n, -1, dtype=np.int64)
        local[src] = 0
        local[snk] = 1
        rest = np.flatnonzero(local < 0)
        local[rest] = np.arange(2, 2 + len(rest))
        lu = local[g.edge_u]
        lv = local[g.edge_v]
        keep = lu != lv
        res = min_st_cut(2 + len(rest), lu[keep], lv[keep], g.ewgt[keep], 0, 1, solver=solver)
        if res.value < best_value:
            best_value = res.value
            mask = np.zeros(n, dtype=bool)
            mask[src] = True
            mask[rest] = res.source_side[local[rest]]
            best_mask = mask
    assert best_mask is not None
    return best_mask


def inertial_flow_partition(
    g: Graph,
    k: int,
    balance: float = 0.25,
    rng: np.random.Generator | None = None,
    solver: str = "dinic",
) -> np.ndarray:
    """Recursive inertial-flow partition into ``k`` cells; returns labels.

    Splits are weighted: a piece that must produce ``k_i`` of the ``k``
    final cells receives a proportional share of the vertices.
    """
    rng = np.random.default_rng() if rng is None else rng
    labels = np.zeros(g.n, dtype=np.int64)
    next_label = [1]

    def recurse(vertices: np.ndarray, kk: int, label: int) -> None:
        if kk <= 1 or len(vertices) <= 1:
            return
        sub, sub_to_g, _ = induced_subgraph(g, vertices)
        k_left = kk // 2
        # aim the cut so the s-side carries k_left / kk of the vertices
        frac = k_left / kk
        mask = _weighted_bisect(sub, frac, balance, rng, solver)
        left = sub_to_g[mask]
        right = sub_to_g[~mask]
        new_label = next_label[0]
        next_label[0] += 1
        labels[right] = new_label
        recurse(left, k_left, label)
        recurse(right, kk - k_left, new_label)

    recurse(np.arange(g.n, dtype=np.int64), k, 0)
    return labels


def _weighted_bisect(
    g: Graph, frac: float, balance: float, rng: np.random.Generator, solver: str
) -> np.ndarray:
    """Bisect with a target fraction ``frac`` on the source side."""
    if g.coords is None:
        raise ValueError("inertial flow requires vertex coordinates")
    n = g.n
    a = max(1, int(balance * n * 2 * frac))
    b = max(1, int(balance * n * 2 * (1 - frac)))
    a = min(a, n - 1)
    b = min(b, n - a)
    best_mask = None
    best_value = math.inf
    for dx, dy in _DIRECTIONS:
        proj = g.coords[:, 0] * dx + g.coords[:, 1] * dy
        order = np.argsort(proj, kind="stable")
        src = order[:a]
        snk = order[-b:]
        local = np.full(n, -1, dtype=np.int64)
        local[src] = 0
        local[snk] = 1
        rest = np.flatnonzero(local < 0)
        local[rest] = np.arange(2, 2 + len(rest))
        lu = local[g.edge_u]
        lv = local[g.edge_v]
        keep = lu != lv
        res = min_st_cut(2 + len(rest), lu[keep], lv[keep], g.ewgt[keep], 0, 1, solver=solver)
        if res.value < best_value:
            best_value = res.value
            mask = np.zeros(n, dtype=bool)
            mask[src] = True
            mask[rest] = res.source_side[local[rest]]
            best_mask = mask
    assert best_mask is not None
    return best_mask
