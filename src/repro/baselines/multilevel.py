"""A multilevel graph partitioner (MGP) baseline, METIS/SCOTCH style.

This is the comparator the paper positions PUNCH against: coarsen by
heavy-edge matching, partition the coarsest graph greedily, then uncoarsen
level by level with FM-style boundary refinement.  Two modes:

- ``multilevel_partition_U`` : cell-size bound ``U`` (PUNCH's problem);
- ``multilevel_partition_k`` : ``k`` cells with imbalance ``epsilon``
  (the balanced problem of Tables 2-4), via greedy region growing on the
  coarsest level.

Unlike PUNCH, nothing here preserves natural cuts or cell connectivity —
exactly the trade-off the paper criticizes in generic MGPs on road
networks.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..graph.contraction import contract
from ..graph.graph import Graph
from .fm import fm_refine
from .matching import heavy_edge_matching

__all__ = ["multilevel_partition_U", "multilevel_partition_k", "coarsen"]


def coarsen(
    g: Graph,
    rng: np.random.Generator,
    target_n: int,
    max_vertex_size: int | None = None,
) -> List[Tuple[Graph, np.ndarray]]:
    """Coarsening hierarchy: list of ``(coarser_graph, labels)`` per level."""
    levels: List[Tuple[Graph, np.ndarray]] = []
    cur = g
    while cur.n > target_n:
        labels = heavy_edge_matching(cur, rng, max_size=max_vertex_size)
        new_g, dense = contract(cur, labels)
        if new_g.n >= cur.n:  # no progress (nothing matchable)
            break
        levels.append((new_g, dense))
        cur = new_g
    return levels


def _grow_k_regions(g: Graph, k: int, max_size: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy BFS growth of ``k`` regions from random seeds (coarsest level)."""
    labels = np.full(g.n, -1, dtype=np.int64)
    sizes = np.zeros(k, dtype=np.int64)
    frontiers: List[List[int]] = [[] for _ in range(k)]
    seeds = rng.choice(g.n, size=min(k, g.n), replace=False)
    for i, s in enumerate(seeds):
        labels[int(s)] = i
        sizes[i] += int(g.vsize[int(s)])
        frontiers[i].append(int(s))
    # round-robin growth, smallest region first
    active = True
    while active:
        active = False
        for i in np.argsort(sizes):
            i = int(i)
            while frontiers[i]:
                v = frontiers[i][-1]
                grew = False
                for u in g.neighbors(v):
                    u = int(u)
                    if labels[u] < 0 and sizes[i] + int(g.vsize[u]) <= max_size:
                        labels[u] = i
                        sizes[i] += int(g.vsize[u])
                        frontiers[i].append(u)
                        grew = True
                        active = True
                        break
                if grew:
                    break
                frontiers[i].pop()
    # orphans (unreachable under the size cap): attach to the smallest
    # adjacent region, else the globally smallest
    for v in np.flatnonzero(labels < 0):
        v = int(v)
        neigh = [int(labels[u]) for u in g.neighbors(v) if labels[u] >= 0]
        tgt = min(neigh, key=lambda c: sizes[c]) if neigh else int(np.argmin(sizes))
        labels[v] = tgt
        sizes[tgt] += int(g.vsize[v])
    _evict_overfull(g, labels, sizes, max_size)
    return labels


def _evict_overfull(g: Graph, labels: np.ndarray, sizes: np.ndarray, max_size: int) -> None:
    """Push boundary vertices out of overfull cells until the cap holds.

    Two move kinds, tried in order for the fullest overfull cell:

    1. a boundary vertex into an adjacent cell with room (always taken);
    2. otherwise, a boundary vertex into the smallest adjacent cell,
       accepted only when it strictly decreases ``sum(sizes**2)`` — moves
       then cascade load toward cells with slack, and the integer potential
       guarantees termination.
    """
    for _ in range(8 * g.n):  # potential argument bounds this far earlier
        over = np.flatnonzero(sizes > max_size)
        if len(over) == 0:
            return
        c = int(over[np.argmax(sizes[over])])
        members = np.flatnonzero(labels == c)
        feasible = None  # (internal_weight, v, target) with room in target
        cascade = None  # (target_size, v, target) potential-decreasing
        for v in members:
            v = int(v)
            sv = int(g.vsize[v])
            for u in g.neighbors(v):
                d = int(labels[u])
                if d == c:
                    continue
                if sizes[d] + sv <= max_size:
                    w = float(sum(1 for x in g.neighbors(v) if int(labels[x]) == c))
                    if feasible is None or w < feasible[0]:
                        feasible = (w, v, d)
                elif sizes[d] + sv < sizes[c]:
                    if cascade is None or sizes[d] < cascade[0]:
                        cascade = (int(sizes[d]), v, d)
        move = feasible or cascade
        if move is None:
            # plateau: teleport a boundary vertex of c into the globally
            # smallest cell.  MGP partitioners sacrifice cell connectivity
            # anyway (the paper calls this out for METIS/SCOTCH/KaFFPaE),
            # and while total slack is positive this move is always legal.
            d = int(np.argmin(sizes))
            v = None
            for cand in members:
                cand = int(cand)
                if sizes[d] + int(g.vsize[cand]) <= max_size and any(
                    int(labels[u]) != c for u in g.neighbors(cand)
                ):
                    v = cand
                    break
            if v is None:
                return  # no slack anywhere; overshoot reported by caller
            move = (0.0, v, d)
        _, v, d = move
        sizes[c] -= int(g.vsize[v])
        sizes[d] += int(g.vsize[v])
        labels[v] = d


def multilevel_partition_k(
    g: Graph,
    k: int,
    epsilon: float = 0.03,
    rng: np.random.Generator | None = None,
    coarse_factor: int = 8,
) -> np.ndarray:
    """Balanced k-way multilevel partition; returns vertex labels."""
    rng = np.random.default_rng() if rng is None else rng
    max_size = int(math.floor((1 + epsilon) * math.ceil(g.total_size() / k)))
    levels = coarsen(
        g, rng, target_n=max(16 * k, 128), max_vertex_size=max(1, max_size // 8)
    )
    coarsest = levels[-1][0] if levels else g
    labels = _grow_k_regions(coarsest, k, max_size, rng)
    labels = fm_refine(coarsest, labels, max_size, rng)
    # uncoarsen, repairing any size overshoot and refining at every level
    for i in range(len(levels) - 1, -1, -1):
        finer = levels[i - 1][0] if i > 0 else g
        labels = labels[levels[i][1]]
        sizes = np.bincount(labels, weights=finer.vsize, minlength=k).astype(np.int64)
        _evict_overfull(finer, labels, sizes, max_size)
        labels = fm_refine(finer, labels, max_size, rng)
    return labels


def multilevel_partition_U(
    g: Graph,
    U: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Cell-size-bounded multilevel partition (PUNCH's problem setting).

    Coarsens with vertex sizes capped at ``U`` so the coarsest graph is a
    feasible solution by itself, then refines with FM under the ``U`` bound
    while uncoarsening.
    """
    rng = np.random.default_rng() if rng is None else rng
    levels = coarsen(g, rng, target_n=1, max_vertex_size=U)
    coarsest = levels[-1][0] if levels else g
    labels = np.arange(coarsest.n, dtype=np.int64)  # each coarse vertex a cell
    for i in range(len(levels) - 1, -1, -1):
        finer = levels[i - 1][0] if i > 0 else g
        labels = labels[levels[i][1]]
        labels = fm_refine(finer, labels, U, rng)
    return labels
