"""FlowCutter-style bisection (Hamann & Strasser, simplified).

FlowCutter is, besides Inertial Flow, the main open alternative to PUNCH
for road-network partitioning (see the reproduction notes in DESIGN.md).
Its core idea: compute an incremental s-t max flow; whenever the current
min cut is too unbalanced, *pierce* it — promote a vertex just beyond the
cut on the smaller side to a terminal — and continue augmenting.  The
algorithm emits a sequence of cuts with non-decreasing cut size and
improving balance; the caller picks the first (cheapest) cut meeting its
balance goal.

This implementation keeps the essential mechanics — multi-terminal
incremental augmentation, source/target-side reachability, piercing with
the *avoid-augmenting-paths* heuristic — on top of the repo's
:class:`~repro.flow.network.FlowNetwork`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from ..flow.network import FlowNetwork
from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph

__all__ = ["flowcutter_bisect", "flowcutter_partition"]


def _reach_forward(net, flow, sources, n):
    """Vertices reachable from the source set in the residual network."""
    seen = np.zeros(n, dtype=bool)
    q = deque()
    for s in sources:
        if not seen[s]:
            seen[s] = True
            q.append(s)
    while q:
        u = q.popleft()
        for a in net.arcs_of(u):
            a = int(a)
            if net.arc_cap[a] - flow[a] > 1e-12:
                w = int(net.arc_to[a])
                if not seen[w]:
                    seen[w] = True
                    q.append(w)
    return seen


def _reach_backward(net, flow, targets, n):
    """Vertices that can reach the target set in the residual network."""
    seen = np.zeros(n, dtype=bool)
    q = deque()
    for t in targets:
        if not seen[t]:
            seen[t] = True
            q.append(t)
    while q:
        u = q.popleft()
        for a in net.arcs_of(u):
            a = int(a)
            # arc (head -> u) has residual iff rev(a) does
            if net.arc_cap[a ^ 1] - flow[a ^ 1] > 1e-12:
                w = int(net.arc_to[a])
                if not seen[w]:
                    seen[w] = True
                    q.append(w)
    return seen


def _augment(net, flow, is_source, is_target, n) -> float:
    """One BFS augmenting path from the source set to the target set."""
    pred = np.full(n, -1, dtype=np.int64)
    start = np.flatnonzero(is_source)
    q = deque(int(x) for x in start)
    pred[start] = -2
    hit = -1
    while q and hit < 0:
        u = q.popleft()
        for a in net.arcs_of(u):
            a = int(a)
            if net.arc_cap[a] - flow[a] > 1e-12:
                w = int(net.arc_to[a])
                if pred[w] == -1:
                    pred[w] = a
                    if is_target[w]:
                        hit = w
                        break
                    q.append(w)
    if hit < 0:
        return 0.0
    # bottleneck
    bottleneck = np.inf
    v = hit
    while pred[v] != -2:
        a = int(pred[v])
        bottleneck = min(bottleneck, net.arc_cap[a] - flow[a])
        v = int(net.arc_to[a ^ 1])
    v = hit
    while pred[v] != -2:
        a = int(pred[v])
        flow[a] += bottleneck
        flow[a ^ 1] -= bottleneck
        v = int(net.arc_to[a ^ 1])
    return float(bottleneck)


def flowcutter_bisect(
    g: Graph,
    s: Optional[int] = None,
    t: Optional[int] = None,
    balance_goal: float = 0.33,
    rng: np.random.Generator | None = None,
    max_iterations: Optional[int] = None,
) -> Tuple[np.ndarray, float]:
    """Bisect ``g``; returns ``(side_mask, cut_weight)``.

    Emits internally a sequence of increasingly balanced cuts and returns
    the first whose smaller side carries at least ``balance_goal`` of the
    total vertex size (or the most balanced cut found if the goal proves
    unreachable within the iteration budget).
    """
    rng = np.random.default_rng() if rng is None else rng
    n = g.n
    if n < 2:
        return np.zeros(n, dtype=bool), 0.0
    if s is None or t is None:
        # distant random pair: use coordinates when present, else BFS depth
        if g.coords is not None:
            proj = g.coords @ rng.standard_normal(2)
            s = int(np.argmin(proj))
            t = int(np.argmax(proj))
        else:
            s = int(rng.integers(n))
            from ..graph.traversal import bfs_order

            t = int(bfs_order(g, s)[-1])
    if s == t:
        t = (s + 1) % n

    net = FlowNetwork(n, g.edge_u, g.edge_v, g.ewgt)
    flow = np.zeros(net.n_arcs, dtype=np.float64)
    is_source = np.zeros(n, dtype=bool)
    is_target = np.zeros(n, dtype=bool)
    is_source[s] = True
    is_target[t] = True

    total = float(g.vsize.sum())
    goal = balance_goal * total
    best_mask: Optional[np.ndarray] = None
    best_cut = np.inf
    best_balance = -1.0
    budget = max_iterations if max_iterations is not None else 4 * n

    for _ in range(budget):
        while _augment(net, flow, is_source, is_target, n) > 0:
            pass
        sr = _reach_forward(net, flow, np.flatnonzero(is_source), n)
        tr = _reach_backward(net, flow, np.flatnonzero(is_target), n)
        size_s = float(g.vsize[sr].sum())
        size_t = float(g.vsize[tr].sum())

        # the two candidate cuts: around SR, or around the complement of TR
        for mask, side_size in ((sr, size_s), (~tr, total - size_t)):
            small = min(side_size, total - side_size)
            cutw = float(g.ewgt[mask[g.edge_u] != mask[g.edge_v]].sum())
            if small >= goal:
                return mask.copy(), cutw
            if small > best_balance or (small == best_balance and cutw < best_cut):
                best_balance = small
                best_cut = cutw
                best_mask = mask.copy()

        # pierce on the smaller side: promote a boundary vertex to terminal,
        # preferring one that does not immediately re-open an augmenting
        # path (the avoid-augmenting heuristic: not reachable by the other
        # side's residual search)
        if size_s <= size_t:
            side, grow, other = sr, is_source, tr
        else:
            side, grow, other = tr, is_target, sr
        candidates = []
        fallback = []
        for e in np.flatnonzero(side[g.edge_u] != side[g.edge_v]):
            a, b = g.edge_endpoints(int(e))
            outside = b if side[a] else a
            if grow[outside]:
                continue
            (fallback if other[outside] else candidates).append(outside)
        pool = candidates or fallback
        if not pool:
            break  # sides meet: no more cuts to discover
        grow[int(rng.choice(pool))] = True

    if best_mask is None:  # pathological; split arbitrarily
        best_mask = np.zeros(n, dtype=bool)
        best_mask[: n // 2] = True
        best_cut = float(g.ewgt[best_mask[g.edge_u] != best_mask[g.edge_v]].sum())
    return best_mask, best_cut


def flowcutter_partition(
    g: Graph,
    k: int,
    balance_goal: float = 0.33,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Recursive FlowCutter bisection into ``k`` cells; returns labels."""
    rng = np.random.default_rng() if rng is None else rng
    labels = np.zeros(g.n, dtype=np.int64)
    next_label = [1]

    def recurse(vertices: np.ndarray, kk: int) -> None:
        if kk <= 1 or len(vertices) <= 1:
            return
        sub, sub_to_g, _ = induced_subgraph(g, vertices)
        mask, _ = flowcutter_bisect(sub, balance_goal=balance_goal, rng=rng)
        if not mask.any() or mask.all():
            return
        left = sub_to_g[mask]
        right = sub_to_g[~mask]
        new_label = next_label[0]
        next_label[0] += 1
        labels[right] = new_label
        recurse(left, kk // 2)
        recurse(right, kk - kk // 2)

    recurse(np.arange(g.n, dtype=np.int64), k)
    return labels
