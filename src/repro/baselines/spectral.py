"""Spectral bisection baseline (Fiedler vector).

The classic eigenvector-based partitioner: split at the median of the
second-smallest eigenvector of the graph Laplacian, recurse for k-way.
Uses ``scipy.sparse.linalg.eigsh`` on the (weighted) Laplacian.  Included
as the textbook comparator: it optimizes a relaxation of the cut and knows
nothing about natural cuts, so PUNCH should beat it on road networks.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph

__all__ = ["fiedler_vector", "spectral_bisect", "spectral_partition"]


def fiedler_vector(g: Graph) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh

    if g.n < 2:
        return np.zeros(g.n)
    rows = np.concatenate([g.edge_u, g.edge_v])
    cols = np.concatenate([g.edge_v, g.edge_u])
    data = np.concatenate([g.ewgt, g.ewgt])
    A = csr_matrix((data, (rows, cols)), shape=(g.n, g.n))
    deg = np.asarray(A.sum(axis=1)).ravel()
    from scipy.sparse import diags

    L = diags(deg) - A
    if g.n <= 3:
        vals, vecs = np.linalg.eigh(L.toarray())
        return vecs[:, 1]
    # shift-invert around 0 is fragile on disconnected graphs; plain
    # smallest-magnitude with a small regularizer is robust enough here
    vals, vecs = eigsh(L + 1e-9 * diags(np.ones(g.n)), k=2, which="SM")
    order = np.argsort(vals)
    return vecs[:, order[1]]


def spectral_bisect(g: Graph) -> np.ndarray:
    """Boolean side mask from the Fiedler vector's median split."""
    f = fiedler_vector(g)
    med = np.median(f)
    mask = f <= med
    # median ties can make one side empty on tiny graphs; fall back to a
    # half split of the sorted order
    if mask.all() or not mask.any():
        order = np.argsort(f, kind="stable")
        mask = np.zeros(g.n, dtype=bool)
        mask[order[: g.n // 2]] = True
    return mask


def spectral_partition(g: Graph, k: int) -> np.ndarray:
    """Recursive spectral bisection into ``k`` cells; returns labels."""
    labels = np.zeros(g.n, dtype=np.int64)
    next_label = [1]

    def recurse(vertices: np.ndarray, kk: int) -> None:
        if kk <= 1 or len(vertices) <= 1:
            return
        sub, sub_to_g, _ = induced_subgraph(g, vertices)
        mask = spectral_bisect(sub)
        k_left = kk // 2
        left = sub_to_g[mask]
        right = sub_to_g[~mask]
        new_label = next_label[0]
        next_label[0] += 1
        labels[right] = new_label
        recurse(left, k_left)
        recurse(right, kk - k_left)

    recurse(np.arange(g.n, dtype=np.int64), k)
    return labels
