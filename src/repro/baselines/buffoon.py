"""Buffoon-style hybrid: PUNCH's filtering + a multilevel assembly.

The paper's conclusion notes that Buffoon [Sanders & Schulz] sometimes beats
PUNCH "by using our filtering phase and running KaFFPaE on the fragment
graph".  This module reproduces that architecture with the in-repo
multilevel partitioner standing in for KaFFPaE: filter the input with
natural cuts, hand the fragment graph to the MGP, and (for the balanced
variant) rebalance with PUNCH's own rebalancer.

It demonstrates the paper's broader point: the filtering phase is a
general-purpose reduction that any partitioner can sit on top of.
"""

from __future__ import annotations

import numpy as np

from ..balanced.driver import balanced_cell_bound
from ..balanced.rebalance import rebalance
from ..core.config import AssemblyConfig, FilterConfig
from ..filtering.pipeline import run_filtering
from ..graph.graph import Graph
from .multilevel import multilevel_partition_U, multilevel_partition_k

__all__ = ["buffoon_partition_U", "buffoon_partition_k"]


def buffoon_partition_U(
    g: Graph,
    U: int,
    rng: np.random.Generator | None = None,
    filter_config: FilterConfig | None = None,
) -> np.ndarray:
    """U-bounded hybrid: natural-cut filtering, then multilevel assembly."""
    rng = np.random.default_rng() if rng is None else rng
    filt = run_filtering(g, U, filter_config, rng)
    frag_labels = multilevel_partition_U(filt.fragment_graph, U, rng)
    return frag_labels[filt.map]


def buffoon_partition_k(
    g: Graph,
    k: int,
    epsilon: float = 0.03,
    rng: np.random.Generator | None = None,
    filter_config: FilterConfig | None = None,
    rebalance_attempts: int = 8,
) -> np.ndarray:
    """Balanced hybrid: filter at U*/3, multilevel-k the fragments, repair.

    The multilevel step treats fragments as indivisible units, so its
    balance may overshoot; PUNCH's rebalancer then repairs the solution.
    Raises ``RuntimeError`` if no attempt yields a feasible partition.
    """
    rng = np.random.default_rng() if rng is None else rng
    U_star = balanced_cell_bound(g.total_size(), k, epsilon)
    filt = run_filtering(g, max(1, U_star // 3), filter_config, rng)
    frag = filt.fragment_graph

    best_labels = None
    best_cost = float("inf")
    for _ in range(max(1, rebalance_attempts)):
        labels = multilevel_partition_k(frag, k, epsilon, rng)
        sizes = np.bincount(labels, weights=frag.vsize)
        if sizes.max() <= U_star:
            cost = float(frag.ewgt[labels[frag.edge_u] != labels[frag.edge_v]].sum())
            out_labels = labels
        else:
            out = rebalance(frag, labels, k, U_star, AssemblyConfig(phi=8), 16, rng)
            if not out.success:
                continue
            cost = out.cost
            out_labels = out.labels
        if cost < best_cost:
            best_cost = cost
            best_labels = out_labels.copy()
    if best_labels is None:
        raise RuntimeError("buffoon hybrid failed to find a feasible balanced partition")
    return best_labels[filt.map]
