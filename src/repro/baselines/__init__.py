"""Baseline partitioners PUNCH is compared against."""

from .buffoon import buffoon_partition_U, buffoon_partition_k
from .flowcutter import flowcutter_bisect, flowcutter_partition
from .fm import fm_refine
from .kl import kl_refine, kl_refine_pair
from .inertial_flow import inertial_bisect, inertial_flow_partition
from .matching import heavy_edge_matching
from .multilevel import coarsen, multilevel_partition_U, multilevel_partition_k
from .region_growing import region_growing_partition
from .spectral import fiedler_vector, spectral_bisect, spectral_partition

__all__ = [
    "multilevel_partition_U",
    "multilevel_partition_k",
    "coarsen",
    "heavy_edge_matching",
    "fm_refine",
    "inertial_flow_partition",
    "inertial_bisect",
    "region_growing_partition",
    "buffoon_partition_U",
    "buffoon_partition_k",
    "flowcutter_bisect",
    "flowcutter_partition",
    "kl_refine",
    "kl_refine_pair",
    "spectral_bisect",
    "spectral_partition",
    "fiedler_vector",
]
