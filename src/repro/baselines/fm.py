"""Greedy boundary refinement in the Fiduccia–Mattheyses style.

The refinement step of the multilevel baseline: repeatedly move boundary
vertices to an adjacent cell when that reduces the cut, subject to cell-size
constraints.  As in FM, each vertex moves at most once per pass (preventing
thrashing), moves are picked best-gain-first from a lazy priority queue, and
passes repeat until one yields no improvement.

This is the vertex-swapping local search the paper contrasts PUNCH's
fragment-level reoptimization with (Section 1: "many of the algorithms
within the MGP framework use local search based on vertex swapping").
"""

from __future__ import annotations

import heapq
from typing import Dict

import numpy as np

from ..graph.graph import Graph

__all__ = ["fm_refine"]


def _best_move(g: Graph, labels, cell_size, v: int, max_size: int, adjw):
    """Best (gain, target_cell) for moving ``v``; internal weight vs external."""
    lo, hi = g.xadj[v], g.xadj[v + 1]
    w_to: Dict[int, float] = {}
    for u, w in zip(g.adjncy[lo:hi], adjw[lo:hi]):
        c = int(labels[u])
        w_to[c] = w_to.get(c, 0.0) + float(w)
    own = int(labels[v])
    internal = w_to.get(own, 0.0)
    best_gain, best_cell = -np.inf, -1
    for c, w in w_to.items():
        if c == own:
            continue
        if cell_size[c] + int(g.vsize[v]) > max_size:
            continue
        gain = w - internal
        if gain > best_gain:
            best_gain, best_cell = gain, c
    return best_gain, best_cell


def fm_refine(
    g: Graph,
    labels: np.ndarray,
    max_size: int,
    rng: np.random.Generator,
    max_passes: int = 8,
    min_cell_size: int = 0,
) -> np.ndarray:
    """Refine a labeling in place-ish; returns the improved labels."""
    labels = np.asarray(labels, dtype=np.int64).copy()
    k = int(labels.max()) + 1 if g.n else 0
    cell_size = np.bincount(labels, weights=g.vsize, minlength=k).astype(np.int64)
    adjw = g.half_edge_weights()

    for _ in range(max_passes):
        # boundary vertices
        boundary = np.unique(
            np.concatenate(
                [
                    g.edge_u[labels[g.edge_u] != labels[g.edge_v]],
                    g.edge_v[labels[g.edge_u] != labels[g.edge_v]],
                ]
            )
        )
        if len(boundary) == 0:
            break
        heap = []
        for v in boundary:
            v = int(v)
            gain, cell = _best_move(g, labels, cell_size, v, max_size, adjw)
            if cell >= 0 and gain > 0:
                heap.append((-gain, rng.random(), v, cell))
        heapq.heapify(heap)
        moved = np.zeros(g.n, dtype=bool)
        improved = 0.0
        while heap:
            neg_gain, _, v, cell = heapq.heappop(heap)
            if moved[v]:
                continue
            # re-validate (labels may have changed since the push)
            gain, cell = _best_move(g, labels, cell_size, v, max_size, adjw)
            if cell < 0 or gain <= 0:
                continue
            own = int(labels[v])
            if cell_size[own] - int(g.vsize[v]) < min_cell_size:
                continue
            cell_size[own] -= int(g.vsize[v])
            cell_size[cell] += int(g.vsize[v])
            labels[v] = cell
            moved[v] = True
            improved += gain
            # neighbors may now have profitable moves
            lo, hi = g.xadj[v], g.xadj[v + 1]
            for u in g.adjncy[lo:hi]:
                u = int(u)
                if not moved[u]:
                    g2, c2 = _best_move(g, labels, cell_size, u, max_size, adjw)
                    if c2 >= 0 and g2 > 0:
                        heapq.heappush(heap, (-g2, rng.random(), u, c2))
        if improved <= 1e-12:
            break
    return labels
