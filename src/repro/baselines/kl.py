"""Kernighan–Lin pairwise-swap refinement (paper citation [21]).

The oldest local search the paper contrasts with: repeatedly swap a pair of
vertices between two cells when that reduces the cut.  Classic KL runs in
passes — within a pass every vertex moves at most once, the best prefix of
tentative swaps is committed (allowing escapes from weak local optima) —
here on an arbitrary pair of adjacent cells of a k-way partition.

Exact to the classic formulation on a cell pair, with the usual
``D``-value bookkeeping: ``D(v) = external(v) - internal(v)`` w.r.t. the
two cells; ``gain(a, b) = D(a) + D(b) - 2 w(a, b)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.graph import Graph

__all__ = ["kl_refine_pair", "kl_refine"]


def _d_values(g: Graph, labels: np.ndarray, members: List[int], cell_a: int, cell_b: int):
    """D(v) = weight to the other cell - weight inside own cell."""
    adjw = g.half_edge_weights()
    D: Dict[int, float] = {}
    for v in members:
        internal = external = 0.0
        lo, hi = g.xadj[v], g.xadj[v + 1]
        own = int(labels[v])
        other = cell_b if own == cell_a else cell_a
        for u, w in zip(g.adjncy[lo:hi], adjw[lo:hi]):
            c = int(labels[u])
            if c == own:
                internal += float(w)
            elif c == other:
                external += float(w)
        D[v] = external - internal
    return D


def kl_refine_pair(
    g: Graph,
    labels: np.ndarray,
    cell_a: int,
    cell_b: int,
    max_passes: int = 4,
) -> Tuple[np.ndarray, float]:
    """Refine the boundary between two cells by KL swap passes.

    Returns ``(labels, total_gain)``.  Swaps preserve both cell sizes
    exactly (the classic KL invariant), so any size bound satisfied on
    entry still holds on exit.  Only vertices of equal size are swapped.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    total_gain = 0.0
    w_between: Dict[Tuple[int, int], float] = {}
    for e in range(g.m):
        a, b = g.edge_endpoints(e)
        w_between[(a, b)] = w_between[(b, a)] = float(g.ewgt[e])

    for _ in range(max_passes):
        mem_a = [int(v) for v in np.flatnonzero(labels == cell_a)]
        mem_b = [int(v) for v in np.flatnonzero(labels == cell_b)]
        if not mem_a or not mem_b:
            break
        D = _d_values(g, labels, mem_a + mem_b, cell_a, cell_b)
        locked = set()
        sequence: List[Tuple[int, int, float]] = []
        work_labels = labels.copy()
        for _ in range(min(len(mem_a), len(mem_b))):
            best = None
            for a in mem_a:
                if a in locked:
                    continue
                for b in mem_b:
                    if b in locked or g.vsize[a] != g.vsize[b]:
                        continue
                    gain = D[a] + D[b] - 2.0 * w_between.get((a, b), 0.0)
                    if best is None or gain > best[2]:
                        best = (a, b, gain)
            if best is None:
                break
            a, b, gain = best
            sequence.append(best)
            locked.add(a)
            locked.add(b)
            # tentative swap, then recompute D exactly for the neighborhood
            # (the O(1) delta formulas are classic but easy to get subtly
            # wrong with weighted multi-cell boundaries; neighborhoods are
            # tiny on road networks, so exact recomputation is cheap)
            work_labels[a], work_labels[b] = work_labels[b], work_labels[a]
            affected = set()
            for x in (a, b):
                lo, hi = g.xadj[x], g.xadj[x + 1]
                affected.update(int(u) for u in g.adjncy[lo:hi])
            affected -= locked
            for u in affected:
                if u in D:
                    D[u] = _d_single(g, work_labels, u, cell_a, cell_b, w_between)

        if not sequence:
            break
        # commit the best prefix
        prefix_gains = np.cumsum([s[2] for s in sequence])
        best_idx = int(np.argmax(prefix_gains))
        if prefix_gains[best_idx] <= 1e-12:
            break
        for a, b, _ in sequence[: best_idx + 1]:
            labels[a], labels[b] = labels[b], labels[a]
        total_gain += float(prefix_gains[best_idx])
    return labels, total_gain


def _d_single(g, labels, v, cell_a, cell_b, w_between):
    own = int(labels[v])
    other = cell_b if own == cell_a else cell_a
    internal = external = 0.0
    lo, hi = g.xadj[v], g.xadj[v + 1]
    for u in g.adjncy[lo:hi]:
        u = int(u)
        c = int(labels[u])
        w = w_between.get((v, u), 0.0)
        if c == own:
            internal += w
        elif c == other:
            external += w
    return external - internal


def kl_refine(
    g: Graph,
    labels: np.ndarray,
    rng: np.random.Generator | None = None,
    rounds: int = 2,
) -> np.ndarray:
    """Apply KL to every adjacent cell pair, a few rounds."""
    rng = np.random.default_rng() if rng is None else rng
    labels = np.asarray(labels, dtype=np.int64).copy()
    for _ in range(rounds):
        pairs = set()
        for e in range(g.m):
            a, b = int(labels[g.edge_u[e]]), int(labels[g.edge_v[e]])
            if a != b:
                pairs.add((min(a, b), max(a, b)))
        improved = False
        for a, b in sorted(pairs):
            labels, gain = kl_refine_pair(g, labels, a, b)
            if gain > 0:
                improved = True
        if not improved:
            break
    return labels
