"""Heavy-edge matching — the classic MGP coarsening step.

Used by the multilevel baseline (METIS/SCOTCH-style partitioners the paper
compares against conceptually): visit vertices in random order and match
each unmatched vertex to its unmatched neighbor with the heaviest connecting
edge, subject to a size cap on the merged vertex.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(
    g: Graph, rng: np.random.Generator, max_size: int | None = None
) -> np.ndarray:
    """Contraction labels from one round of heavy-edge matching.

    Each label group has one or two vertices.  ``max_size`` caps the merged
    vertex size (default: unbounded).
    """
    labels = np.arange(g.n, dtype=np.int64)
    matched = np.zeros(g.n, dtype=bool)
    order = rng.permutation(g.n)
    adjw = g.half_edge_weights()
    for v in order:
        v = int(v)
        if matched[v]:
            continue
        lo, hi = g.xadj[v], g.xadj[v + 1]
        best, best_w = -1, -1.0
        for u, w in zip(g.adjncy[lo:hi], adjw[lo:hi]):
            u = int(u)
            if matched[u] or u == v:
                continue
            if max_size is not None and int(g.vsize[v] + g.vsize[u]) > max_size:
                continue
            if w > best_w:
                best, best_w = u, float(w)
        if best >= 0:
            matched[v] = matched[best] = True
            labels[best] = v
    return labels
