"""repro — a pure-Python reproduction of PUNCH (Graph Partitioning with
Natural Cuts; Delling, Goldberg, Razenshteyn, Werneck; IPDPS 2011).

Quickstart::

    from repro import build_graph, run_punch
    g = build_graph(n, edge_u, edge_v)
    result = run_punch(g, U=1024)
    print(result.partition.cost, result.partition.num_cells)

Balanced partitions (k cells, imbalance epsilon)::

    from repro import run_balanced_punch
    result = run_balanced_punch(g, k=16, epsilon=0.03)

See ``repro.synthetic`` for road-network-like inputs, ``repro.baselines``
for comparison partitioners, and DESIGN.md for the paper-to-module map.
"""

from .core import (
    AssemblyConfig,
    BalancedConfig,
    BalancedResult,
    FilterConfig,
    Partition,
    PunchConfig,
    PunchResult,
    RuntimeConfig,
    run_punch,
)
from .graph import Graph, build_graph
from .runtime import FaultPlan, RunBudget

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "build_graph",
    "run_punch",
    "run_balanced_punch",
    "Partition",
    "PunchResult",
    "BalancedResult",
    "PunchConfig",
    "FilterConfig",
    "AssemblyConfig",
    "BalancedConfig",
    "RuntimeConfig",
    "RunBudget",
    "FaultPlan",
    "__version__",
]


def run_balanced_punch(*args, **kwargs):
    """Balanced PUNCH (paper Section 4); see repro.balanced.driver."""
    from .balanced.driver import run_balanced_punch as _impl

    return _impl(*args, **kwargs)
