"""LRU of customized metrics, keyed by weight-vector fingerprint.

Production CRP serves a handful of recurring metrics (live traffic
refreshed every few minutes, time-of-day profiles, vehicle classes): the
same weight vector comes back again and again, and recustomizing it from
scratch wastes the dominant cost of the serving layer.  :class:`MetricLRU`
stores fully customized overlay entries under a
:func:`metric_fingerprint` — the same canonical-digest idiom as
:meth:`repro.filtering.cut_problem.CutProblem.fingerprint`, so equal
fingerprints imply byte-equal weight vectors and a hit returns an overlay
bit-identical to a fresh customization (caching can change speed, never
answers).

Unlike :class:`repro.perf.cut_cache.CutCache` (FIFO — its subproblems are
uniformly cheap), this cache is *recency*-ordered: traffic profiles have
strong temporal locality, and a customized overlay is expensive enough
that evicting the least-recently-served metric is worth the extra
bookkeeping.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Generic, Iterable, Optional, TypeVar

import numpy as np

__all__ = ["MetricLRU", "metric_fingerprint"]

T = TypeVar("T")


def metric_fingerprint(weights: np.ndarray) -> bytes:
    """Canonical digest of one weight vector (float64 bytes + length)."""
    w = np.ascontiguousarray(weights, dtype=np.float64)
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(w.shape[0]).tobytes())
    h.update(w.tobytes())
    return h.digest()


class MetricLRU(Generic[T]):
    """Bounded fingerprint -> customized-metric store with LRU eviction."""

    __slots__ = ("max_entries", "hits", "misses", "evictions", "invalidations", "_store")

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._store: "OrderedDict[bytes, T]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: bytes) -> bool:
        return key in self._store

    def get(self, key: bytes) -> Optional[T]:
        """Look up a customized metric; refreshes recency on a hit."""
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, value: T) -> None:
        """Store a customized metric, evicting the least-recent when full."""
        if key in self._store:
            self._store.move_to_end(key)
            return
        if len(self._store) >= self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = value

    def stats(self) -> dict:
        """Counters for run reports: hits, misses, entries, hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._store),
            "max_entries": self.max_entries,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def invalidate(self, fingerprints: Iterable[bytes]) -> int:
        """Drop the given fingerprints; returns how many were present.

        Removals count as *invalidations*, never evictions — eviction is
        capacity pressure, invalidation is a correctness action (the
        entry's answers would be stale, e.g. after a structural graph
        update).  Conflating them would hide stale-metric hazards behind
        ordinary cache churn in run reports.
        """
        removed = 0
        for key in fingerprints:
            if self._store.pop(key, None) is not None:
                removed += 1
        self.invalidations += removed
        return removed

    def clear(self) -> int:
        """Invalidate every entry; returns how many were dropped.

        Hit/miss/eviction counters are preserved — clearing is an
        invalidation event, not a statistics reset (the serving engine
        resets counters explicitly in ``reset_counters``).
        """
        removed = len(self._store)
        self._store.clear()
        self.invalidations += removed
        return removed

    def reset_counters(self) -> None:
        """Zero all counters (cache contents kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
