"""Query-log replay harness for the serving engine.

Serving quality is a *workload* property — QPS and tail latency depend on
how queries interleave with metric switches — so the harness replays a
log: batches of point-to-point queries, each batch served under one of a
small set of weight profiles scheduled with temporal locality (profile 0
is "live traffic" and recurs; the others rotate), which is exactly the
access pattern the metric LRU is built for.

:func:`synthetic_query_log` derives everything from a seeded
:class:`numpy.random.Generator` — same seed, same workload — and uses
*integer-valued* float weights so profile distances stay exactly
representable (the property-test convention from
``tests/test_property_serving.py``).  :func:`replay` drives a
:class:`~repro.serve.engine.ServingEngine` through the log and reports
QPS, p50/p99 per-query latency, customization time, and the LRU hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, List, Optional

import numpy as np

from ..graph.graph import Graph
from .engine import ServingEngine

__all__ = ["QueryLog", "ReplayResult", "replay", "synthetic_query_log"]


@dataclass(frozen=True)
class QueryLog:
    """A replayable serving workload.

    ``sources``/``targets`` are aligned vertex ids; ``batch_profile[b]``
    names the weight profile (a row of ``profiles``) active for batch
    ``b`` when the log is replayed with a given batch size.  Profiles are
    per-undirected-edge weight vectors, integer-valued floats.
    """

    sources: np.ndarray
    targets: np.ndarray
    profiles: np.ndarray  # (num_profiles, m)
    batch_profile: np.ndarray  # profile id per batch

    @property
    def num_queries(self) -> int:
        return int(self.sources.shape[0])

    @property
    def num_profiles(self) -> int:
        return int(self.profiles.shape[0])


def synthetic_query_log(
    g: Graph,
    n_queries: int = 1000,
    batch_size: int = 50,
    n_profiles: int = 4,
    seed: int = 0,
) -> QueryLog:
    """Deterministic workload over ``g``: random s/t pairs, locality-biased profiles.

    The profile schedule alternates back to profile 0 between excursions
    (0, 1, 0, 2, 0, 3, ...), modeling a dominant live-traffic metric with
    occasional alternates — the pattern under which an LRU of customized
    metrics pays off.  Weights are drawn as integer-valued floats in
    ``[1, 10)`` scaled by the profile id to keep profiles distinct.
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if n_profiles <= 0:
        raise ValueError("n_profiles must be positive")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, g.n, size=n_queries, dtype=np.int64)
    targets = rng.integers(0, g.n, size=n_queries, dtype=np.int64)
    profiles = rng.integers(1, 10, size=(n_profiles, g.m)).astype(np.float64)
    # perturb each profile so they are pairwise distinct metrics
    for p in range(n_profiles):
        profiles[p] += float(p)

    n_batches = (n_queries + batch_size - 1) // batch_size
    sched: List[int] = []
    alt = 1
    for b in range(n_batches):
        if b % 2 == 0 or n_profiles == 1:
            sched.append(0)  # the recurring "live traffic" metric
        else:
            sched.append(alt)
            alt = alt % (n_profiles - 1) + 1 if n_profiles > 1 else 0
    return QueryLog(
        sources=sources,
        targets=targets,
        profiles=profiles,
        batch_profile=np.asarray(sched, dtype=np.int64),
    )


@dataclass
class ReplayResult:
    """Measured outcome of one log replay."""

    queries: int
    batches: int
    elapsed_s: float  # queries + customizations, wall clock
    query_s: float  # query time only
    qps: float  # queries / query_s
    latency_p50_ms: float
    latency_p99_ms: float
    customizations: int
    customize_s: float
    lru_hit_rate: float
    distances: np.ndarray = field(repr=False)
    engine_stats: dict = field(default_factory=dict, repr=False)

    def run_report(self) -> dict:
        """Serving section in the repo's run-report convention."""
        from ..core.result import sanitizer_section

        return sanitizer_section(
            {
                "serving": {
                    "replay": {
                        "queries": self.queries,
                        "batches": self.batches,
                        "elapsed_s": self.elapsed_s,
                        "query_s": self.query_s,
                        "qps": self.qps,
                        "latency_p50_ms": self.latency_p50_ms,
                        "latency_p99_ms": self.latency_p99_ms,
                        "customizations": self.customizations,
                        "customize_s": self.customize_s,
                        "lru_hit_rate": self.lru_hit_rate,
                    },
                    "engine": self.engine_stats,
                }
            }
        )


def replay(
    engine: ServingEngine,
    log: QueryLog,
    batch_size: int = 50,
    pool: Optional[Any] = None,
) -> ReplayResult:
    """Drive ``engine`` through ``log`` and measure serving behavior.

    Each batch first activates its scheduled profile via
    :meth:`~repro.serve.engine.ServingEngine.customize` (LRU hit or
    vectorized recustomization), then serves its queries through
    :meth:`~repro.serve.engine.ServingEngine.query_batch`.  Per-query
    latency is attributed as batch time / batch size (queries inside a
    batch are not individually timed, keeping measurement overhead off
    the hot path).  Returns every distance so callers can gate
    bit-identity against scalar re-execution.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    k = log.num_queries
    n_batches = (k + batch_size - 1) // batch_size
    if n_batches != int(log.batch_profile.shape[0]):
        raise ValueError(
            f"log schedules {int(log.batch_profile.shape[0])} batches but "
            f"batch_size={batch_size} yields {n_batches}"
        )
    hit0 = engine.cache.hits
    miss0 = engine.cache.misses
    cust_s0 = engine.counters.customize_seconds
    cust_n0 = engine.counters.customizations

    distances = np.full(k, np.inf, dtype=np.float64)
    latencies_ms: List[float] = []
    query_s = 0.0
    t_start = perf_counter()
    for b in range(n_batches):
        lo = b * batch_size
        hi = min(lo + batch_size, k)
        engine.customize(log.profiles[int(log.batch_profile[b])])
        t0 = perf_counter()
        distances[lo:hi] = engine.query_batch(
            log.sources[lo:hi], log.targets[lo:hi], pool=pool
        )
        dt = perf_counter() - t0
        query_s += dt
        per_query_ms = (dt / (hi - lo)) * 1e3
        latencies_ms.extend([per_query_ms] * (hi - lo))
    elapsed = perf_counter() - t_start

    lat = np.asarray(latencies_ms, dtype=np.float64)
    hits = engine.cache.hits - hit0
    misses = engine.cache.misses - miss0
    looked = hits + misses
    return ReplayResult(
        queries=k,
        batches=n_batches,
        elapsed_s=elapsed,
        query_s=query_s,
        qps=(k / query_s) if query_s > 0 else 0.0,
        latency_p50_ms=float(np.percentile(lat, 50)) if k else 0.0,
        latency_p99_ms=float(np.percentile(lat, 99)) if k else 0.0,
        customizations=engine.counters.customizations - cust_n0,
        customize_s=engine.counters.customize_seconds - cust_s0,
        lru_hit_rate=(hits / looked) if looked else 0.0,
        distances=distances,
        engine_stats=engine.stats(),
    )
