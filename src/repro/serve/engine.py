"""Persistent high-throughput CRP query engine.

:class:`ServingEngine` wraps an :class:`~repro.crp.overlay.Overlay` (or a
:class:`~repro.crp.multilevel.MultiLevelOverlay`) into a long-lived server:

- **metric LRU** — each distinct weight vector is customized once
  (vectorized, through the retained :class:`~repro.crp.overlay.CellTopology`)
  and cached under its fingerprint, so switching back to a recently
  served traffic profile is O(1);
- **workspace queries** — point-to-point searches run over flattened
  adjacency (Python lists, stamped
  :class:`~repro.serve.workspace.SearchWorkspace` tables) instead of
  per-query dicts/sets, relaxing exactly the same candidates in the same
  order as the scalar :func:`~repro.crp.query.crp_query` /
  :func:`~repro.crp.multilevel.ml_query` — answers are bit-identical
  (pinned in ``tests/test_serving.py``);
- **batched front end** — :meth:`ServingEngine.query_batch` amortizes
  setup across a batch and can fan chunks out across the repo's
  :class:`~repro.parallel.pool.WorkerPool` (thread kind; process pools
  cannot see the driver-resident overlay and degrade to inline serving,
  counted in the stats).

Counters (queries, batches, customizations, LRU hits/misses/evictions)
surface through :meth:`ServingEngine.run_report` under a ``"serving"``
key; ``collect_stats=False`` turns per-query bookkeeping off for the
overhead gate in ``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from threading import Lock
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.partition import Partition
from ..crp.multilevel import (
    MultiLevelOverlay,
    build_multilevel_overlay,
    customize_multilevel_overlay,
)
from ..crp.overlay import (
    Overlay,
    build_cell_topology,
    build_overlay,
    customize_overlay,
    patch_overlay,
    patch_overlay_weights,
)
from .metric_cache import MetricLRU, metric_fingerprint
from .workspace import SearchWorkspace

if TYPE_CHECKING:  # runtime import is deferred to enable_updates (no cycle)
    from ..updates.deltas import DeltaBatch
    from ..updates.engine import IncrementalUpdater, UpdateConfig, UpdateResult

__all__ = ["ServingConfig", "ServingEngine"]

_INF = float("inf")


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of a :class:`ServingEngine`.

    ``metric_cache_entries`` bounds the LRU of customized metrics;
    ``collect_stats`` gates per-query counter updates (the serving-smoke
    CI job asserts the counters cost <= 5% throughput); ``fanout_chunk``
    is the number of queries per worker task when a batch is fanned out.
    """

    metric_cache_entries: int = 8
    collect_stats: bool = True
    fanout_chunk: int = 64


@dataclass
class _FlatMetric:
    """One customized two-level metric, flattened for the query kernel."""

    overlay: Overlay
    half_w: List[float]  # per half-edge weights, native floats
    oadj: Dict[int, List[Tuple[int, float]]]  # the overlay adjacency


@dataclass
class _MLMetric:
    """One customized multi-level metric, flattened for the query kernel."""

    mlo: MultiLevelOverlay
    half_w: List[float]
    level_adj: List[Dict[int, List[Tuple[int, float]]]]


@dataclass
class _Counters:
    """Mutable serving counters (separate object so reset is one swap)."""

    queries: int = 0
    batches: int = 0
    batch_queries: int = 0
    customizations: int = 0
    customize_seconds: float = 0.0
    fanout_batches: int = 0
    fanout_degraded: int = 0
    settled_total: int = 0
    updates: int = 0
    weight_updates: int = 0
    structural_updates: int = 0
    metrics_invalidated: int = 0


class ServingEngine:
    """Long-lived CRP query server over one partition.

    Construct from a prebuilt overlay (two-level or multi-level) or let
    :meth:`from_partition` build one.  The engine's *active metric* starts
    as the overlay's own; :meth:`customize` swaps it (through the LRU) and
    every subsequent :meth:`query` / :meth:`query_batch` answers under it.
    The partition structure is fixed for the engine's lifetime — only
    metrics change, which is exactly CRP's customization contract.
    """

    def __init__(
        self,
        overlay: Union[Overlay, MultiLevelOverlay],
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        self.cache: MetricLRU[Union[_FlatMetric, _MLMetric]] = MetricLRU(
            self.config.metric_cache_entries
        )
        self.counters = _Counters()
        self._ws_lock = Lock()
        self._ws_pool: List[SearchWorkspace] = []
        self._ws_created = 0

        self._multilevel = isinstance(overlay, MultiLevelOverlay)
        self._graph = overlay.graph
        # Graph CSR and labels as native lists: the query kernels read one
        # element at a time, where list indexing avoids NumPy scalar boxing.
        # The partition (hence every labels array) is fixed for the engine's
        # lifetime, so these flatten once, not per metric.
        g = self._graph
        self._xadj: List[int] = g.xadj.tolist()
        self._adjncy: List[int] = g.adjncy.tolist()
        if self._multilevel:
            assert isinstance(overlay, MultiLevelOverlay)
            for o in overlay.overlays:  # retain skeletons for every customize
                if o.topology is None:
                    o.topology = build_cell_topology(Partition(o.graph, o.labels))
            self._level_labels: List[List[int]] = [
                p.labels.tolist() for p in overlay.nested.levels
            ]
            self._labels: List[int] = self._level_labels[0] if self._level_labels else []
            base: Union[_FlatMetric, _MLMetric] = self._flatten_ml(overlay)
        else:
            assert isinstance(overlay, Overlay)
            if overlay.topology is None:  # reference-built overlays lack one
                overlay.topology = build_cell_topology(
                    Partition(overlay.graph, overlay.labels)
                )
            self._level_labels = []
            self._labels = overlay.labels.tolist()
            base = self._flatten_flat(overlay)
        # the base metric is pinned outside the LRU: it owns the topology
        # every later customization derives from, so it must never evict
        self._base = base
        self._active = base
        self.cache.put(metric_fingerprint(g.ewgt), base)
        self._updater: Optional["IncrementalUpdater"] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_partition(
        cls, partition: Partition, config: Optional[ServingConfig] = None
    ) -> "ServingEngine":
        """Build a two-level engine straight from a partition."""
        return cls(build_overlay(partition), config)

    @classmethod
    def from_nested(
        cls, nested: Any, config: Optional[ServingConfig] = None
    ) -> "ServingEngine":
        """Build a multi-level engine from a nested partition."""
        return cls(build_multilevel_overlay(nested), config)

    # -- metric management -------------------------------------------------

    @staticmethod
    def _flatten_flat(overlay: Overlay) -> _FlatMetric:
        return _FlatMetric(
            overlay=overlay,
            half_w=overlay.graph.half_edge_weights().tolist(),
            oadj=overlay.adj,
        )

    @staticmethod
    def _flatten_ml(mlo: MultiLevelOverlay) -> _MLMetric:
        return _MLMetric(
            mlo=mlo,
            half_w=mlo.graph.half_edge_weights().tolist(),
            level_adj=[o.adj for o in mlo.overlays],
        )

    def customize(self, new_weights: np.ndarray) -> bool:
        """Make ``new_weights`` the active metric; returns True on LRU hit.

        A miss runs the vectorized customization
        (:func:`~repro.crp.overlay.customize_overlay` or its multi-level
        analog) against the base overlay's retained topology and installs
        the result in the LRU.  Equal fingerprints imply byte-equal weight
        vectors, so a hit serves answers bit-identical to a fresh
        customization.
        """
        w = np.asarray(new_weights, dtype=np.float64)
        key = metric_fingerprint(w)
        entry = self.cache.get(key)
        if entry is not None:
            self._active = entry
            return True
        t0 = perf_counter()
        fresh: Union[_FlatMetric, _MLMetric]
        if isinstance(self._base, _MLMetric):
            fresh = self._flatten_ml(customize_multilevel_overlay(self._base.mlo, w))
        else:
            fresh = self._flatten_flat(customize_overlay(self._base.overlay, w))
        self.counters.customizations += 1
        self.counters.customize_seconds += perf_counter() - t0
        self.cache.put(key, fresh)
        self._active = fresh
        return False

    # -- live updates ------------------------------------------------------

    def enable_updates(
        self,
        U: int,
        update_config: Optional["UpdateConfig"] = None,
        punch_config: Optional[Any] = None,
    ) -> "IncrementalUpdater":
        """Attach an incremental update engine to this server.

        Returns the :class:`~repro.updates.engine.IncrementalUpdater`
        bound to the engine's partition; feed delta batches through
        :meth:`apply_update` so the overlay, flattened CSR, and metric
        cache stay consistent with the repaired partition.  Multi-level
        engines are not supported (nested partitions would need per-level
        repair; see docs/UPDATES.md).
        """
        if self._multilevel:
            raise NotImplementedError(
                "live updates require a two-level engine; rebuild the "
                "multi-level overlay after graph changes instead"
            )
        from ..updates.engine import IncrementalUpdater

        assert isinstance(self._base, _FlatMetric)
        partition = Partition(self._graph, self._base.overlay.labels)
        self._updater = IncrementalUpdater(
            partition, U, config=update_config, punch_config=punch_config
        )
        return self._updater

    def apply_update(self, batch: "DeltaBatch") -> "UpdateResult":
        """Apply a delta batch to the live engine (repair + overlay patch).

        Weight-only batches patch the base overlay's dirty clique rows and
        *keep* every cached customized metric — the partition structure is
        unchanged, so a cached metric for weight vector ``w`` still
        answers exactly.  Structural batches repair the partition
        (:class:`~repro.updates.engine.IncrementalUpdater`), patch the
        overlay cell-by-cell, invalidate every cached metric (their weight
        vectors no longer index this graph), and reflatten the engine's
        CSR/label state.  Either way the patched overlay is bit-identical
        to a from-scratch build on the mutated graph, so no stale answer
        can be served.  Not safe concurrently with in-flight queries.
        """
        if self._updater is None:
            raise RuntimeError("call enable_updates(U) before apply_update")
        assert isinstance(self._base, _FlatMetric)
        result = self._updater.apply(batch)
        g2 = result.graph
        base_overlay = self._base.overlay
        invalidated = 0
        if not result.structural:
            new_overlay = patch_overlay_weights(
                base_overlay, g2.ewgt, result.dirty_cells
            )
        else:
            new_overlay = patch_overlay(
                base_overlay, result.partition, result.reusable, result.eid_map
            )
            invalidated = self.cache.clear()
            self._xadj = g2.xadj.tolist()
            self._adjncy = g2.adjncy.tolist()
            self._labels = result.partition.labels.tolist()
            with self._ws_lock:
                self._ws_pool.clear()  # pooled workspaces are sized to the old n
        self._graph = g2
        self._base = self._flatten_flat(new_overlay)
        self._active = self._base
        self.cache.put(metric_fingerprint(g2.ewgt), self._base)
        if self.config.collect_stats:
            c = self.counters
            c.updates += 1
            if result.structural:
                c.structural_updates += 1
            else:
                c.weight_updates += 1
            c.metrics_invalidated += invalidated
        return result

    # -- workspace pool ----------------------------------------------------

    def _checkout_workspace(self) -> SearchWorkspace:
        with self._ws_lock:
            if self._ws_pool:
                return self._ws_pool.pop()
            self._ws_created += 1
        return SearchWorkspace(self._graph.n)

    def _return_workspace(self, ws: SearchWorkspace) -> None:
        with self._ws_lock:
            self._ws_pool.append(ws)

    # -- query kernels -----------------------------------------------------

    def _query_flat(
        self, metric: _FlatMetric, ws: SearchWorkspace, s: int, t: int
    ) -> Tuple[float, int]:
        """Two-level search; relaxation-for-relaxation mirror of crp_query.

        Same candidate filter (endpoint-cell interiors + overlay), same
        tie-breaking heap tuples, same float additions — only the state
        containers differ (stamped lists vs dict/set), so distances and
        settled counts are bit-identical.
        """
        lab = self._labels
        cs, ct = lab[s], lab[t]
        xadj, adjncy, half_w = self._xadj, self._adjncy, metric.half_w
        oadj = metric.oadj

        stamp = ws.begin_query()
        dist, dstamp, done = ws.dist, ws.dist_stamp, ws.done_stamp
        dist[s] = 0.0
        dstamp[s] = stamp
        heap = ws.heap
        heap.append((0.0, s))
        settled = 0
        while heap:
            d, v = heappop(heap)
            if done[v] == stamp:
                continue
            done[v] = stamp
            settled += 1
            if v == t:
                return d, settled
            lv = lab[v]
            if lv == cs or lv == ct:
                for i in range(xadj[v], xadj[v + 1]):
                    u = adjncy[i]
                    lu = lab[u]
                    if lu != cs and lu != ct and u not in oadj:
                        continue  # interior of a foreign cell
                    nd = d + half_w[i]
                    if dstamp[u] != stamp or nd < dist[u]:
                        dist[u] = nd
                        dstamp[u] = stamp
                        heappush(heap, (nd, u))
            row = oadj.get(v)
            if row is not None:
                for u, w in row:
                    nd = d + w
                    if dstamp[u] != stamp or nd < dist[u]:
                        dist[u] = nd
                        dstamp[u] = stamp
                        heappush(heap, (nd, u))
        return _INF, settled

    def _query_ml(
        self, metric: _MLMetric, ws: SearchWorkspace, s: int, t: int
    ) -> Tuple[float, int]:
        """Multi-level search; mirror of ml_query (same query-level rule)."""
        level_labels = self._level_labels
        level_adj = metric.level_adj
        L = len(level_labels)
        s_cell = [level_labels[i][s] for i in range(L)]
        t_cell = [level_labels[i][t] for i in range(L)]
        xadj, adjncy, half_w = self._xadj, self._adjncy, metric.half_w

        stamp = ws.begin_query()
        dist, dstamp, done = ws.dist, ws.dist_stamp, ws.done_stamp
        dist[s] = 0.0
        dstamp[s] = stamp
        heap = ws.heap
        heap.append((0.0, s))
        settled = 0
        while heap:
            d, v = heappop(heap)
            if done[v] == stamp:
                continue
            done[v] = stamp
            settled += 1
            if v == t:
                return d, settled
            lvl = 0
            for i in range(L, 0, -1):  # coarsest level first
                c = level_labels[i - 1][v]
                if c != s_cell[i - 1] and c != t_cell[i - 1]:
                    lvl = i
                    break
            if lvl == 0:
                for i in range(xadj[v], xadj[v + 1]):
                    u = adjncy[i]
                    nd = d + half_w[i]
                    if dstamp[u] != stamp or nd < dist[u]:
                        dist[u] = nd
                        dstamp[u] = stamp
                        heappush(heap, (nd, u))
            else:
                for u, w in level_adj[lvl - 1].get(v, ()):
                    nd = d + w
                    if dstamp[u] != stamp or nd < dist[u]:
                        dist[u] = nd
                        dstamp[u] = stamp
                        heappush(heap, (nd, u))
        return _INF, settled

    def _run_query(self, ws: SearchWorkspace, s: int, t: int) -> Tuple[float, int]:
        g = self._graph
        if not (0 <= s < g.n and 0 <= t < g.n):
            raise ValueError(f"query endpoints ({s}, {t}) out of range for n={g.n}")
        metric = self._active
        if isinstance(metric, _MLMetric):
            return self._query_ml(metric, ws, s, t)
        return self._query_flat(metric, ws, s, t)

    # -- public query API --------------------------------------------------

    def query(self, s: int, t: int) -> Tuple[float, int]:
        """Point-to-point distance under the active metric.

        Returns ``(distance, settled_count)`` — bit-identical to
        :func:`~repro.crp.query.crp_query` (or ``ml_query``) on the
        equivalent customized overlay.
        """
        ws = self._checkout_workspace()
        try:
            out = self._run_query(ws, int(s), int(t))
        finally:
            self._return_workspace(ws)
        if self.config.collect_stats:
            c = self.counters
            c.queries += 1
            c.settled_total += out[1]
        return out

    def query_batch(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        pool: Optional[Any] = None,
    ) -> np.ndarray:
        """Distances for aligned source/target id sequences.

        One workspace serves the whole batch inline; with a thread-kind
        :class:`~repro.parallel.pool.WorkerPool` (or a
        :class:`~repro.parallel.pool.ParallelRuntime` wrapping one) the
        batch is split into ``config.fanout_chunk``-sized contiguous
        chunks served by per-worker workspaces.  Results are written by
        position, so the answer array is independent of scheduling — and
        bit-identical to serving each query alone.
        """
        src = [int(x) for x in sources]
        dst = [int(x) for x in targets]
        if len(src) != len(dst):
            raise ValueError("sources and targets must have equal length")
        k = len(src)
        out = np.full(k, np.inf, dtype=np.float64)
        settled_sum = 0

        worker_pool = self._thread_pool_of(pool)
        if pool is not None and worker_pool is None and self.config.collect_stats:
            self.counters.fanout_degraded += 1
        if worker_pool is None or k <= self.config.fanout_chunk:
            ws = self._checkout_workspace()
            try:
                for i in range(k):
                    d, n_settled = self._run_query(ws, src[i], dst[i])
                    out[i] = d
                    settled_sum += n_settled
            finally:
                self._return_workspace(ws)
        else:
            chunk = self.config.fanout_chunk
            spans = [(lo, min(lo + chunk, k)) for lo in range(0, k, chunk)]

            def serve_span(span: Tuple[int, int]) -> List[Tuple[float, int]]:
                lo, hi = span
                ws = self._checkout_workspace()
                try:
                    return [self._run_query(ws, src[i], dst[i]) for i in range(lo, hi)]
                finally:
                    self._return_workspace(ws)

            for (lo, _hi), answers in zip(
                spans, worker_pool.map_ordered(serve_span, spans)
            ):
                for off, (d, n_settled) in enumerate(answers):
                    out[lo + off] = d
                    settled_sum += n_settled
            if self.config.collect_stats:
                self.counters.fanout_batches += 1

        if self.config.collect_stats:
            c = self.counters
            c.batches += 1
            c.batch_queries += k
            c.queries += k
            c.settled_total += settled_sum
        return out

    @staticmethod
    def _thread_pool_of(pool: Optional[Any]) -> Optional[Any]:
        """Unwrap a usable thread pool; process pools cannot share the overlay."""
        if pool is None:
            return None
        inner = pool
        accessor = getattr(inner, "pool", None)
        if callable(accessor):  # ParallelRuntime exposes .pool()
            inner = accessor()
        if inner is None:
            return None
        if getattr(inner, "kind", None) != "threads":
            return None
        usable = getattr(inner, "usable", None)
        if callable(usable) and not usable():
            return None
        return inner

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot (queries, batches, customization, LRU)."""
        c = self.counters
        q = c.queries
        return {
            "mode": "multilevel" if self._multilevel else "two-level",
            "n": int(self._graph.n),
            "queries": q,
            "batches": c.batches,
            "batch_queries": c.batch_queries,
            "settled_mean": (c.settled_total / q) if q else 0.0,
            "customizations": c.customizations,
            "customize_seconds": c.customize_seconds,
            "fanout_batches": c.fanout_batches,
            "fanout_degraded": c.fanout_degraded,
            "workspaces": self._ws_created,
            "stats_enabled": self.config.collect_stats,
            "metric_cache": self.cache.stats(),
            "updates": {
                "applied": c.updates,
                "weight": c.weight_updates,
                "structural": c.structural_updates,
                "metrics_invalidated": c.metrics_invalidated,
                **(
                    {"journal": self._updater.journal.report()}
                    if self._updater is not None
                    else {}
                ),
            },
        }

    def run_report(self) -> dict:
        """Serving section for experiment reports (plus sanitizer state)."""
        from ..core.result import sanitizer_section

        return sanitizer_section({"serving": self.stats()})

    def reset_counters(self) -> None:
        """Zero the query/customization counters (cache contents kept)."""
        self.counters = _Counters()
        self.cache.reset_counters()
