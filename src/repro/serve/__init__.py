"""High-QPS partition-serving layer over the CRP overlay.

The :mod:`repro.crp` package answers one query on one overlay; this
package turns that into a *server*: a persistent
:class:`~repro.serve.engine.ServingEngine` holding customized metrics in
an LRU (:class:`~repro.serve.metric_cache.MetricLRU`), serving batched
queries through reusable :class:`~repro.serve.workspace.SearchWorkspace`
state, and a replay harness (:mod:`repro.serve.replay`) that measures
QPS / tail latency / hit rates on seeded synthetic workloads.  Answers
are bit-identical to the scalar single-query path by construction and by
test.
"""

from .engine import ServingConfig, ServingEngine
from .metric_cache import MetricLRU, metric_fingerprint
from .replay import QueryLog, ReplayResult, replay, synthetic_query_log
from .workspace import SearchWorkspace

__all__ = [
    "MetricLRU",
    "metric_fingerprint",
    "QueryLog",
    "ReplayResult",
    "replay",
    "synthetic_query_log",
    "SearchWorkspace",
    "ServingConfig",
    "ServingEngine",
]
