"""Reusable per-worker search state for overlay queries.

A scalar :func:`~repro.crp.query.crp_query` allocates a fresh distance
dict, settled set, and heap per call.  At serving rates those allocations
dominate: a :class:`SearchWorkspace` preallocates flat distance/settled
tables once per worker and invalidates them with a version stamp — O(1)
per query instead of O(touched) re-initialization — and reuses one heap
buffer across the whole batch.

Plain Python lists, not NumPy arrays: the query kernels index one element
at a time, where list access returns native ints/floats without the
NumPy-scalar boxing overhead (same reasoning as the cell-local clique
kernel in :mod:`repro.crp.overlay`).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["SearchWorkspace"]


class SearchWorkspace:
    """Preallocated distance/settled tables plus a reusable heap buffer.

    ``dist[v]`` is only meaningful while ``dist_stamp[v] == clock``;
    bumping the clock invalidates every entry at once.  One workspace
    serves one worker at a time (not thread-safe by design — the batched
    front end checks one workspace out per worker).
    """

    __slots__ = ("n", "clock", "dist", "dist_stamp", "done_stamp", "heap", "reuses")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("workspace size must be non-negative")
        self.n = int(n)
        self.clock = 0
        self.dist: List[float] = [0.0] * self.n
        self.dist_stamp: List[int] = [0] * self.n
        self.done_stamp: List[int] = [0] * self.n
        self.heap: List[Tuple[float, int]] = []
        self.reuses = 0  # queries served beyond the first

    def begin_query(self) -> int:
        """Invalidate all state and return the fresh stamp for this query."""
        self.clock += 1
        if self.clock > 1:
            self.reuses += 1
        self.heap.clear()
        return self.clock

    def resize(self, n: int) -> None:
        """Grow the tables to serve a graph of ``n`` vertices."""
        if n > self.n:
            grow = n - self.n
            self.dist.extend([0.0] * grow)
            self.dist_stamp.extend([0] * grow)
            self.done_stamp.extend([0] * grow)
            self.n = n
