"""Partition representation and quality metrics.

A :class:`Partition` labels every vertex of the *input* graph with a cell
id and exposes the quantities the paper reports: cost (cut weight), number
of cells, cell sizes, imbalance against a bound, and connectivity (PUNCH
cells are connected by construction in the unbalanced case; rebalancing may
sacrifice this, as the paper notes — so we measure it).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..graph.components import connected_components_masked
from ..graph.graph import Graph

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """An assignment of input vertices to cells."""

    graph: Graph
    labels: np.ndarray

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.shape != (self.graph.n,):
            raise ValueError("labels must assign every vertex of the graph")
        _, dense = np.unique(labels, return_inverse=True)
        object.__setattr__(self, "labels", dense.astype(np.int64))

    # ------------------------------------------------------------------
    @cached_property
    def num_cells(self) -> int:
        """Number of cells."""
        return int(self.labels.max()) + 1 if self.graph.n else 0

    @cached_property
    def cell_sizes(self) -> np.ndarray:
        """Total vertex size per cell."""
        return np.bincount(self.labels, weights=self.graph.vsize).astype(np.int64)

    @cached_property
    def cut_edges(self) -> np.ndarray:
        """Edge ids crossing cells."""
        g = self.graph
        return np.flatnonzero(self.labels[g.edge_u] != self.labels[g.edge_v]).astype(np.int64)

    @cached_property
    def cost(self) -> float:
        """Total weight of cut edges — the objective of the paper."""
        return float(self.graph.ewgt[self.cut_edges].sum())

    @cached_property
    def boundary_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Boundary vertices per cell as ``(offsets, verts)`` in CSR layout.

        ``verts[offsets[c]:offsets[c + 1]]`` are the cut-edge endpoints that
        lie in cell ``c``, ascending.  Derived purely from :attr:`cut_edges`,
        so overlay builds and metric customizations share one computation.
        Like :attr:`cell_adjacency`-style caches elsewhere this is pure
        acceleration state; ``Partition`` is frozen (labels never mutate
        after ``__post_init__``), so no invalidation hook is needed — a new
        labeling is a new ``Partition`` with a fresh cache.
        """
        g = self.graph
        cut = self.cut_edges
        ends = np.concatenate([g.edge_u[cut], g.edge_v[cut]]).astype(np.int64)
        # unique (cell, vertex) pairs, sorted by cell then vertex id
        key = self.labels[ends] * np.int64(max(g.n, 1)) + ends
        uniq = np.unique(key)
        verts = uniq % max(g.n, 1)
        counts = np.bincount(uniq // max(g.n, 1), minlength=self.num_cells)
        offsets = np.zeros(self.num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, verts.astype(np.int64)

    @cached_property
    def cell_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Members per cell as ``(offsets, verts)`` in CSR layout.

        ``verts[offsets[c]:offsets[c + 1]]`` are the vertices of cell ``c``
        in ascending order.  Memoized for the same reason as
        :attr:`boundary_index`.
        """
        order = np.argsort(self.labels, kind="stable")
        counts = np.bincount(self.labels, minlength=self.num_cells)
        offsets = np.zeros(self.num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, order.astype(np.int64)

    def boundary_of(self, cell: int) -> np.ndarray:
        """Boundary vertices of one cell (ascending; view into the memo)."""
        offsets, verts = self.boundary_index
        return verts[offsets[cell] : offsets[cell + 1]]

    def members_of(self, cell: int) -> np.ndarray:
        """Vertices of one cell (ascending; view into the memo)."""
        offsets, verts = self.cell_index
        return verts[offsets[cell] : offsets[cell + 1]]

    # ------------------------------------------------------------------
    def max_cell_size(self) -> int:
        """Size of the largest cell."""
        return int(self.cell_sizes.max()) if self.num_cells else 0

    def respects_bound(self, U: int) -> bool:
        """True iff every cell fits in ``U``."""
        return self.max_cell_size() <= U

    def imbalance(self, k: int | None = None) -> float:
        """``max_cell / ceil(n/k) - 1`` (the balanced-partition epsilon)."""
        k = self.num_cells if k is None else k
        ideal = -(-self.graph.total_size() // k)  # ceil
        return self.max_cell_size() / ideal - 1.0

    def connected_cells(self) -> np.ndarray:
        """Boolean mask: is each cell connected in the input graph?"""
        _, comp = connected_components_masked(self.graph, self.cut_edges)
        ok = np.ones(self.num_cells, dtype=bool)
        # a cell is connected iff all its vertices share one component
        for c in range(self.num_cells):
            members = np.flatnonzero(self.labels == c)
            if len(members) and len(np.unique(comp[members])) > 1:
                ok[c] = False
        return ok

    def all_cells_connected(self) -> bool:
        """True iff every cell induces a connected subgraph."""
        return bool(self.connected_cells().all())

    def validate(self, U: int | None = None) -> None:
        """Check structural sanity (and the size bound if given)."""
        if U is not None and not self.respects_bound(U):
            raise AssertionError(
                f"cell bound violated: max {self.max_cell_size()} > U={U}"
            )
        if int(self.cell_sizes.sum()) != self.graph.total_size():
            raise AssertionError("cell sizes do not add up to the graph size")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(cells={self.num_cells}, cost={self.cost:g})"
