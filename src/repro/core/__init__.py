"""Public API of the PUNCH reproduction."""

from .config import AssemblyConfig, BalancedConfig, FilterConfig, PunchConfig, RuntimeConfig
from .partition import Partition
from .nested import NestedPartition, run_nested_punch
from .punch import run_punch
from .result import BalancedResult, PunchResult

__all__ = [
    "run_punch",
    "run_nested_punch",
    "NestedPartition",
    "Partition",
    "PunchResult",
    "BalancedResult",
    "PunchConfig",
    "FilterConfig",
    "AssemblyConfig",
    "BalancedConfig",
    "RuntimeConfig",
]
