"""The PUNCH driver: filtering + assembly on a connected input.

``run_punch`` is the library's main entry point for the standard (cell-size
bounded, unbalanced) graph partitioning problem of the paper: given ``U``,
find a partition into cells of size at most ``U`` minimizing the total
weight of cut edges.  Disconnected inputs are handled by partitioning each
connected component independently, as the paper's preliminaries allow.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..assembly.driver import run_assembly
from ..filtering.pipeline import run_filtering
from ..graph.components import connected_components
from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph
from ..lint.sanitizer import get_sanitizer
from ..runtime.budget import RunBudget
from .config import PunchConfig
from .partition import Partition
from .result import PunchResult

__all__ = ["run_punch"]


def _supervisor_section(parallel, supervisor) -> dict:
    """Telemetry of whichever supervisor watched this run, if any."""
    sup = getattr(parallel, "supervisor", None)
    if sup is None:
        sup = supervisor
    return sup.report() if sup is not None else {}


def run_punch(
    g: Graph,
    U: int,
    config: Optional[PunchConfig] = None,
    rng: np.random.Generator | None = None,
    budget: RunBudget | None = None,
    parallel=None,
    cut_cache=None,
) -> PunchResult:
    """Partition ``g`` into cells of size at most ``U`` with PUNCH.

    With ``config.runtime.time_budget`` set (or an explicit ``budget``), the
    whole run shares one deadline: filtering stops contracting and assembly
    stops iterating when it expires, and the best valid partition found so
    far is returned.  See ``docs/RESILIENCE.md``.

    With ``config.parallel`` set, one shared-memory worker pool
    (:class:`~repro.parallel.pool.ParallelRuntime`) is created here, reused
    by natural-cut detection and multistart assembly across all components,
    and torn down — pool and shared segments — when the run ends, even on
    error.  An explicit ``parallel`` argument borrows an existing runtime
    (the caller keeps ownership).  The partition is bit-identical across
    backends; see ``docs/PERFORMANCE.md``.
    """
    config = PunchConfig() if config is None else config
    if rng is None:
        rng = np.random.default_rng(config.seed)
    if U < int(g.vsize.max(initial=1)):
        raise ValueError("U must be at least the largest vertex size")
    if budget is None and config.runtime.time_budget is not None:
        budget = config.runtime.make_budget()

    owns_parallel = False
    supervisor = None
    if parallel is None and config.parallel is not None:
        from ..parallel.pool import ParallelRuntime

        parallel = ParallelRuntime(config.parallel)
        owns_parallel = True
    if config.runtime.supervise and (parallel is None or parallel.supervisor is None):
        # borrowed runtimes may already carry a supervisor; never replace it
        supervisor = config.runtime.make_supervisor()
        supervisor.startup()  # reap orphaned segments from dead runs
        if parallel is not None:
            parallel.supervisor = supervisor
    try:
        ncomp, comp = connected_components(g)
        if ncomp > 1:
            result = _run_per_component(
                g, U, config, rng, ncomp, comp, budget, parallel, cut_cache
            )
            if supervisor is not None and not result.supervisor_report:
                result.supervisor_report = supervisor.report()
            return result

        filt = run_filtering(
            g,
            U,
            config.filter,
            rng,
            runtime=config.runtime,
            budget=budget,
            parallel=parallel,
            cut_cache=cut_cache,
        )
        t0 = time.perf_counter()
        asm = run_assembly(
            filt.fragment_graph,
            U,
            config.assembly,
            rng,
            runtime=config.runtime,
            budget=budget,
            parallel=parallel,
        )
        time_assembly = time.perf_counter() - t0

        labels = asm.labels[filt.map]
        partition = Partition(g, labels)
        # assembly reports its cost on the fragment graph; projecting through
        # filt.map must conserve it exactly (boundary-edge accounting), and
        # PUNCH cells are connected by construction in the unbalanced case
        get_sanitizer().check_partition(
            "punch", g, partition.labels, U=U, expected_cost=asm.cost
        )
        return PunchResult(
            partition=partition,
            U=U,
            filter_result=filt,
            assembly_stats=asm.stats,
            time_tiny=filt.time_tiny,
            time_natural=filt.time_natural,
            time_assembly=time_assembly,
            parallel_report=parallel.report() if parallel is not None else {},
            supervisor_report=_supervisor_section(parallel, supervisor),
        )
    finally:
        if owns_parallel:
            parallel.close()


def _run_per_component(
    g: Graph,
    U: int,
    config: PunchConfig,
    rng: np.random.Generator,
    ncomp: int,
    comp: np.ndarray,
    budget: RunBudget | None = None,
    parallel=None,
    cut_cache=None,
) -> PunchResult:
    """Partition each connected component independently and merge.

    A parallel runtime owned by the top-level call is passed down so every
    per-component sub-run reuses the same worker pool.
    """
    from dataclasses import replace

    if config.runtime.checkpoint_path is not None:
        # one checkpoint file cannot serve several per-component sub-runs;
        # the shared budget still bounds the whole multi-component run
        config = replace(
            config,
            runtime=replace(config.runtime, checkpoint_path=None, resume=False),
        )
    labels = np.zeros(g.n, dtype=np.int64)
    offset = 0
    total = dict(time_tiny=0.0, time_natural=0.0, time_assembly=0.0)
    last_filt = None
    last_stats = None
    for c in range(ncomp):
        members = np.flatnonzero(comp == c)
        if len(members) == 1:
            labels[members] = offset
            offset += 1
            continue
        sub, sub_to_g, _ = induced_subgraph(g, members)
        res = run_punch(
            sub, U, config, rng, budget=budget, parallel=parallel, cut_cache=cut_cache
        )
        labels[sub_to_g] = res.partition.labels + offset
        offset += res.partition.num_cells
        total["time_tiny"] += res.time_tiny
        total["time_natural"] += res.time_natural
        total["time_assembly"] += res.time_assembly
        last_filt = res.filter_result
        last_stats = res.assembly_stats
    partition = Partition(g, labels)
    assert last_filt is not None, "empty graph has no components to partition"
    # per-component sub-runs already checked cost accounting; the merged
    # labeling still has to respect the bound and keep cells connected
    get_sanitizer().check_partition("punch.components", g, partition.labels, U=U)
    return PunchResult(
        partition=partition,
        U=U,
        filter_result=last_filt,
        assembly_stats=last_stats,
        parallel_report=parallel.report() if parallel is not None else {},
        supervisor_report=_supervisor_section(parallel, None),
        **total,
    )
