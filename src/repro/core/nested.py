"""Nested (multi-level) partitions — what CRP actually consumes.

Customizable Route Planning uses a *hierarchy* of partitions: cells of
size U_0 nested inside cells of size U_1 inside ... (the paper's citation
[7] uses e.g. U = 2^8, 2^12, 2^16, 2^20).  PUNCH produces one level; this
module stacks levels so that every level-i cell is fully contained in one
level-(i+1) cell, by partitioning the *cell graph* of level i with bound
U_{i+1} — the contraction chain makes each coarser level's input tiny, so
the extra levels are nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graph.contraction import ContractionChain
from ..graph.graph import Graph
from .config import PunchConfig
from .partition import Partition
from .punch import run_punch

__all__ = ["NestedPartition", "run_nested_punch"]


@dataclass
class NestedPartition:
    """A nesting-consistent stack of partitions, finest first.

    ``levels[i]`` is the level-i partition of the *original* graph;
    ``levels[i + 1]`` coarsens it (every finer cell maps into exactly one
    coarser cell).
    """

    graph: Graph
    U_values: List[int]
    levels: List[Partition]

    def cell_of(self, v: int, level: int) -> int:
        """Cell id of vertex ``v`` at ``level``."""
        return int(self.levels[level].labels[v])

    def check_nesting(self) -> None:
        """Assert the hierarchy property (used by tests)."""
        for fine, coarse in zip(self.levels, self.levels[1:]):
            # the coarse cell must be a function of the fine cell
            mapping = {}
            for f, c in zip(fine.labels, coarse.labels):
                f, c = int(f), int(c)
                if f in mapping:
                    assert mapping[f] == c, "nesting violated"
                else:
                    mapping[f] = c


def run_nested_punch(
    g: Graph,
    U_values: Sequence[int],
    config: Optional[PunchConfig] = None,
    rng: np.random.Generator | None = None,
) -> NestedPartition:
    """Build a nested partition for increasing cell bounds ``U_values``.

    Level 0 runs PUNCH on the input; every further level runs PUNCH on the
    previous level's cell graph (cells as vertices, sizes summed), so
    nesting holds by construction.
    """
    U_values = sorted(int(u) for u in U_values)
    if not U_values:
        raise ValueError("need at least one U value")
    config = PunchConfig() if config is None else config
    if rng is None:
        rng = np.random.default_rng(config.seed)

    chain = ContractionChain(g)
    levels: List[Partition] = []
    for U in U_values:
        res = run_punch(chain.current, U, config, rng=rng)
        chain.apply(res.partition.labels)
        levels.append(Partition(g, chain.map.copy()))
    return NestedPartition(graph=g, U_values=list(U_values), levels=levels)
