"""Result objects returned by the PUNCH drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


from ..assembly.multistart import MultistartStats
from ..filtering.pipeline import FilterResult
from ..lint.sanitizer import get_sanitizer
from .partition import Partition

__all__ = ["PunchResult", "BalancedResult", "sanitizer_section"]


def sanitizer_section(report: dict) -> dict:
    """Attach ``report["sanitizer"]`` when the runtime sanitizer is active.

    Public because every ``run_report()`` producer in the repo (driver
    results here, :class:`repro.serve.engine.ServingEngine`,
    :class:`repro.serve.replay.ReplayResult`) shares the same convention.
    """
    san = get_sanitizer()
    if san.enabled:
        report["sanitizer"] = san.report()
    return report


# historical private alias (pre-serving callers)
_sanitizer_section = sanitizer_section


@dataclass
class PunchResult:
    """Outcome of one unbalanced PUNCH run (paper Table 1 quantities)."""

    partition: Partition
    U: int
    filter_result: FilterResult
    assembly_stats: Optional[MultistartStats]
    time_tiny: float
    time_natural: float
    time_assembly: float
    # worker-pool telemetry (backend, merged per-worker cache counters, shared
    # bytes, pool breaks); empty when the run was single-process
    parallel_report: dict = field(default_factory=dict)
    # execution-supervisor telemetry (watchdog detections, restarts, reaped
    # orphans); empty when the run was unsupervised
    supervisor_report: dict = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """Cut weight of the partition."""
        return self.partition.cost

    @property
    def num_cells(self) -> int:
        """Number of cells in the partition."""
        return self.partition.num_cells

    @property
    def num_fragments(self) -> int:
        """|V'| of the paper: vertices after filtering."""
        return self.filter_result.fragment_graph.n

    @property
    def time_total(self) -> float:
        """Total wall time across the three phases."""
        return self.time_tiny + self.time_natural + self.time_assembly

    @property
    def lower_bound_cells(self) -> int:
        """LB = ceil(n / U)."""
        return -(-self.partition.graph.total_size() // self.U)

    def run_report(self) -> dict:
        """Resilience incidents across both phases (empty dict = clean run).

        Keys follow docs/RESILIENCE.md: retries, timeouts, skipped,
        deadline_skipped, solver_fallbacks, executor_degradations,
        deadline_expired, resumed_at, checkpoints_written.
        """
        report = self.filter_result.run_report()
        if self.assembly_stats is not None:
            for key, value in self.assembly_stats.incidents().items():
                report[f"assembly_{key}" if key in report else key] = value
        if self.parallel_report:
            report["parallel"] = dict(self.parallel_report)
        if self.supervisor_report:
            report["supervisor"] = dict(self.supervisor_report)
        return _sanitizer_section(report)

    def summary(self) -> str:
        """One-line human-readable result summary."""
        line = (
            f"U={self.U}: cells={self.num_cells} (LB {self.lower_bound_cells}), "
            f"|V'|={self.num_fragments}, cost={self.cost:g}, "
            f"time tny/nat/asm = {self.time_tiny:.1f}/{self.time_natural:.1f}/"
            f"{self.time_assembly:.1f}s"
        )
        incidents = self.run_report()
        # the filtering, cut-cache, worker-pool, supervisor, and sanitizer
        # sections are informational
        incidents.pop("filtering", None)
        incidents.pop("cut_cache", None)
        incidents.pop("parallel", None)
        incidents.pop("supervisor", None)
        incidents.pop("sanitizer", None)
        if incidents:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(incidents.items()))
            line += f" [resilience: {detail}]"
        return line


@dataclass
class BalancedResult:
    """Outcome of one balanced PUNCH run (paper Tables 2-4 quantities)."""

    partition: Partition
    k: int
    epsilon: float
    U_star: int
    time_total: float
    attempts: int = 0
    failed_rebalances: int = 0
    unbalanced_costs: list = field(default_factory=list)
    # resilience accounting (docs/RESILIENCE.md)
    deadline_expired: bool = False  # driver stopped early on the budget
    resumed_at: int = -1  # start index restored from a checkpoint (-1 = fresh)
    checkpoints_written: int = 0
    # non-empty when the resume degraded (older generation / fresh start)
    checkpoint_recovery: dict = field(default_factory=dict)
    filter_report: dict = field(default_factory=dict)
    # worker-pool telemetry; empty when the run was single-process
    parallel_report: dict = field(default_factory=dict)
    # execution-supervisor telemetry; empty when the run was unsupervised
    supervisor_report: dict = field(default_factory=dict)

    @property
    def cost(self) -> float:
        return self.partition.cost

    def feasible(self) -> bool:
        """At most k cells, none above U*."""
        return (
            self.partition.num_cells <= self.k
            and self.partition.max_cell_size() <= self.U_star
        )

    def run_report(self) -> dict:
        """Resilience incidents of the whole run (empty dict = clean run)."""
        report = dict(self.filter_report)
        if self.deadline_expired:
            report["deadline_expired"] = True
        if self.resumed_at >= 0:
            report["resumed_at"] = self.resumed_at
        if self.checkpoints_written:
            report["checkpoints_written"] = self.checkpoints_written
        if self.checkpoint_recovery:
            report["checkpoint_recovery"] = dict(self.checkpoint_recovery)
        if self.parallel_report:
            report["parallel"] = dict(self.parallel_report)
        if self.supervisor_report:
            report["supervisor"] = dict(self.supervisor_report)
        return _sanitizer_section(report)

    def summary(self) -> str:
        line = (
            f"k={self.k} eps={self.epsilon}: cells={self.partition.num_cells}, "
            f"cost={self.cost:g}, max cell={self.partition.max_cell_size()} "
            f"(U*={self.U_star}), time={self.time_total:.1f}s"
        )
        incidents = self.run_report()
        incidents.pop("filtering", None)
        incidents.pop("cut_cache", None)
        incidents.pop("parallel", None)
        incidents.pop("supervisor", None)
        incidents.pop("sanitizer", None)
        if incidents:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(incidents.items()))
            line += f" [resilience: {detail}]"
        return line
