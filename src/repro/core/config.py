"""Configuration dataclasses with the paper's default parameters.

Defaults reproduce the experimental setup of Section 5: filtering with
``alpha = 1``, ``f = 10``, coverage ``C = 2``, both tiny- and natural-cut
detection; assembly with the L2+ local search, ``phi = 16``, no combination.
The balanced driver (Section 4/5) filters at ``U*/3``, builds ``ceil(32/k)``
(default) or ``ceil(256/k)`` (strong) unbalanced solutions with ``phi = 512``
and rebalances each 50 times with ``phi = 128``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..runtime.budget import RunBudget
from ..runtime.faults import FaultPlan

__all__ = [
    "FilterConfig",
    "AssemblyConfig",
    "PunchConfig",
    "BalancedConfig",
    "RuntimeConfig",
    "ParallelConfig",
]


@dataclass(frozen=True)
class ParallelConfig:
    """Shared-memory worker-pool policy (``src/repro/parallel/``).

    Setting ``parallel`` on a :class:`PunchConfig` / :class:`BalancedConfig`
    routes natural-cut detection, multistart assembly, and the balanced
    driver's unbalanced starts through one persistent
    :class:`~repro.parallel.pool.WorkerPool`.  The output is bit-identical
    across backends (serial ≡ threads ≡ processes — see
    ``docs/PERFORMANCE.md``); the backend only decides where the work runs.
    ``backend="serial"`` runs the same task structure inline, which is what
    makes the contract testable.
    """

    backend: str = "processes"  # "serial" | "threads" | "processes"
    workers: Optional[int] = None  # None = os.cpu_count()
    # LPT scheduling granularity: subproblem batches per worker per sweep
    # (more batches = better load balance, more dispatch overhead)
    batches_per_worker: int = 4

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "threads", "processes"):
            raise ValueError(
                f"backend must be 'serial', 'threads' or 'processes', got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for cpu_count)")
        if self.batches_per_worker < 1:
            raise ValueError("batches_per_worker must be >= 1")


@dataclass(frozen=True)
class RuntimeConfig:
    """Resilience policy for a run (see ``docs/RESILIENCE.md``).

    The defaults are inert: no deadline, no per-subproblem timeout, no
    checkpointing, no fault injection — only the bounded-retry and
    executor/solver degradation safety nets are armed.  ``fault_plan`` is
    exclusively a test/CI hook.
    """

    time_budget: Optional[float] = None  # wall-clock seconds for the whole run
    subproblem_timeout: Optional[float] = None  # per min-cut subproblem (pooled only)
    max_retries: int = 2  # extra attempts per failed subproblem
    backoff_base: float = 0.05  # first retry delay (seconds); 0 disables sleeps
    backoff_max: float = 1.0  # backoff ceiling
    backoff_jitter: float = 0.1  # jitter fraction on top of the backoff
    retry_seed: int = 0  # seeds the backoff jitter
    checkpoint_path: Optional[str] = None  # where multistart/balanced loops checkpoint
    checkpoint_every: int = 4  # loop iterations between checkpoint writes
    checkpoint_generations: int = 2  # rotated .bakN generations kept per checkpoint
    resume: bool = False  # continue from checkpoint_path if it exists
    fault_plan: Optional[FaultPlan] = None  # deterministic fault injection (tests)
    supervise: bool = False  # attach the execution Supervisor (watchdog + reaper)
    heartbeat_timeout: float = 10.0  # seconds before a heartbeat declares the pool hung
    max_pool_restarts: int = 1  # fresh pools the supervisor may respawn per run

    def __post_init__(self) -> None:
        if self.time_budget is not None and self.time_budget < 0:
            raise ValueError("time_budget must be >= 0 (or None)")
        if self.subproblem_timeout is not None and self.subproblem_timeout <= 0:
            raise ValueError("subproblem_timeout must be > 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_generations < 1:
            raise ValueError("checkpoint_generations must be >= 1")
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume requires checkpoint_path")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")

    def make_supervisor(self):
        """A fresh :class:`~repro.runtime.supervisor.Supervisor`, or ``None``.

        ``None`` unless ``supervise`` is set — the classic degrade-only
        runtime stays the default and pays zero watchdog overhead.
        """
        if not self.supervise:
            return None
        from ..runtime.supervisor import Supervisor  # late: keep import cheap

        return Supervisor(
            heartbeat_timeout=self.heartbeat_timeout,
            max_pool_restarts=self.max_pool_restarts,
        )

    def make_budget(self) -> RunBudget:
        """A fresh :class:`RunBudget` for one run under this config."""
        return RunBudget(self.time_budget)


@dataclass(frozen=True)
class FilterConfig:
    """Parameters of the filtering phase (paper Section 2)."""

    alpha: float = 1.0  # BFS tree grows to alpha * U
    f: float = 10.0  # core is the first alpha * U / f of the tree
    coverage: int = 2  # C: number of natural-cut sweeps
    tau: int = 5  # tiny-cut tau-merge threshold
    detect_tiny_cuts: bool = True
    detect_natural_cuts: bool = True
    chunk_large_paths: bool = False  # pass-2 extension (off = paper behavior)
    flow_solver: str = "push_relabel"
    # which CutEngine chooses the natural cut per subproblem: "push_relabel"
    # (paper's min cut, bit-identical default) or "flowcutter" (Pareto
    # enumeration; see docs/CUT_ENGINES.md and repro.cutengine)
    cut_engine: str = "push_relabel"
    executor: str = "serial"
    workers: Optional[int] = None
    # memoize min-cut solves by network fingerprint (bit-identical reuse;
    # see src/repro/perf/cut_cache.py)
    use_cut_cache: bool = True
    cut_cache_entries: int = 65536

    def __post_init__(self) -> None:
        if not (0 < self.alpha <= 1):
            raise ValueError("alpha must be in (0, 1] to guarantee fragment sizes <= U")
        if self.f <= 1:
            raise ValueError("f must be > 1")
        if self.coverage < 1:
            raise ValueError("coverage must be >= 1")
        if self.cut_cache_entries < 1:
            raise ValueError("cut_cache_entries must be >= 1")
        # late import: the registry package is lightweight and must not
        # import configs back (engines only see CutProblem instances)
        from ..cutengine import available_engines

        if self.cut_engine not in available_engines():
            raise ValueError(
                f"cut_engine must be one of {available_engines()}, got {self.cut_engine!r}"
            )


@dataclass(frozen=True)
class AssemblyConfig:
    """Parameters of the assembly phase (paper Section 3)."""

    local_search: str = "L2+"  # one of "L2", "L2+", "L2*", "none"
    phi: int = 16  # max failures per adjacent cell pair
    multistart: int = 1  # M: greedy+LS iterations
    use_combination: bool = False  # evolutionary combination of elite pairs
    pool_capacity: Optional[int] = None  # default ceil(sqrt(M))
    # randomized greedy score parameters (paper: a = 0.03, b = 0.6)
    score_a: float = 0.03
    score_b: float = 0.6
    # combination weight perturbations p0 > p1 > p2 (paper: 5, 3, 2)
    p0: float = 5.0
    p1: float = 3.0
    p2: float = 2.0

    def __post_init__(self) -> None:
        if self.local_search not in ("L2", "L2+", "L2*", "none"):
            raise ValueError("local_search must be 'L2', 'L2+', 'L2*' or 'none'")
        if self.phi < 1:
            raise ValueError("phi must be >= 1")
        if self.multistart < 1:
            raise ValueError("multistart must be >= 1")
        if not (0 <= self.score_a <= 1 and 0 <= self.score_b <= 1):
            raise ValueError("score_a and score_b must be in [0, 1]")
        if not (self.p0 >= self.p1 >= self.p2 > 0):
            raise ValueError("perturbation factors must satisfy p0 >= p1 >= p2 > 0")


@dataclass(frozen=True)
class PunchConfig:
    """Full PUNCH configuration: filtering + assembly + seeding."""

    filter: FilterConfig = field(default_factory=FilterConfig)
    assembly: AssemblyConfig = field(default_factory=AssemblyConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    # None = legacy single-process path; set to enable the worker pool
    parallel: Optional[ParallelConfig] = None
    seed: Optional[int] = None

    def with_seed(self, seed: int) -> "PunchConfig":
        """Copy of this config with a different seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class BalancedConfig:
    """Balanced-partition driver configuration (paper Sections 4-5)."""

    epsilon: float = 0.03  # tolerated imbalance
    strong: bool = False  # strong PUNCH: ceil(256/k) starts instead of ceil(32/k)
    starts_numerator: Optional[int] = None  # override 32/256 if set
    rebalance_attempts: int = 50  # rebalances per unbalanced solution
    filter_divisor: int = 3  # filtering runs with U = U*/3
    phi_unbalanced: int = 512
    phi_rebalance: int = 128
    filter: FilterConfig = field(default_factory=FilterConfig)
    assembly: AssemblyConfig = field(default_factory=AssemblyConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    # None = legacy single-process path; set to enable the worker pool
    parallel: Optional[ParallelConfig] = None
    seed: Optional[int] = None

    @property
    def numerator(self) -> int:
        """Multistart numerator: ceil(numerator / k) unbalanced starts."""
        if self.starts_numerator is not None:
            return self.starts_numerator
        return 256 if self.strong else 32

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if self.filter_divisor < 1:
            raise ValueError("filter_divisor must be >= 1")
