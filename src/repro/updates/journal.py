"""Dirty-region tracking and update telemetry.

:func:`compute_dirty_region` maps a materialized delta batch to the set of
partition cells whose structure (or metric) it touches, expanded by a
bounded BFS *halo* over the cell-adjacency graph.  The halo gives the
localized repair room to move boundaries between a touched cell and its
neighbors — the same localization argument the CCH line of work makes for
metric/topology updates (PAPERS.md) — while keeping the repaired region a
small fraction of the graph.

:class:`DirtyRegionJournal` records one entry per applied batch (latency,
dirty-cell count, cut-cache reuse, fallbacks) and aggregates them into the
``run_report()["updates"]`` section.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.partition import Partition
from .deltas import MutatedGraph

__all__ = ["DirtyRegion", "UpdateRecord", "DirtyRegionJournal", "compute_dirty_region"]


@dataclass(frozen=True)
class DirtyRegion:
    """Cells and vertices a delta batch invalidates.

    ``cells`` are *old* partition cell ids (ascending); ``vertices`` are
    their members plus any batch-appended vertices, in ascending new-graph
    ids.  ``seed_cells`` is the pre-halo touched set (for telemetry).
    """

    cells: np.ndarray
    seed_cells: np.ndarray
    vertices: np.ndarray
    halo: int

    @property
    def num_cells(self) -> int:
        return len(self.cells)


def _cell_adjacency(partition: Partition) -> Dict[int, List[int]]:
    """Sorted neighbor-cell lists from the partition's cut edges."""
    g = partition.graph
    labels = partition.labels
    cut = partition.cut_edges
    cu = labels[g.edge_u[cut]]
    cv = labels[g.edge_v[cut]]
    adj: Dict[int, Set[int]] = {}
    for a, b in zip(cu.tolist(), cv.tolist()):
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return {c: sorted(s) for c, s in adj.items()}


def compute_dirty_region(
    partition: Partition, mutated: MutatedGraph, halo: int = 1
) -> DirtyRegion:
    """Touched cells of ``mutated``'s edits, plus a ``halo``-hop BFS ring.

    The seed set is the cells of every touched pre-existing vertex; the
    halo expands it ``halo`` hops through the cell-adjacency graph.  The
    dirty vertex set is every member of a dirty cell plus the batch's new
    vertices (which have no cell yet).
    """
    if halo < 0:
        raise ValueError("halo must be >= 0")
    labels = partition.labels
    touched = mutated.touched_vertices
    seed = np.unique(labels[touched]) if len(touched) else np.empty(0, dtype=np.int64)

    dirty = set(seed.tolist())
    if halo and dirty:
        adj = _cell_adjacency(partition)
        frontier = sorted(dirty)
        for _ in range(halo):
            nxt: List[int] = []
            for c in frontier:
                for nb in adj.get(c, ()):
                    if nb not in dirty:
                        dirty.add(nb)
                        nxt.append(nb)
            if not nxt:
                break
            frontier = sorted(nxt)

    cells = np.asarray(sorted(dirty), dtype=np.int64)
    member_chunks = [partition.members_of(int(c)) for c in cells.tolist()]
    member_chunks.append(mutated.new_vertices)
    vertices = np.unique(np.concatenate(member_chunks)) if member_chunks else np.empty(
        0, dtype=np.int64
    )
    return DirtyRegion(cells=cells, seed_cells=seed, vertices=vertices.astype(np.int64), halo=halo)


@dataclass
class UpdateRecord:
    """Telemetry of one applied delta batch."""

    seq: int
    kind: str  # "weight" | "structural"
    mode: str  # "patched" | "rebuilt"
    num_deltas: int
    dirty_cells: int
    seed_cells: int
    dirty_vertices: int
    dirty_fraction: float
    latency_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    fallback: bool = False
    fallback_reason: str = ""
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def cache_reuse_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else 0.0


@dataclass
class DirtyRegionJournal:
    """Append-only log of applied updates with an aggregated report."""

    records: List[UpdateRecord] = field(default_factory=list)

    def append(self, record: UpdateRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def last(self) -> Optional[UpdateRecord]:
        return self.records[-1] if self.records else None

    def report(self) -> dict:
        """The ``run_report()["updates"]`` section.

        Aggregates update latency, dirty-cell counts, cut-cache reuse, and
        fallback counts across every applied batch.
        """
        recs = self.records
        n = len(recs)
        if not n:
            return {"updates": 0}
        lat = sorted(r.latency_s for r in recs)
        hits = sum(r.cache_hits for r in recs)
        misses = sum(r.cache_misses for r in recs)
        return {
            "updates": n,
            "weight_updates": sum(1 for r in recs if r.kind == "weight"),
            "structural_updates": sum(1 for r in recs if r.kind == "structural"),
            "fallbacks": sum(1 for r in recs if r.fallback),
            "dirty_cells_total": sum(r.dirty_cells for r in recs),
            "dirty_cells_mean": sum(r.dirty_cells for r in recs) / n,
            "dirty_fraction_mean": sum(r.dirty_fraction for r in recs) / n,
            "latency_s_total": sum(lat),
            "latency_s_median": lat[n // 2] if n % 2 else 0.5 * (lat[n // 2 - 1] + lat[n // 2]),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_reuse_rate": (hits / (hits + misses)) if (hits + misses) else 0.0,
            "last": asdict(recs[-1]),
        }
