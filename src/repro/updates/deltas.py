"""Graph delta model for incremental repartitioning.

A :class:`DeltaBatch` is an ordered collection of primitive graph edits —
edge reweights, edge additions/removals, and vertex additions — the kinds
of change a live road network actually sees (traffic reweighting, road
closures, new subdivisions).  :func:`apply_delta_batch` materializes the
batch into a fresh :class:`~repro.graph.graph.Graph` (graphs are immutable
by contract) together with the bookkeeping the incremental engine needs:

- ``eid_map`` — old undirected edge id → new edge id (``-1`` for removed
  edges), so metric-independent structures keyed by edge id
  (:class:`~repro.crp.overlay.CellTopology` half-edge hooks) can be
  remapped instead of rebuilt;
- ``touched_vertices`` — every *pre-existing* vertex incident to a
  structural edit or a reweighted edge, the seed set of the dirty region;
- ``reweighted_eids`` — old ids of reweighted (surviving) edges, which is
  all the overlay patcher needs for the weight-only fast path.

Vertex ids are append-only: a :class:`VertexAdd` receives id ``n``, ``n+1``
… in batch order, and no existing vertex ever changes id.  Edge ids are
*not* stable — the rebuilt graph renumbers canonically — which is exactly
why ``eid_map`` exists.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple, Union

import numpy as np

from ..graph.builder import build_graph
from ..graph.graph import Graph

__all__ = [
    "EdgeReweight",
    "EdgeAdd",
    "EdgeRemove",
    "VertexAdd",
    "Delta",
    "DeltaBatch",
    "MutatedGraph",
    "apply_delta_batch",
    "synthetic_delta_batch",
    "deltas_from_json",
    "deltas_to_json",
]


@dataclass(frozen=True)
class EdgeReweight:
    """Change the weight of an existing edge ``{u, v}`` to ``weight``."""

    u: int
    v: int
    weight: float


@dataclass(frozen=True)
class EdgeAdd:
    """Insert a new edge ``{u, v}`` with ``weight`` (must not exist)."""

    u: int
    v: int
    weight: float


@dataclass(frozen=True)
class EdgeRemove:
    """Delete the existing edge ``{u, v}``."""

    u: int
    v: int


@dataclass(frozen=True)
class VertexAdd:
    """Append a new vertex (id ``n + position-in-batch``) with ``edges``.

    ``edges`` connect the new vertex to *pre-existing* vertices (or to
    vertices added earlier in the same batch).  A vertex with no edges
    forms its own connected component — and its own cell.
    """

    size: int = 1
    edges: Tuple[Tuple[int, float], ...] = ()


Delta = Union[EdgeReweight, EdgeAdd, EdgeRemove, VertexAdd]


@dataclass(frozen=True)
class DeltaBatch:
    """One atomic batch of graph edits, applied together."""

    deltas: Tuple[Delta, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))

    def __len__(self) -> int:
        return len(self.deltas)

    @property
    def weight_only(self) -> bool:
        """True iff the batch never changes the graph's structure."""
        return all(isinstance(d, EdgeReweight) for d in self.deltas)

    @property
    def num_vertex_adds(self) -> int:
        """Number of vertices the batch appends."""
        return sum(1 for d in self.deltas if isinstance(d, VertexAdd))


@dataclass
class MutatedGraph:
    """Result of materializing a :class:`DeltaBatch` against a graph.

    ``eid_map[e_old]`` is the new id of surviving edge ``e_old`` (``-1``
    when removed); ``touched_vertices`` are pre-existing vertices incident
    to any edit; ``new_vertices`` are the appended vertex ids in the new
    graph; ``reweighted_eids`` are *old* ids of reweighted edges.
    """

    graph: Graph
    eid_map: np.ndarray
    touched_vertices: np.ndarray
    new_vertices: np.ndarray
    reweighted_eids: np.ndarray
    structural: bool
    weights_changed: bool = field(default=True)
    # total weight of batch-added edges: an upper bound on the unavoidable
    # cut-cost increase, used by the repair quality guard
    added_edge_weight: float = field(default=0.0)


def _edge_lookup(g: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted canonical keys of ``g``'s edges plus the matching edge ids."""
    keys = g.edge_u.astype(np.int64) * np.int64(max(g.n, 1)) + g.edge_v
    order = np.argsort(keys, kind="stable")
    return keys[order], order.astype(np.int64)


def _find_edge(g: Graph, sorted_keys: np.ndarray, key_order: np.ndarray, u: int, v: int) -> int:
    """Edge id of ``{u, v}`` in ``g``, or ``-1`` when absent."""
    lo, hi = (u, v) if u < v else (v, u)
    key = np.int64(lo) * np.int64(max(g.n, 1)) + np.int64(hi)
    pos = int(np.searchsorted(sorted_keys, key))
    if pos < len(sorted_keys) and sorted_keys[pos] == key:
        return int(key_order[pos])
    return -1


def apply_delta_batch(g: Graph, batch: DeltaBatch) -> MutatedGraph:
    """Materialize ``batch`` against ``g`` into a fresh graph + bookkeeping.

    Raises ``ValueError`` on inconsistent edits: reweighting or removing a
    non-existent edge, adding a duplicate edge, endpoints out of range,
    non-positive weights, or self-loops.  The batch is validated in order,
    so the error names the first offending delta.
    """
    if not len(batch):
        raise ValueError("empty delta batch")
    sorted_keys, key_order = _edge_lookup(g)

    n2 = g.n
    ewgt = g.ewgt.copy()
    removed = np.zeros(g.m, dtype=bool)
    add_u: List[int] = []
    add_v: List[int] = []
    add_w: List[float] = []
    new_sizes: List[int] = []
    touched: List[int] = []
    reweighted: List[int] = []
    # canonical (u, v) pairs edited in this batch, to reject duplicates
    batch_edits: Dict[Tuple[int, int], str] = {}
    structural = False

    def _check_endpoint(x: int, limit: int, what: str) -> None:
        if not (0 <= x < limit):
            raise ValueError(f"{what}: vertex {x} out of range for n={limit}")

    for i, d in enumerate(batch.deltas):
        where = f"delta #{i}"
        if isinstance(d, VertexAdd):
            structural = True
            if d.size <= 0:
                raise ValueError(f"{where}: vertex size must be positive")
            vid = n2
            n2 += 1
            new_sizes.append(int(d.size))
            for u, w in d.edges:
                _check_endpoint(int(u), vid, where)
                if w <= 0:
                    raise ValueError(f"{where}: edge weights must be positive")
                add_u.append(int(u))
                add_v.append(vid)
                add_w.append(float(w))
                if u < g.n:
                    touched.append(int(u))
            continue

        u, v = int(d.u), int(d.v)
        if u == v:
            raise ValueError(f"{where}: self-loop {{{u}, {v}}} not allowed")
        _check_endpoint(u, n2, where)
        _check_endpoint(v, n2, where)
        pair = (u, v) if u < v else (v, u)
        if pair in batch_edits:
            raise ValueError(
                f"{where}: edge {pair} already edited ({batch_edits[pair]}) in this batch"
            )
        # edges touching batch-new vertices are only reachable via VertexAdd
        eid = -1
        if u < g.n and v < g.n:
            eid = _find_edge(g, sorted_keys, key_order, u, v)

        if isinstance(d, EdgeReweight):
            if eid < 0:
                raise ValueError(f"{where}: cannot reweight missing edge {pair}")
            if d.weight <= 0:
                raise ValueError(f"{where}: edge weights must be positive")
            batch_edits[pair] = "reweight"
            ewgt[eid] = float(d.weight)
            reweighted.append(eid)
            touched.append(u)
            touched.append(v)
        elif isinstance(d, EdgeRemove):
            if eid < 0:
                raise ValueError(f"{where}: cannot remove missing edge {pair}")
            batch_edits[pair] = "remove"
            structural = True
            removed[eid] = True
            touched.append(u)
            touched.append(v)
        elif isinstance(d, EdgeAdd):
            if eid >= 0:
                raise ValueError(f"{where}: edge {pair} already exists (use EdgeReweight)")
            if d.weight <= 0:
                raise ValueError(f"{where}: edge weights must be positive")
            batch_edits[pair] = "add"
            structural = True
            add_u.append(u)
            add_v.append(v)
            add_w.append(float(d.weight))
            if u < g.n:
                touched.append(u)
            if v < g.n:
                touched.append(v)
        else:  # pragma: no cover - exhaustive by Delta union
            raise TypeError(f"{where}: unknown delta type {type(d).__name__}")

    keep = ~removed
    all_u = np.concatenate([g.edge_u[keep].astype(np.int64), np.asarray(add_u, dtype=np.int64)])
    all_v = np.concatenate([g.edge_v[keep].astype(np.int64), np.asarray(add_v, dtype=np.int64)])
    all_w = np.concatenate([ewgt[keep], np.asarray(add_w, dtype=np.float64)])
    sizes = np.concatenate([g.vsize, np.asarray(new_sizes, dtype=np.int64)])
    coords = g.coords if (g.coords is not None and n2 == g.n) else None
    g2 = build_graph(n2, all_u, all_v, weights=all_w, sizes=sizes, coords=coords)

    # old edge id -> new edge id (build_graph numbers edges by sorted
    # canonical key, and the surviving edge set is simple, so the lookup
    # is an exact searchsorted)
    eid_map = np.full(g.m, -1, dtype=np.int64)
    if g.m:
        surviving = np.flatnonzero(keep)
        old_keys = g.edge_u[surviving].astype(np.int64) * np.int64(n2) + g.edge_v[surviving]
        new_keys = g2.edge_u.astype(np.int64) * np.int64(n2) + g2.edge_v
        pos = np.searchsorted(new_keys, old_keys)
        if len(surviving) and not np.array_equal(new_keys[pos], old_keys):
            raise AssertionError("edge id remap failed: surviving edge missing from rebuild")
        eid_map[surviving] = pos

    return MutatedGraph(
        graph=g2,
        eid_map=eid_map,
        touched_vertices=np.unique(np.asarray(touched, dtype=np.int64)),
        new_vertices=np.arange(g.n, n2, dtype=np.int64),
        reweighted_eids=np.asarray(sorted(set(reweighted)), dtype=np.int64),
        structural=structural,
        weights_changed=bool(reweighted) or structural,
        added_edge_weight=float(sum(add_w)),
    )


# ---------------------------------------------------------------------------
# Synthetic batches (benchmarks, CLI demos, property tests)
# ---------------------------------------------------------------------------


def _local_edge_cluster(g: Graph, center: int, count: int) -> List[int]:
    """Up to ``count`` edge ids collected by BFS outward from ``center``.

    Models a realistic, spatially clustered update (a closed road segment,
    a congested neighborhood) rather than uniformly random edits.
    """
    seen_v = {int(center)}
    seen_e: List[int] = []
    seen_e_set: Set[int] = set()
    frontier = [int(center)]
    while frontier and len(seen_e) < count:
        nxt: List[int] = []
        for v in frontier:
            lo, hi = int(g.xadj[v]), int(g.xadj[v + 1])
            for idx in range(lo, hi):
                e = int(g.eid[idx])
                if e not in seen_e_set:
                    seen_e_set.add(e)
                    seen_e.append(e)
                    if len(seen_e) >= count:
                        return seen_e
                u = int(g.adjncy[idx])
                if u not in seen_v:
                    seen_v.add(u)
                    nxt.append(u)
        frontier = nxt
    return seen_e


def synthetic_delta_batch(
    g: Graph,
    kind: str = "reweight",
    count: int = 10,
    seed: int = 0,
    clusters: int = 1,
) -> DeltaBatch:
    """A seeded, locally clustered delta batch for benchmarks and demos.

    ``kind`` is ``"reweight"`` (scale clustered edge weights), ``"mixed"``
    (remove some clustered edges — keeping the graph connected is *not*
    guaranteed — add shortcut edges nearby, and append one new vertex), or
    ``"grow"`` (vertex additions only).  Deterministic in ``seed``.
    """
    if g.m == 0:
        raise ValueError("cannot build a delta batch on an edgeless graph")
    rng = np.random.default_rng(seed)
    per_cluster = max(1, count // max(1, clusters))
    eids: List[int] = []
    for _ in range(max(1, clusters)):
        center = int(rng.integers(0, g.n))
        for e in _local_edge_cluster(g, center, per_cluster):
            if e not in eids:
                eids.append(e)
        if len(eids) >= count:
            break
    eids = eids[:count]

    deltas: List[Delta] = []
    if kind == "reweight":
        factors = rng.integers(2, 6, size=len(eids))
        for e, f in zip(eids, factors.tolist()):
            u, v = g.edge_endpoints(e)
            deltas.append(EdgeReweight(u, v, float(g.ewgt[e]) * float(f)))
    elif kind == "mixed":
        third = max(1, len(eids) // 3)
        removable = eids[:third]
        reweight = eids[third : 2 * third]
        shortcut_src = eids[2 * third :] or eids[:1]
        for e in removable:
            u, v = g.edge_endpoints(e)
            deltas.append(EdgeRemove(u, v))
        for e in reweight:
            u, v = g.edge_endpoints(e)
            deltas.append(EdgeReweight(u, v, float(g.ewgt[e]) * 2.0))
        edited = {tuple(sorted(g.edge_endpoints(e))) for e in removable + reweight}
        skeys, korder = _edge_lookup(g)
        for e in shortcut_src:
            u, v = g.edge_endpoints(e)
            # shortcut between u and a vertex two hops out, if novel
            for cand in g.neighbors(v).tolist():
                pair = (u, cand) if u < cand else (cand, u)
                if cand != u and pair not in edited and _find_edge(g, skeys, korder, u, cand) < 0:
                    edited.add(pair)
                    deltas.append(EdgeAdd(u, cand, float(g.ewgt[e]) + 1.0))
                    break
        anchor_e = eids[0]
        au, av = g.edge_endpoints(anchor_e)
        deltas.append(VertexAdd(size=1, edges=((au, 1.0), (av, 2.0))))
    elif kind == "grow":
        for e in eids:
            u, v = g.edge_endpoints(e)
            deltas.append(VertexAdd(size=1, edges=((u, 1.0), (v, 1.0))))
    else:
        raise ValueError(f"unknown synthetic batch kind {kind!r}")
    return DeltaBatch(tuple(deltas))


# ---------------------------------------------------------------------------
# JSON round-trip (CLI)
# ---------------------------------------------------------------------------


def deltas_to_json(batch: DeltaBatch) -> str:
    """Serialize a batch as a JSON array of op records."""
    out: List[dict] = []
    for d in batch.deltas:
        if isinstance(d, EdgeReweight):
            out.append({"op": "reweight", "u": d.u, "v": d.v, "w": d.weight})
        elif isinstance(d, EdgeAdd):
            out.append({"op": "add", "u": d.u, "v": d.v, "w": d.weight})
        elif isinstance(d, EdgeRemove):
            out.append({"op": "remove", "u": d.u, "v": d.v})
        elif isinstance(d, VertexAdd):
            out.append(
                {"op": "add_vertex", "size": d.size, "edges": [[u, w] for u, w in d.edges]}
            )
    return json.dumps(out, indent=2)


def deltas_from_json(text: str) -> DeltaBatch:
    """Parse a JSON array of op records into a :class:`DeltaBatch`."""
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("delta JSON must be an array of op records")
    deltas: List[Delta] = []

    def _weight(i: int, rec: dict) -> float:
        w = rec.get("w", rec.get("weight"))
        if w is None:
            raise ValueError(f"record #{i}: missing 'w' (edge weight)")
        return float(w)

    for i, rec in enumerate(raw):
        op = rec.get("op")
        if op == "reweight":
            deltas.append(EdgeReweight(int(rec["u"]), int(rec["v"]), _weight(i, rec)))
        elif op == "add":
            deltas.append(EdgeAdd(int(rec["u"]), int(rec["v"]), _weight(i, rec)))
        elif op == "remove":
            deltas.append(EdgeRemove(int(rec["u"]), int(rec["v"])))
        elif op == "add_vertex":
            edges = tuple((int(u), float(w)) for u, w in rec.get("edges", []))
            deltas.append(VertexAdd(size=int(rec.get("size", 1)), edges=edges))
        else:
            raise ValueError(f"record #{i}: unknown op {op!r}")
    return DeltaBatch(tuple(deltas))
