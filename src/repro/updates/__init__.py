"""Incremental repartitioning: dirty-region updates over a live partition.

Public surface of the update engine (see ``docs/UPDATES.md``):

- :mod:`.deltas` — the graph delta model (:class:`DeltaBatch`,
  :func:`apply_delta_batch`, synthetic/JSON helpers);
- :mod:`.journal` — dirty-region computation and per-update telemetry
  (:class:`DirtyRegionJournal`);
- :mod:`.engine` — the :class:`IncrementalUpdater` repair driver with the
  quality-guarded full-rebuild fallback.

Overlay patching lives with the overlay itself
(:func:`repro.crp.overlay.patch_overlay` /
:func:`repro.crp.overlay.patch_overlay_weights`), and the serving
integration in :meth:`repro.serve.engine.ServingEngine.apply_update`.
"""

from .deltas import (
    DeltaBatch,
    EdgeAdd,
    EdgeRemove,
    EdgeReweight,
    MutatedGraph,
    VertexAdd,
    apply_delta_batch,
    deltas_from_json,
    deltas_to_json,
    synthetic_delta_batch,
)
from .engine import IncrementalUpdater, UpdateConfig, UpdateResult
from .journal import DirtyRegion, DirtyRegionJournal, UpdateRecord, compute_dirty_region

__all__ = [
    "DeltaBatch",
    "EdgeAdd",
    "EdgeRemove",
    "EdgeReweight",
    "VertexAdd",
    "MutatedGraph",
    "apply_delta_batch",
    "synthetic_delta_batch",
    "deltas_from_json",
    "deltas_to_json",
    "DirtyRegion",
    "DirtyRegionJournal",
    "UpdateRecord",
    "compute_dirty_region",
    "IncrementalUpdater",
    "UpdateConfig",
    "UpdateResult",
]
