"""Incremental repartitioning: repair a PUNCH partition under graph deltas.

The paper's pipeline is batch-only — any edge change forces a full
filter→assembly rerun.  :class:`IncrementalUpdater` makes the partition
*live*: a :class:`~repro.updates.deltas.DeltaBatch` is materialized, its
dirty region computed (touched cells + BFS halo,
:func:`~repro.updates.journal.compute_dirty_region`), and only that region
is re-filtered and re-assembled — natural-cut detection and multistart
local search run on the induced dirty subgraph, reusing
:class:`~repro.perf.cut_cache.CutCache` entries whose contracted-network
fingerprints the deltas did not touch.  Clean cells keep their labels,
members, and (downstream) their overlay clique rows.

Correctness contract
--------------------
- **Weight-only batches** never change the partition; the patched overlay
  (:func:`~repro.crp.overlay.patch_overlay_weights`) is bit-identical to a
  from-scratch ``customize_overlay`` on the new metric.
- **Structural batches** produce a partition that satisfies every
  sanitizer invariant (size bound, size/cost accounting, connected cells),
  and the patched overlay answers queries exactly equal to a fresh build
  on the mutated graph.  Both are property-tested
  (``tests/test_property_updates.py``).

A *quality guard* bounds repair-induced degradation: when the repaired cut
exceeds ``quality_ratio`` × (previous cost + weight of batch-added edges),
or the dirty region exceeds ``max_dirty_fraction`` of the graph, the
updater falls back to a full PUNCH rebuild of the mutated graph — slower
but never worse than batch recomputation.  Fallbacks are counted in the
journal and surface through ``run_report()["updates"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..core.config import PunchConfig
from ..core.partition import Partition
from ..core.punch import run_punch
from ..core.result import PunchResult, sanitizer_section
from ..graph.graph import Graph
from ..graph.subgraph import induced_subgraph
from ..lint.sanitizer import get_sanitizer
from ..perf.cut_cache import CutCache
from .deltas import DeltaBatch, MutatedGraph, apply_delta_batch
from .journal import DirtyRegionJournal, UpdateRecord, compute_dirty_region

__all__ = ["UpdateConfig", "UpdateResult", "IncrementalUpdater"]


@dataclass(frozen=True)
class UpdateConfig:
    """Tunables of the incremental update engine.

    ``halo`` is the BFS depth of the dirty-region expansion over the
    cell-adjacency graph; ``quality_ratio`` is the repair degradation
    bound (fall back to a full rebuild when the repaired cut exceeds
    ``quality_ratio * (cost_before + added edge weight)``);
    ``max_dirty_fraction`` caps the dirty region's share of the graph
    before localized repair stops paying and the updater rebuilds.
    """

    halo: int = 1
    quality_ratio: float = 1.5
    max_dirty_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.halo < 0:
            raise ValueError("halo must be >= 0")
        if self.quality_ratio < 1.0:
            raise ValueError("quality_ratio must be >= 1 (1 = no degradation allowed)")
        if not (0.0 < self.max_dirty_fraction <= 1.0):
            raise ValueError("max_dirty_fraction must be in (0, 1]")


@dataclass
class UpdateResult:
    """Outcome of one applied batch.

    ``reusable`` maps each *new* cell id whose structure (members,
    internal edges, boundary, internal metric) is untouched to its *old*
    cell id — exactly the cells whose overlay clique rows can be copied
    instead of recomputed.  ``dirty_cells`` are the new cell ids that must
    be rebuilt.  ``eid_map`` remaps old undirected edge ids (``-1`` =
    removed).
    """

    graph: Graph
    partition: Partition
    mutated: MutatedGraph
    record: UpdateRecord
    mode: str  # "patched" | "rebuilt"
    reusable: Dict[int, int]
    dirty_cells: List[int]

    @property
    def structural(self) -> bool:
        return self.mutated.structural

    @property
    def eid_map(self) -> np.ndarray:
        return self.mutated.eid_map


class IncrementalUpdater:
    """Stateful repair engine over one evolving graph + partition.

    Owns the current :class:`~repro.core.partition.Partition`, a
    persistent :class:`~repro.perf.cut_cache.CutCache` shared across every
    localized re-filtering (entries whose fingerprints the deltas did not
    touch hit again), and the :class:`DirtyRegionJournal`.
    """

    def __init__(
        self,
        partition: Partition,
        U: int,
        config: Optional[UpdateConfig] = None,
        punch_config: Optional[PunchConfig] = None,
    ) -> None:
        if U < int(partition.graph.vsize.max(initial=1)):
            raise ValueError("U must be at least the largest vertex size")
        self.partition = partition
        self.graph = partition.graph
        self.U = int(U)
        self.config = config if config is not None else UpdateConfig()
        self.punch_config = punch_config if punch_config is not None else PunchConfig()
        self.cut_cache: Optional[CutCache] = (
            CutCache(self.punch_config.filter.cut_cache_entries)
            if self.punch_config.filter.use_cut_cache
            else None
        )
        self.journal = DirtyRegionJournal()
        # PunchResult of the most recent repair/rebuild run (None for
        # weight-only updates): checkpoint-recovery and supervisor
        # telemetry of the inner run, for tests and debugging
        self.last_punch_result: Optional[PunchResult] = None
        self._seq = 0

    # -- internals ---------------------------------------------------------

    def _derived_config(self) -> PunchConfig:
        """Per-update deterministic seed derivation (repair RNG isolation)."""
        base = self.punch_config.seed if self.punch_config.seed is not None else 0
        return self.punch_config.with_seed(int(base) + 1_000_003 * (self._seq + 1))

    def _cache_counters(self) -> "tuple[int, int]":
        if self.cut_cache is None:
            return (0, 0)
        return self.cut_cache.counters()

    def _full_rebuild(self, g2: Graph) -> Partition:
        res = run_punch(g2, self.U, self._derived_config(), cut_cache=self.cut_cache)
        self.last_punch_result = res
        return res.partition

    def _localized_repair(
        self, g2: Graph, dirty_vertices: np.ndarray
    ) -> "tuple[np.ndarray, int]":
        """Repartition the dirty region; returns ``(labels2, num_sub_cells)``.

        Clean vertices keep their old labels; dirty-region vertices (and
        batch-new vertices) get fresh labels past the old cell-id range, so
        the dense remap keeps clean cells in ascending old order followed
        by the repaired cells.
        """
        K = self.partition.num_cells
        sub, sub_to_g, _ = induced_subgraph(g2, dirty_vertices)
        if sub.m == 0:
            # edgeless region (isolated vertices): every vertex is a cell;
            # run_punch's per-component driver cannot represent this case
            sub_labels = np.arange(sub.n, dtype=np.int64)
            num_sub_cells = sub.n
        else:
            res = run_punch(sub, self.U, self._derived_config(), cut_cache=self.cut_cache)
            self.last_punch_result = res
            sub_labels = res.partition.labels
            num_sub_cells = res.partition.num_cells
        labels2 = np.empty(g2.n, dtype=np.int64)
        labels2[: self.graph.n] = self.partition.labels
        labels2[sub_to_g] = sub_labels + K
        return labels2, num_sub_cells

    # -- public API --------------------------------------------------------

    def apply(self, batch: DeltaBatch) -> UpdateResult:
        """Apply one delta batch; returns the repaired state.

        Weight-only batches keep the partition (CRP's customization
        contract); structural batches run the localized repair with the
        quality-guarded full-rebuild fallback.  The updater's own graph /
        partition advance to the result.
        """
        t0 = perf_counter()
        mut = apply_delta_batch(self.graph, batch)
        h0, m0 = self._cache_counters()
        seq = self._seq

        if not mut.structural:
            result = self._apply_weight_only(mut, seq, len(batch))
        else:
            result = self._apply_structural(mut, seq, len(batch))

        h1, m1 = self._cache_counters()
        result.record.cache_hits = h1 - h0
        result.record.cache_misses = m1 - m0
        result.record.latency_s = perf_counter() - t0
        self.journal.append(result.record)
        self.graph = result.graph
        self.partition = result.partition
        self._seq = seq + 1
        return result

    def _apply_weight_only(self, mut: MutatedGraph, seq: int, num_deltas: int) -> UpdateResult:
        g2 = mut.graph
        labels = self.partition.labels
        part2 = Partition(g2, labels)
        # overlay-dirty cells: both endpoints of a reweighted edge in the
        # same cell => that cell's clique distances may change
        rew = mut.reweighted_eids
        lu = labels[self.graph.edge_u[rew]]
        lv = labels[self.graph.edge_v[rew]]
        dirty = np.unique(lu[lu == lv])
        dirty_set = set(dirty.tolist())
        reusable = {c: c for c in range(part2.num_cells) if c not in dirty_set}
        record = UpdateRecord(
            seq=seq,
            kind="weight",
            mode="patched",
            num_deltas=num_deltas,
            dirty_cells=len(dirty_set),
            seed_cells=len(dirty_set),
            dirty_vertices=0,
            dirty_fraction=len(dirty_set) / max(1, part2.num_cells),
            latency_s=0.0,
            cost_before=self.partition.cost,
            cost_after=part2.cost,
        )
        return UpdateResult(
            graph=g2,
            partition=part2,
            mutated=mut,
            record=record,
            mode="patched",
            reusable=reusable,
            dirty_cells=sorted(dirty_set),
        )

    def _apply_structural(self, mut: MutatedGraph, seq: int, num_deltas: int) -> UpdateResult:
        g2 = mut.graph
        cfg = self.config
        region = compute_dirty_region(self.partition, mut, halo=cfg.halo)
        dirty_fraction = len(region.vertices) / max(1, g2.n)
        K = self.partition.num_cells
        clean_mask = np.ones(K, dtype=bool)
        clean_mask[region.cells] = False

        fallback = False
        reason = ""
        mode = "patched"
        labels2: Optional[np.ndarray] = None
        num_sub_cells = 0

        if dirty_fraction > cfg.max_dirty_fraction:
            fallback = True
            reason = (
                f"dirty region {dirty_fraction:.2f} of graph exceeds "
                f"max_dirty_fraction={cfg.max_dirty_fraction}"
            )
        else:
            labels2, num_sub_cells = self._localized_repair(g2, region.vertices)
            repaired = Partition(g2, labels2)
            bound = cfg.quality_ratio * (self.partition.cost + mut.added_edge_weight)
            if bound > 0 and repaired.cost > bound:
                fallback = True
                reason = (
                    f"repaired cut {repaired.cost:g} exceeds quality bound {bound:g}"
                )
                labels2 = None

        if fallback:
            mode = "rebuilt"
            part2 = self._full_rebuild(g2)
            reusable: Dict[int, int] = {}
            dirty_cells = list(range(part2.num_cells))
        else:
            assert labels2 is not None
            part2 = Partition(g2, labels2)
            # dense remap: clean old labels (ascending) come first, repaired
            # labels (all >= K) after them — recover both sides of the map
            clean_sorted = np.flatnonzero(clean_mask)
            reusable = {
                int(new): int(old)
                for new, old in enumerate(clean_sorted.tolist())
            }
            dirty_cells = list(range(len(clean_sorted), len(clean_sorted) + num_sub_cells))

        get_sanitizer().check_partition(
            "updates.repair", g2, part2.labels, U=self.U
        )
        record = UpdateRecord(
            seq=seq,
            kind="structural",
            mode=mode,
            num_deltas=num_deltas,
            dirty_cells=len(region.cells),
            seed_cells=len(region.seed_cells),
            dirty_vertices=len(region.vertices),
            dirty_fraction=dirty_fraction,
            latency_s=0.0,
            fallback=fallback,
            fallback_reason=reason,
            cost_before=self.partition.cost,
            cost_after=part2.cost,
        )
        return UpdateResult(
            graph=g2,
            partition=part2,
            mutated=mut,
            record=record,
            mode=mode,
            reusable=reusable,
            dirty_cells=dirty_cells,
        )

    # -- reporting ---------------------------------------------------------

    def run_report(self) -> dict:
        """The ``updates`` section (plus sanitizer state when armed)."""
        return sanitizer_section({"updates": self.journal.report()})
