"""Delaunay-based planar-ish graphs with a nonuniform density field.

A complementary generator to :mod:`repro.synthetic.roadnet`: points are
sampled from a mixture of Gaussian "population blobs" over the unit square
and triangulated; long triangulation edges are pruned.  The result is a
connected, planar, locally dense / globally sparse graph — useful for tests
and for checking that PUNCH is not overfitted to the grid-city generator.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import build_graph
from ..graph.graph import Graph

__all__ = ["delaunay_graph"]


def delaunay_graph(
    n: int,
    blobs: int = 5,
    blob_std: float = 0.06,
    prune_quantile: float = 0.98,
    seed: int = 0,
) -> Graph:
    """A Delaunay triangulation of clustered random points.

    Parameters
    ----------
    n : number of points.
    blobs : number of density clusters (plus a uniform background).
    blob_std : standard deviation of each cluster.
    prune_quantile : edges longer than this length quantile are dropped
        (then connectivity is restored by re-adding the shortest dropped
        edges across components).
    seed : RNG seed.
    """
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    n_bg = max(4, n // 5)
    n_blob = n - n_bg
    centers = rng.random((blobs, 2)) * 0.8 + 0.1
    assign = rng.integers(0, blobs, size=n_blob)
    pts_blob = centers[assign] + blob_std * rng.standard_normal((n_blob, 2))
    pts = np.vstack([pts_blob, rng.random((n_bg, 2))])
    pts = np.clip(pts, 0.0, 1.0)

    tri = Delaunay(pts)
    pairs = set()
    for simplex in tri.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            pairs.add((min(a, b), max(a, b)))
    pairs = np.asarray(sorted(pairs), dtype=np.int64)
    lengths = np.hypot(
        pts[pairs[:, 0], 0] - pts[pairs[:, 1], 0],
        pts[pairs[:, 0], 1] - pts[pairs[:, 1], 1],
    )
    cutoff = np.quantile(lengths, prune_quantile)
    keep = lengths <= cutoff
    g = build_graph(n, pairs[keep, 0], pairs[keep, 1], coords=pts)

    # restore connectivity with the shortest pruned edges
    from ..graph.components import connected_components

    k, labels = connected_components(g)
    if k > 1:
        dropped = pairs[~keep]
        dlen = lengths[~keep]
        order = np.argsort(dlen)
        extra_u, extra_v = [], []
        for i in order:
            a, b = int(dropped[i, 0]), int(dropped[i, 1])
            if labels[a] != labels[b]:
                extra_u.append(a)
                extra_v.append(b)
                labels[labels == labels[b]] = labels[a]
                k -= 1
                if k == 1:
                    break
        g = build_graph(
            n,
            np.concatenate([g.edge_u, np.asarray(extra_u, dtype=np.int64)]),
            np.concatenate([g.edge_v, np.asarray(extra_v, dtype=np.int64)]),
            weights=np.concatenate([g.ewgt, np.ones(len(extra_u))]),
            coords=pts,
        )
    return g
