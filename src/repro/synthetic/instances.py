"""Named synthetic instances mirroring the paper's benchmark graphs.

Each DIMACS instance used in the paper has a scaled-down ``*_like`` analog
here (roughly 1/450 of the original vertex count, capped for pure-Python
tractability — see DESIGN.md).  The structural knobs are tuned per instance:
``asia_like`` is sparse with long corridors and few, cheap natural cuts (the
paper's asia has strikingly low cut values), ``usa_like`` has more pronounced
global natural cuts than ``europe_like`` (the paper's Table 1 observation),
and the European street networks are denser with many mid-size cities.

All instances are deterministic; ``instance(name)`` memoizes per process.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from ..graph.graph import Graph
from .roadnet import RoadNetParams, road_network

__all__ = ["INSTANCE_PARAMS", "instance", "instance_names", "table1_instances", "street_instances"]


INSTANCE_PARAMS: Dict[str, RoadNetParams] = {
    # Table 2-4 street networks (10th DIMACS challenge), scaled
    "luxembourg_like": RoadNetParams(n_target=1_500, n_cities=8, ferries=0, seed=101),
    "belgium_like": RoadNetParams(n_target=5_000, n_cities=20, ferries=0, seed=102),
    "netherlands_like": RoadNetParams(n_target=7_000, n_cities=24, ferries=1, seed=103),
    "italy_like": RoadNetParams(
        n_target=9_000, n_cities=30, ferries=2, highway_extra=0.25, seed=104
    ),
    "great_britain_like": RoadNetParams(
        n_target=11_000, n_cities=36, ferries=2, seed=105
    ),
    "germany_like": RoadNetParams(n_target=13_000, n_cities=42, seed=106),
    "asia_like": RoadNetParams(
        # sparse, corridor-dominated: few big cities, long thin highways,
        # so balanced cuts are very cheap (paper: asia's solutions are tiny)
        n_target=13_000,
        n_cities=12,
        zipf_exponent=0.4,
        highway_extra=0.05,
        highway_hops=(6, 14),
        ferries=0,
        seed=107,
    ),
    "europe_like": RoadNetParams(n_target=18_000, n_cities=52, seed=108),
    # Table 1 continental networks (9th DIMACS challenge), scaled
    "usa_like": RoadNetParams(
        # the paper notes USA contracts much harder at large U: more obvious
        # global natural cuts -> fewer, longer highways between regions
        n_target=22_000,
        n_cities=40,
        highway_extra=0.15,
        highway_hops=(4, 12),
        ferries=1,
        seed=109,
    ),
    # tiny instances for tests and quick demos
    "mini_like": RoadNetParams(n_target=600, n_cities=5, ferries=0, seed=110),
    "small_like": RoadNetParams(n_target=2_500, n_cities=10, ferries=0, seed=111),
}

#: instances used by the Table 1 reproduction (unbalanced, varying U)
TABLE1_NAMES = ["europe_like", "usa_like"]

#: instances used by the Tables 2-4 reproduction (balanced, varying k)
STREET_NAMES = [
    "luxembourg_like",
    "belgium_like",
    "netherlands_like",
    "italy_like",
    "great_britain_like",
    "germany_like",
    "asia_like",
    "europe_like",
]


def instance_names() -> List[str]:
    """Sorted names of all built-in instances."""
    return sorted(INSTANCE_PARAMS)


@lru_cache(maxsize=None)
def instance(name: str) -> Graph:
    """Build (and memoize) a named instance."""
    if name not in INSTANCE_PARAMS:
        raise KeyError(f"unknown instance {name!r}; known: {instance_names()}")
    return road_network(INSTANCE_PARAMS[name])


def table1_instances() -> Dict[str, Graph]:
    """The Table 1 instance set (name -> graph)."""
    return {name: instance(name) for name in TABLE1_NAMES}


def street_instances() -> Dict[str, Graph]:
    """The Tables 2-4 street-network set (name -> graph)."""
    return {name: instance(name) for name in STREET_NAMES}
