"""Grid-based synthetic graphs with planted separators.

Simple, fully deterministic inputs for tests and micro-benchmarks: plain
grids, grids with wall-and-corridor obstacles (planted natural cuts whose
optimal location is known), and "two dense blobs joined by a thin bridge"
instances for sanity-checking the cut detectors.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.builder import build_graph
from ..graph.graph import Graph

__all__ = ["grid_graph", "grid_with_walls", "two_blobs"]


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid; vertex ``r * cols + c``, unit sizes/weights."""
    idx = np.arange(rows * cols).reshape(rows, cols)
    right_u = idx[:, :-1].ravel()
    right_v = idx[:, 1:].ravel()
    down_u = idx[:-1, :].ravel()
    down_v = idx[1:, :].ravel()
    u = np.concatenate([right_u, down_u])
    v = np.concatenate([right_v, down_v])
    coords = np.stack(
        [np.repeat(np.arange(rows), cols), np.tile(np.arange(cols), rows)], axis=1
    ).astype(np.float64)
    return build_graph(rows * cols, u, v, coords=coords)


def grid_with_walls(
    rows: int, cols: int, wall_cols: List[int], gap_rows: List[int] | None = None
) -> Graph:
    """A grid with vertical walls pierced by small gaps.

    Every column in ``wall_cols`` has its horizontal edges (``c -> c + 1``)
    removed except at ``gap_rows`` (default: the middle row).  The gaps are
    planted natural cuts: the minimum cut separating the left of a wall from
    the right is exactly ``len(gap_rows)``.
    """
    if gap_rows is None:
        gap_rows = [rows // 2]
    gap_set = set(gap_rows)
    idx = np.arange(rows * cols).reshape(rows, cols)
    us: List[int] = []
    vs: List[int] = []
    wall_set = set(wall_cols)
    for r in range(rows):
        for c in range(cols - 1):
            if c in wall_set and r not in gap_set:
                continue
            us.append(int(idx[r, c]))
            vs.append(int(idx[r, c + 1]))
    for r in range(rows - 1):
        for c in range(cols):
            us.append(int(idx[r, c]))
            vs.append(int(idx[r + 1, c]))
    coords = np.stack(
        [np.repeat(np.arange(rows), cols), np.tile(np.arange(cols), rows)], axis=1
    ).astype(np.float64)
    return build_graph(rows * cols, np.asarray(us), np.asarray(vs), coords=coords)


def two_blobs(blob: int, bridge_len: int = 1, seed: int = 0) -> Tuple[Graph, int]:
    """Two random dense blobs of ``blob`` vertices joined by a path.

    Returns ``(graph, expected_min_cut)`` — the bridge path has unit width,
    so any natural cut separating the blobs has weight 1.
    """
    rng = np.random.default_rng(seed)
    n = 2 * blob + max(0, bridge_len - 1)
    us: List[int] = []
    vs: List[int] = []

    def dense(offset: int) -> None:
        # a connected random graph with ~4 * blob edges
        for i in range(1, blob):
            us.append(offset + i)
            vs.append(offset + int(rng.integers(0, i)))
        extra = 3 * blob
        a = rng.integers(0, blob, size=extra)
        b = rng.integers(0, blob, size=extra)
        for x, y in zip(a, b):
            if x != y:
                us.append(offset + int(x))
                vs.append(offset + int(y))

    dense(0)
    dense(blob)
    # bridge path from vertex 0 to vertex `blob`
    path = [0] + [2 * blob + i for i in range(bridge_len - 1)] + [blob]
    for a, b in zip(path[:-1], path[1:]):
        us.append(a)
        vs.append(b)
    return build_graph(n, np.asarray(us), np.asarray(vs)), 1
