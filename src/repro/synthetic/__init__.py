"""Synthetic inputs: road networks, grids, Delaunay graphs, named instances."""

from .delaunay import delaunay_graph
from .grid import grid_graph, grid_with_walls, two_blobs
from .instances import (
    INSTANCE_PARAMS,
    STREET_NAMES,
    TABLE1_NAMES,
    instance,
    instance_names,
    street_instances,
    table1_instances,
)
from .roadnet import RoadNetParams, road_network

__all__ = [
    "road_network",
    "RoadNetParams",
    "grid_graph",
    "grid_with_walls",
    "two_blobs",
    "delaunay_graph",
    "instance",
    "instance_names",
    "table1_instances",
    "street_instances",
    "INSTANCE_PARAMS",
    "TABLE1_NAMES",
    "STREET_NAMES",
]
