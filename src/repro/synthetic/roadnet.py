"""Synthetic road networks with planted natural cuts.

The paper's instances (DIMACS Europe/USA and the 10th-challenge street
networks) are continental road graphs: dense, locally grid-like urban cores
separated by sparse connections — bridges, mountain passes, ferries.  This
generator reproduces those *structural* properties at laptop scale, which is
what PUNCH exploits (see DESIGN.md, substitution table):

- **cities**: jittered grid patches with Zipf-distributed populations, some
  randomly deleted streets and occasional diagonals (average degree < 3.5,
  like real road networks);
- **rivers**: large cities are split by a river crossed by a handful of
  bridges — *intra-city* natural cuts;
- **highways**: cities are connected along a Delaunay triangulation of their
  centers (minimum spanning tree plus a random fraction of the remaining
  Delaunay edges), each highway being a chain of degree-2 vertices —
  *inter-city* natural cuts and tiny-cut fodder;
- **ferries**: optional single long edges between far-apart cities.

Everything is deterministic given ``seed``.  Vertices have unit size and
edges unit weight, matching the paper's "undirected and unweighted" setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graph.builder import build_graph
from ..graph.graph import Graph

__all__ = ["RoadNetParams", "road_network"]


@dataclass(frozen=True)
class RoadNetParams:
    """Tunable structure of a synthetic road network."""

    n_target: int = 10_000
    n_cities: Optional[int] = None  # default: ~ n_target ** 0.45
    zipf_exponent: float = 0.7  # city-population skew
    street_delete_prob: float = 0.10  # random street removals inside cities
    diagonal_prob: float = 0.05  # occasional diagonal streets
    river_min_city: int = 400  # cities at least this big get a river
    bridges_per_river: int = 2
    highway_extra: float = 0.35  # fraction of non-MST Delaunay edges kept
    highway_hops: Tuple[int, int] = (2, 8)  # intermediate vertices per highway
    ferries: int = 1  # extra long-range single-edge links
    seed: int = 0


def road_network(params: RoadNetParams | None = None, **kwargs) -> Graph:
    """Generate a road network; ``kwargs`` override ``RoadNetParams`` fields."""
    if params is None:
        params = RoadNetParams(**kwargs)
    elif kwargs:
        raise ValueError("pass either params or keyword overrides, not both")
    rng = np.random.default_rng(params.seed)

    n_cities = params.n_cities or max(2, int(round(params.n_target**0.45)))
    centers = rng.random((n_cities, 2))

    # Zipf-ish city populations summing to ~85% of the target (the rest goes
    # to highway polylines)
    ranks = np.arange(1, n_cities + 1, dtype=np.float64)
    weights = ranks ** (-params.zipf_exponent)
    weights /= weights.sum()
    city_budget = int(0.85 * params.n_target)
    city_sizes = np.maximum(4, np.round(weights * city_budget).astype(np.int64))

    us: List[int] = []
    vs: List[int] = []
    coords: List[Tuple[float, float]] = []
    city_vertices: List[np.ndarray] = []
    next_id = 0

    for c in range(n_cities):
        ids, edges, xy = _city_grid(
            int(city_sizes[c]),
            centers[c],
            rng,
            params,
            base_id=next_id,
        )
        next_id += len(ids)
        city_vertices.append(ids)
        for a, b in edges:
            us.append(a)
            vs.append(b)
        coords.extend(xy)

    # Highways over the Delaunay triangulation of city centers
    highway_pairs = _highway_pairs(centers, params, rng)
    for a, b in highway_pairs:
        pa = _border_vertex(city_vertices[a], coords, centers[b], rng)
        pb = _border_vertex(city_vertices[b], coords, centers[a], rng)
        dist = float(np.hypot(*(centers[a] - centers[b])))
        lo, hi = params.highway_hops
        hops = int(np.clip(round(lo + dist * 10), lo, hi))
        prev = pa
        for h in range(hops):
            t = (h + 1) / (hops + 1)
            x = coords[pa][0] * (1 - t) + coords[pb][0] * t
            y = coords[pa][1] * (1 - t) + coords[pb][1] * t
            jitter = 0.01 * rng.standard_normal(2)
            coords.append((x + jitter[0], y + jitter[1]))
            us.append(prev)
            vs.append(next_id)
            prev = next_id
            next_id += 1
        us.append(prev)
        vs.append(pb)

    # Ferries: direct long edges between the farthest city pairs
    if params.ferries > 0 and n_cities >= 4:
        d2 = ((centers[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        flat = np.argsort(d2, axis=None)[::-1]
        added = 0
        for idx in flat:
            a, b = divmod(int(idx), n_cities)
            if a >= b:
                continue
            pa = _border_vertex(city_vertices[a], coords, centers[b], rng)
            pb = _border_vertex(city_vertices[b], coords, centers[a], rng)
            us.append(pa)
            vs.append(pb)
            added += 1
            if added >= params.ferries:
                break

    g = build_graph(
        next_id,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        coords=np.asarray(coords, dtype=np.float64),
    )
    return _connect_components(g, rng)


# ----------------------------------------------------------------------
def _city_grid(size, center, rng, params: RoadNetParams, base_id):
    """One city: a jittered grid patch, possibly split by a river."""
    cols = max(2, int(math.sqrt(size)))
    rows = max(2, (size + cols - 1) // cols)
    scale = 0.004 * math.sqrt(size)  # bigger cities cover more area

    n = rows * cols
    idx = np.arange(n).reshape(rows, cols)
    jit = 0.15 * rng.standard_normal((n, 2))
    gx = (np.repeat(np.arange(rows), cols) / max(rows - 1, 1) - 0.5 + jit[:, 0]) * scale
    gy = (np.tile(np.arange(cols), rows) / max(cols - 1, 1) - 0.5 + jit[:, 1]) * scale
    xy = [(center[0] + float(x), center[1] + float(y)) for x, y in zip(gx, gy)]

    river_col = None
    bridge_rows: set = set()
    if size >= params.river_min_city and cols >= 4:
        river_col = cols // 2
        bridge_rows = set(
            int(r) for r in rng.choice(rows, size=min(params.bridges_per_river, rows), replace=False)
        )

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols - 1):
            if river_col is not None and c == river_col and r not in bridge_rows:
                continue
            if rng.random() < params.street_delete_prob:
                continue
            edges.append((base_id + int(idx[r, c]), base_id + int(idx[r, c + 1])))
    for r in range(rows - 1):
        for c in range(cols):
            if rng.random() < params.street_delete_prob:
                continue
            edges.append((base_id + int(idx[r, c]), base_id + int(idx[r + 1, c])))
    # occasional diagonals (never across the river)
    for r in range(rows - 1):
        for c in range(cols - 1):
            if river_col is not None and c == river_col:
                continue
            if rng.random() < params.diagonal_prob:
                edges.append((base_id + int(idx[r, c]), base_id + int(idx[r + 1, c + 1])))

    ids = np.arange(base_id, base_id + n, dtype=np.int64)
    return ids, edges, xy


def _highway_pairs(centers: np.ndarray, params: RoadNetParams, rng) -> List[Tuple[int, int]]:
    """MST of the Delaunay triangulation plus a random fraction of its edges."""
    k = len(centers)
    if k == 2:
        return [(0, 1)]
    from scipy.spatial import Delaunay

    try:
        tri = Delaunay(centers)
        pairs = set()
        for simplex in tri.simplices:
            for i in range(3):
                a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
                pairs.add((min(a, b), max(a, b)))
        pairs = sorted(pairs)
    except Exception:  # degenerate geometry: fall back to a full mesh
        pairs = [(a, b) for a in range(k) for b in range(a + 1, k)]

    # MST over the candidate pairs (Kruskal)
    lengths = [float(np.hypot(*(centers[a] - centers[b]))) for a, b in pairs]
    order = np.argsort(lengths)
    parent = list(range(k))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: List[Tuple[int, int]] = []
    rest: List[Tuple[int, int]] = []
    for i in order:
        a, b = pairs[int(i)]
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            chosen.append((a, b))
        else:
            rest.append((a, b))
    keep = rng.random(len(rest)) < params.highway_extra
    chosen.extend(p for p, k_ in zip(rest, keep) if k_)
    return chosen


def _border_vertex(ids: np.ndarray, coords, toward, rng) -> int:
    """A city vertex roughly facing the destination (random among the top)."""
    pts = np.asarray([coords[int(i)] for i in ids])
    direction = np.asarray(toward, dtype=np.float64) - pts.mean(axis=0)
    norm = np.linalg.norm(direction)
    if norm == 0:
        return int(rng.choice(ids))
    proj = pts @ (direction / norm)
    top = np.argsort(-proj)[: max(1, len(ids) // 20)]
    return int(ids[int(rng.choice(top))])


def _connect_components(g: Graph, rng) -> Graph:
    """Guarantee connectivity (street deletions may strand corners)."""
    from ..graph.components import connected_components

    k, labels = connected_components(g)
    if k <= 1:
        return g
    # link every component to the largest one by an edge between the
    # geometrically closest vertices
    sizes = np.bincount(labels)
    main = int(np.argmax(sizes))
    us, vs = [], []
    main_verts = np.flatnonzero(labels == main)
    for c in range(k):
        if c == main:
            continue
        members = np.flatnonzero(labels == c)
        if g.coords is not None:
            a = int(members[0])
            d = ((g.coords[main_verts] - g.coords[a]) ** 2).sum(axis=1)
            b = int(main_verts[int(np.argmin(d))])
        else:
            a, b = int(members[0]), int(main_verts[0])
        us.append(a)
        vs.append(b)
    all_u = np.concatenate([g.edge_u, np.asarray(us, dtype=np.int64)])
    all_v = np.concatenate([g.edge_v, np.asarray(vs, dtype=np.int64)])
    all_w = np.concatenate([g.ewgt, np.ones(len(us))])
    return build_graph(g.n, all_u, all_v, weights=all_w, coords=g.coords)
