"""Assembly-phase orchestration: fragment graph in, partition out."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.config import AssemblyConfig, RuntimeConfig
from ..graph.graph import Graph
from ..runtime.budget import RunBudget
from .multistart import MultistartStats, multistart
from .pool import Solution

__all__ = ["AssemblyResult", "run_assembly"]


@dataclass
class AssemblyResult:
    """Best partition of the fragment graph plus instrumentation."""

    solution: Solution
    stats: MultistartStats
    time_assembly: float

    @property
    def labels(self) -> np.ndarray:
        """Per-fragment cell labels of the best solution."""
        return self.solution.labels

    @property
    def cost(self) -> float:
        """Cut weight of the best solution."""
        return self.solution.cost

    @property
    def num_cells(self) -> int:
        """Number of cells in the best solution."""
        return int(len(np.unique(self.solution.labels)))


def run_assembly(
    fragment_graph: Graph,
    U: int,
    config: AssemblyConfig | None = None,
    rng: np.random.Generator | None = None,
    runtime: RuntimeConfig | None = None,
    budget: RunBudget | None = None,
    parallel=None,
) -> AssemblyResult:
    """Run greedy + local search (+ multistart/combination) on fragments.

    ``parallel`` (a :class:`~repro.parallel.pool.ParallelRuntime`) runs the
    multistart iterations on the shared worker pool; see
    :func:`repro.assembly.multistart.multistart`.
    """
    config = AssemblyConfig() if config is None else config
    rng = np.random.default_rng(0) if rng is None else rng
    if fragment_graph.n and int(fragment_graph.vsize.max()) > U:
        raise ValueError("a fragment exceeds U; filtering did not respect the bound")
    t0 = time.perf_counter()
    solution, stats = multistart(
        fragment_graph, U, config, rng, runtime=runtime, budget=budget, parallel=parallel
    )
    return AssemblyResult(
        solution=solution, stats=stats, time_assembly=time.perf_counter() - t0
    )
