"""The local search of the assembly phase (paper Section 3, "Local Search").

A sequence of *reoptimization steps*.  Each step picks, uniformly at random,
a pair ``{R, S}`` of adjacent cells whose failure counter ``phi_RS`` is below
the budget ``phi``; it builds the auxiliary instance of the chosen variant
(L2 / L2+ / L2*), re-runs the randomized greedy on it, and accepts the
result iff the internal cut strictly improves.  On failure ``phi_RS`` is
incremented; on success the counters of all ``H``-edges with at least one
endpoint in an uncontracted region of the instance are reset to zero.  The
search stops when no pair with ``phi_RS < phi`` remains.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from .cells import PartitionState
from .greedy import greedy_assemble
from .instance import build_aux_instance

__all__ = ["local_search", "LocalSearchStats"]

_EPS = 1e-9


class _RandomPairSet:
    """Set of cell pairs with O(1) insert/remove/uniform-sample."""

    def __init__(self) -> None:
        self.items: List[Tuple[int, int]] = []
        self.pos: Dict[Tuple[int, int], int] = {}

    def add(self, p: Tuple[int, int]) -> None:
        """Insert the pair if absent."""
        if p not in self.pos:
            self.pos[p] = len(self.items)
            self.items.append(p)

    def discard(self, p: Tuple[int, int]) -> None:
        """Remove the pair if present (O(1), swap-with-last)."""
        i = self.pos.pop(p, None)
        if i is None:
            return
        last = self.items.pop()
        if i < len(self.items):
            self.items[i] = last
            self.pos[last] = i

    def sample(self, rng: np.random.Generator) -> Tuple[int, int]:
        """One pair uniformly at random; ``IndexError`` when empty."""
        if not self.items:
            raise IndexError("sample from an empty pair set")
        return self.items[int(rng.integers(len(self.items)))]

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, p: Tuple[int, int]) -> bool:
        return p in self.pos


class LocalSearchStats:
    """Step/improvement counters of one local-search run."""
    def __init__(self) -> None:
        self.steps = 0
        self.improvements = 0
        self.initial_cost = 0.0
        self.final_cost = 0.0


def _canon(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


def local_search(
    state: PartitionState,
    U: int,
    variant: str = "L2+",
    phi_max: int = 16,
    rng: np.random.Generator | None = None,
    score_a: float = 0.03,
    score_b: float = 0.6,
    max_steps: int | None = None,
    batch: int = 1,
) -> LocalSearchStats:
    """Improve ``state`` in place; returns step statistics.

    ``batch > 1`` enables the paper's speculative parallel scheme: several
    pairs are (independently) reoptimized per round and the improving moves
    are applied sequentially, each re-validated against the current state
    ("we try several pairs of regions simultaneously and, whenever an
    improving move is found, we make the corresponding change to the
    solution sequentially").  With ``batch=1`` the behavior is the plain
    sequential search.
    """
    if variant == "none":
        stats = LocalSearchStats()
        stats.initial_cost = stats.final_cost = state.cost
        return stats
    rng = np.random.default_rng(0) if rng is None else rng
    stats = LocalSearchStats()
    stats.initial_cost = state.cost

    phi: Dict[Tuple[int, int], int] = {}
    avail = _RandomPairSet()
    for p in state.adjacent_pairs():
        avail.add(p)

    while len(avail):
        if max_steps is not None and stats.steps >= max_steps:
            break
        # sample up to `batch` distinct live pairs
        pairs: List[Tuple[int, int]] = []
        seen = set()
        for _ in range(min(batch, len(avail)) * 2):
            # stale-pair discards below can empty the set mid-round
            if not len(avail) or len(pairs) >= min(batch, len(avail)):
                break
            R, S = avail.sample(rng)
            if (R, S) in seen:
                continue
            seen.add((R, S))
            if R not in state.H or S not in state.H or S not in state.H[R]:
                avail.discard((R, S))
                continue
            pairs.append((R, S))
        if not pairs:
            continue

        # speculative evaluation (independent; parallelizable)
        proposals = []
        for R, S in pairs:
            aux = build_aux_instance(state, R, S, variant)
            groups = greedy_assemble(
                aux.unit_sizes.copy(), aux.adjacency(), U, rng, score_a, score_b
            )
            # the distinct cells this instance references, computed once at
            # build time instead of per re-validation
            aux_cells = [int(c) for c in np.unique(aux.unit_cell)]
            proposals.append((R, S, aux, groups, aux_cells))

        # sequential application with re-validation
        for R, S, aux, groups, aux_cells in proposals:
            if R not in state.H or S not in state.H or S not in state.H[R]:
                continue  # invalidated by an earlier application this round
            # every cell the (possibly stale) instance references must still
            # exist; cell ids are never reused, so existence implies the
            # membership is exactly what the instance was built from
            if any(c not in state.cell_members for c in aux_cells):
                continue
            stats.steps += 1
            old_internal = aux.current_internal_cost
            new_internal = aux.internal_cost(groups)
            if new_internal < old_internal - _EPS:
                _apply(state, aux, groups, phi, avail)
                state.cost += new_internal - old_internal
                stats.improvements += 1
            else:
                p = _canon(R, S)
                phi[p] = phi.get(p, 0) + 1
                if phi[p] >= phi_max:
                    avail.discard(p)

    stats.final_cost = state.cost
    return stats


def _apply(
    state: PartitionState,
    aux,
    groups: np.ndarray,
    phi: Dict[Tuple[int, int], int],
    avail: _RandomPairSet,
) -> None:
    """Commit an improving reoptimization step to the partition state."""
    # groups -> new cells.  A contracted unit left alone keeps its old cell
    # id (its relations with the outside are untouched); everything else
    # gets a fresh id.
    by_group: Dict[int, List[int]] = {}
    for unit, grp in enumerate(groups):
        by_group.setdefault(int(grp), []).append(unit)

    destroyed: Set[int] = set()
    new_cells: Dict[int, List[int]] = {}
    touched_uncontracted_cells: List[int] = []
    for grp, units in by_group.items():
        if len(units) == 1 and not aux.uncontracted[units[0]]:
            continue  # untouched contracted neighbor cell
        frags: List[int] = []
        any_unc = False
        for u in units:
            frags.extend(aux.unit_frags[u])
            destroyed.add(int(aux.unit_cell[u]))
            if aux.uncontracted[u]:
                any_unc = True
        cid = state.fresh_cell_id()
        new_cells[cid] = frags
        if any_unc:
            touched_uncontracted_cells.append(cid)

    # uncontracted cells are always destroyed even if their fragments end up
    # regrouped exactly as before (fresh ids keep the bookkeeping simple);
    # make sure they are in `destroyed`
    for unit in range(len(groups)):
        if aux.uncontracted[unit]:
            destroyed.add(int(aux.unit_cell[unit]))

    state.replace_cells(destroyed, new_cells)

    # drop pairs that reference destroyed cells
    for p in list(avail.items):
        if p[0] in destroyed or p[1] in destroyed:
            avail.discard(p)
    for p in [q for q in phi if q[0] in destroyed or q[1] in destroyed]:
        del phi[p]

    # activate pairs around the new cells; reset counters of pairs touching
    # a cell that contains an uncontracted region (the paper's reset rule)
    for c in new_cells:
        for d in state.H[c]:
            avail.add(_canon(c, d))
    for c in touched_uncontracted_cells:
        for d in state.H[c]:
            p = _canon(c, d)
            phi.pop(p, None)
            avail.add(p)
