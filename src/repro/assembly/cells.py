"""Mutable partition state over the fragment graph.

The local search views the current partition as a contracted graph ``H``
(paper Section 3): one vertex per cell, edge weights summing the fragment
edges between two cells.  This module maintains that view incrementally:
cell membership, cell sizes, the weighted cell adjacency ``H``, and the
partition cost, with localized updates when a reoptimization step replaces
a few cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from ..graph.csr import gather_csr_rows
from ..graph.graph import Graph

__all__ = ["PartitionState"]


class PartitionState:
    """Cells over a fragment graph, with the contracted view ``H``."""

    def __init__(self, g: Graph, labels: np.ndarray) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (g.n,):
            raise ValueError("labels must assign every fragment")
        self.g = g
        _, dense = np.unique(labels, return_inverse=True)
        self.labels = dense.astype(np.int64)
        self.next_cell_id = int(dense.max()) + 1 if g.n else 0

        # per-cell adjacency cache (see cell_adjacency) and the stamped
        # fragment -> unit workspace used by build_aux_instance; both are
        # pure acceleration state, invisible to the partition semantics
        self._cell_adj: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._frag_unit = np.zeros(g.n, dtype=np.int64)
        self._frag_stamp = np.zeros(g.n, dtype=np.int64)
        self._stamp_clock = 0

        self.cell_members: Dict[int, List[int]] = {}
        for v, c in enumerate(self.labels):
            self.cell_members.setdefault(int(c), []).append(v)
        self.cell_size: Dict[int, int] = {
            c: int(g.vsize[m].sum()) for c, m in self.cell_members.items()
        }
        self.H: Dict[int, Dict[int, float]] = {c: {} for c in self.cell_members}
        lu = self.labels[g.edge_u]
        lv = self.labels[g.edge_v]
        cut = lu != lv
        self.cost = float(g.ewgt[cut].sum())
        for e in np.flatnonzero(cut):
            a = int(lu[e])
            b = int(lv[e])
            w = float(g.ewgt[e])
            self.H[a][b] = self.H[a].get(b, 0.0) + w
            self.H[b][a] = self.H[b].get(a, 0.0) + w

    # ------------------------------------------------------------------
    def num_cells(self) -> int:
        """Number of live cells."""
        return len(self.cell_members)

    def cells(self) -> Iterable[int]:
        """Iterable of live cell ids."""
        return self.cell_members.keys()

    def adjacent_pairs(self) -> List[tuple]:
        """All unordered adjacent cell pairs, canonically ordered."""
        out = []
        for a, row in self.H.items():
            for b in row:
                if a < b:
                    out.append((a, b))
        return out

    def max_cell_size(self) -> int:
        """Size of the largest cell."""
        return max(self.cell_size.values(), default=0)

    # ------------------------------------------------------------------
    def cell_adjacency(
        self, c: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flattened incidence of cell ``c``: ``(mem, vv, loc, ys, ws)``.

        ``mem`` are the cell's fragments (membership order); the remaining
        arrays cover every half-edge leaving a member, in CSR order:
        ``vv`` the source fragment, ``loc`` its index within ``mem``, ``ys``
        the neighbor fragment, ``ws`` the edge weight.  Cell membership is
        immutable (cells are only ever created or destroyed), so the arrays
        are cached until :meth:`replace_cells` destroys the cell.
        """
        cached = self._cell_adj.get(c)
        if cached is not None:
            return cached
        g = self.g
        mem = np.asarray(self.cell_members[c], dtype=np.int64)
        counts = g.xadj[mem + 1] - g.xadj[mem]
        vv = np.repeat(mem, counts)
        loc = np.repeat(np.arange(len(mem), dtype=np.int64), counts)
        ys = gather_csr_rows(g.xadj, g.adjncy, mem).astype(np.int64)
        ws = gather_csr_rows(g.xadj, g.half_edge_weights(), mem)
        entry = (mem, vv, loc, ys, ws)
        self._cell_adj[c] = entry
        return entry

    # ------------------------------------------------------------------
    def replace_cells(
        self, destroyed: Set[int], new_cells: Dict[int, List[int]]
    ) -> None:
        """Replace ``destroyed`` cells by ``new_cells`` (id -> fragments).

        Fragments of the destroyed cells must exactly equal the fragments of
        the new cells; ``H``, sizes, labels and cost are updated locally.
        """
        g = self.g
        old_frags: Set[int] = set()
        for c in destroyed:  # repro: noqa(REPRO104) — set union, order-free
            old_frags.update(self.cell_members[c])
        new_frags: Set[int] = set()
        for mem in new_cells.values():
            new_frags.update(mem)
        if old_frags != new_frags:
            raise ValueError("replacement does not cover the same fragments")

        # drop destroyed rows, their mirror entries, and their cached arrays
        for c in destroyed:  # repro: noqa(REPRO104) — removals commute
            for d in self.H.pop(c, {}):
                if d not in destroyed:
                    self.H[d].pop(c, None)
            del self.cell_members[c]
            del self.cell_size[c]
            self._cell_adj.pop(c, None)

        for c, mem in new_cells.items():
            self.cell_members[c] = list(mem)
            self.cell_size[c] = int(g.vsize[list(mem)].sum())
            for v in mem:
                self.labels[v] = c
            self.H.setdefault(c, {})

        # rebuild rows of the new cells from the fragment graph (this also
        # warms the adjacency cache for the cells the search just created);
        # first-occurrence key order and per-key accumulation order match the
        # scalar half-edge walk: bincount sums bins in input order, and the
        # stable argsort of first-occurrence indices restores key order
        for c in new_cells:
            _, _, _, ys, ws = self.cell_adjacency(c)
            ds = self.labels[ys]
            sel = ds != c
            ds = ds[sel]
            row: Dict[int, float] = {}
            if len(ds):
                uniq, idx, inv = np.unique(ds, return_index=True, return_inverse=True)
                sums = np.bincount(inv, weights=ws[sel])
                order = np.argsort(idx, kind="stable")
                row = {
                    int(uniq[i]): float(sums[i]) for i in order
                }
            self.H[c] = row
            for d, w in row.items():
                self.H[d][c] = w
        # mirror entries between two new cells were written twice with the
        # same value; fix mutual consistency for pairs of new cells
        for c in new_cells:
            for d in list(self.H[c]):
                if d in new_cells and self.H[d].get(c) != self.H[c][d]:
                    self.H[d][c] = self.H[c][d]

        # recompute cost contribution of touched pairs is implicit: callers
        # adjust cost with the (old_internal - new_internal) delta they
        # computed on the auxiliary instance.

    def fresh_cell_id(self) -> int:
        """Allocate a never-used cell id (ids are never recycled)."""
        cid = self.next_cell_id
        self.next_cell_id += 1
        return cid

    # ------------------------------------------------------------------
    def recompute_cost(self) -> float:
        """Cost from scratch (for verification in tests)."""
        lu = self.labels[self.g.edge_u]
        lv = self.labels[self.g.edge_v]
        return float(self.g.ewgt[lu != lv].sum())

    def check(self) -> None:
        """Validate internal consistency; O(n + m), for tests."""
        assert set(self.cell_members) == set(self.cell_size) == set(self.H)
        seen = np.zeros(self.g.n, dtype=bool)
        for c, mem in self.cell_members.items():
            for v in mem:
                assert self.labels[v] == c
                assert not seen[v]
                seen[v] = True
            assert self.cell_size[c] == int(self.g.vsize[list(mem)].sum())
        assert seen.all()
        # H matches the labeling
        ref: Dict[int, Dict[int, float]] = {c: {} for c in self.cell_members}
        lu = self.labels[self.g.edge_u]
        lv = self.labels[self.g.edge_v]
        for e in np.flatnonzero(lu != lv):
            a, b, w = int(lu[e]), int(lv[e]), float(self.g.ewgt[e])
            ref[a][b] = ref[a].get(b, 0.0) + w
            ref[b][a] = ref[b].get(a, 0.0) + w
        for c in ref:
            assert set(ref[c]) == set(self.H[c]), (c, ref[c], self.H[c])
            for d in ref[c]:
                assert abs(ref[c][d] - self.H[c][d]) < 1e-6
        assert abs(self.cost - self.recompute_cost()) < 1e-6
