"""Elite solution pool with diversity-preserving eviction.

Paper Section 3, "Pool management": while the pool has fewer than ``k``
solutions, every insertion is granted.  Once full, a new solution ``P`` is
rejected if everything in the pool is better; otherwise, among the pool
solutions that are *no better* than ``P``, the one **most similar** to ``P``
is evicted — similarity being the cardinality of the symmetric difference
of the cut-edge sets.  Evicting the most similar dominated solution keeps
the pool diverse (Resende & Werneck's strategy, cited by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from ..graph.graph import Graph

__all__ = ["Solution", "ElitePool"]


@dataclass(frozen=True)
class Solution:
    """An assembly-phase solution: fragment labels, cost, and cut-edge set."""

    labels: np.ndarray
    cost: float
    cut_set: FrozenSet[int]

    @staticmethod
    def from_labels(g: Graph, labels: np.ndarray, cost: float | None = None) -> "Solution":
        """Build a solution (cost and cut set derived from the labels)."""
        labels = np.asarray(labels, dtype=np.int64)
        cut_mask = labels[g.edge_u] != labels[g.edge_v]
        if cost is None:
            cost = float(g.ewgt[cut_mask].sum())
        return Solution(
            labels=labels.copy(),
            cost=float(cost),
            cut_set=frozenset(np.flatnonzero(cut_mask).tolist()),
        )

    def distance(self, other: "Solution") -> int:
        """Symmetric difference of the two cut-edge sets."""
        return len(self.cut_set ^ other.cut_set)


@dataclass
class ElitePool:
    """Fixed-capacity pool of elite solutions (see module docstring)."""
    capacity: int
    solutions: List[Solution] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("pool capacity must be >= 1")

    def __len__(self) -> int:
        return len(self.solutions)

    @property
    def best(self) -> Optional[Solution]:
        """The lowest-cost solution, or None when empty."""
        return min(self.solutions, key=lambda s: s.cost, default=None)

    def add(self, p: Solution) -> bool:
        """Try to insert ``p``; returns True if it entered the pool."""
        if len(self.solutions) < self.capacity:
            self.solutions.append(p)
            return True
        candidates = [i for i, s in enumerate(self.solutions) if s.cost >= p.cost]
        if not candidates:
            return False  # every pool member is strictly better
        evict = min(candidates, key=lambda i: self.solutions[i].distance(p))
        self.solutions[evict] = p
        return True

    def sample_two(self, rng: np.random.Generator) -> Tuple[Solution, Solution]:
        """Two distinct solutions, uniformly at random."""
        if len(self.solutions) < 2:
            raise ValueError("need at least two solutions to sample a pair")
        i, j = rng.choice(len(self.solutions), size=2, replace=False)
        return self.solutions[int(i)], self.solutions[int(j)]
