"""Combining two solutions by weight perturbation (paper Section 3).

If both parents "agree" that an edge lies on a boundary, the child should be
more likely to cut it too.  For each edge ``e``, ``b(e)`` counts in how many
of the two parents it is a cut edge; the edge weight is multiplied by
``p_{b(e)}`` with ``p0 > p1 > p2`` (paper defaults 5, 3, 2) — lower-weight
edges are more likely to end up on the boundary.  The standard greedy +
local search then runs on the perturbed instance, and the resulting
partition is re-evaluated under the original weights.
"""

from __future__ import annotations

import numpy as np

from ..core.config import AssemblyConfig
from ..graph.graph import Graph
from .cells import PartitionState
from .greedy import greedy_labels_for_graph
from .local_search import local_search
from .pool import Solution

__all__ = ["perturbed_graph", "combine_solutions", "combine_chain"]


def perturbed_graph(g: Graph, s1: Solution, s2: Solution, p0: float, p1: float, p2: float) -> Graph:
    """Copy of ``g`` with weights scaled by the agreement factors."""
    b = np.zeros(g.m, dtype=np.int64)
    for e in s1.cut_set:
        b[e] += 1
    for e in s2.cut_set:
        b[e] += 1
    factors = np.asarray([p0, p1, p2], dtype=np.float64)[b]
    return Graph(
        g.xadj,
        g.adjncy,
        g.eid,
        g.edge_u,
        g.edge_v,
        g.vsize,
        g.ewgt * factors,
        coords=g.coords,
    )


def combine_solutions(
    g: Graph,
    s1: Solution,
    s2: Solution,
    U: int,
    cfg: AssemblyConfig,
    rng: np.random.Generator,
) -> Solution:
    """Produce a child solution from two parents via weight perturbation."""
    gp = perturbed_graph(g, s1, s2, cfg.p0, cfg.p1, cfg.p2)
    labels = greedy_labels_for_graph(gp, U, rng, cfg.score_a, cfg.score_b)
    state = PartitionState(gp, labels)
    local_search(
        state,
        U,
        variant=cfg.local_search,
        phi_max=cfg.phi,
        rng=rng,
        score_a=cfg.score_a,
        score_b=cfg.score_b,
    )
    # evaluate under the original weights
    return Solution.from_labels(g, state.labels)


def combine_chain(
    g: Graph,
    p: Solution,
    s1: Solution,
    s2: Solution,
    U: int,
    cfg: AssemblyConfig,
    rng: np.random.Generator,
) -> tuple[Solution, Solution]:
    """The two combine legs of one multistart iteration, as a unit.

    Computes ``P' = combine(s1, s2)`` then ``P'' = combine(p, P')`` and
    returns ``(P', P'')``.  Both the sequential multistart loop and the
    worker-pool combination tasks go through this, so the two paths run
    the exact same greedy/local-search sequence per iteration.
    """
    p_prime = combine_solutions(g, s1, s2, U, cfg, rng)
    p_second = combine_solutions(g, p, p_prime, U, cfg, rng)
    return p_prime, p_second
