"""Randomized greedy contraction (paper Section 3, "Greedy Algorithm").

Repeatedly merge the best-scoring pair of adjacent vertices whose combined
size fits in ``U``; stop when no pair fits.  Scores live in a lazy-deletion
max-heap keyed by per-vertex version counters: merging a pair bumps both
versions, and stale heap entries are discarded on pop.  After a merge, the
scores of all edges incident to the new vertex are recomputed with fresh
randomization terms and re-pushed, exactly as the paper describes ("after a
contraction, it is recomputed — with fresh randomization terms — for all
edges incident to the contracted vertex").

The input is an adjacency-dict forest so that callers (multistart, local
search, combination) can hand in arbitrary auxiliary instances cheaply; use
:func:`adjacency_of_graph` to convert a :class:`~repro.graph.Graph`.

This is the hottest loop of the assembly phase (it runs once per
reoptimization step), so the inner code is deliberately low-level: the
biased randomization term is derived from *one* uniform drawn out of a
pre-filled buffer, and ``1/sqrt(size)`` values are cached per vertex.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List

import numpy as np

from ..graph.graph import Graph

__all__ = ["adjacency_of_graph", "greedy_assemble", "greedy_labels_for_graph"]


class _RandomBuffer:
    """Amortized uniform[0,1) samples from a Generator."""

    __slots__ = ("rng", "buf", "pos")

    def __init__(self, rng: np.random.Generator, chunk: int = 8192) -> None:
        self.rng = rng
        self.buf = rng.random(chunk)
        self.pos = 0

    def next(self) -> float:
        if self.pos >= len(self.buf):
            self.buf = self.rng.random(len(self.buf))
            self.pos = 0
        x = self.buf[self.pos]
        self.pos += 1
        return x


def adjacency_of_graph(g: Graph) -> List[Dict[int, float]]:
    """Adjacency as a list of ``{neighbor: weight}`` dicts.

    Iterates the edge arrays as plain Python scalars (one ``tolist`` each
    instead of ``3m`` NumPy scalar extractions); dict insertion order is the
    edge order, same as the per-edge indexing loop it replaces.
    """
    adj: List[Dict[int, float]] = [dict() for _ in range(g.n)]
    eu, ev, ew = g.edges_arrays()
    for u, v, w in zip(eu.tolist(), ev.tolist(), ew.tolist()):
        adj[u][v] = w
        adj[v][u] = w
    return adj


def greedy_assemble(
    sizes: np.ndarray,
    adj: List[Dict[int, float]],
    U: int,
    rng: np.random.Generator,
    score_a: float = 0.03,
    score_b: float = 0.6,
) -> np.ndarray:
    """Contract greedily; returns per-vertex group labels (root vertex ids).

    ``adj`` is consumed (mutated); pass a copy to keep the original.
    ``sizes`` is copied internally.
    """
    n = len(sizes)
    size = [int(s) for s in sizes]
    isq = [1.0 / math.sqrt(s) for s in size]
    parent = list(range(n))
    version = [0] * n
    rand = _RandomBuffer(rng)
    a, b = score_a, score_b
    one_minus_b_over = (1.0 - b) / (1.0 - a) if a < 1.0 else 0.0

    def biased() -> float:
        # one uniform folded into the paper's two-branch distribution:
        # with prob a, r ~ U[0, b]; otherwise r ~ U[b, 1]
        u = rand.next()
        if u < a:
            return b * (u / a) if a > 0 else 0.0
        return b + (u - a) * one_minus_b_over

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    heap: List[tuple] = []
    for u in range(n):
        su, iu = size[u], isq[u]
        for v, w in adj[u].items():
            if u < v and su + size[v] <= U:
                heap.append((-(biased() * w * (iu + isq[v])), u, v, 0, 0))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop

    while heap:
        _, u, v, vu, vv = pop(heap)
        if version[u] != vu or version[v] != vv:
            continue  # stale entry
        if size[u] + size[v] > U:
            continue
        # merge v into u (keep the larger adjacency to bound total work)
        if len(adj[v]) > len(adj[u]):
            u, v = v, u
        parent[v] = u
        size[u] += size[v]
        isq[u] = 1.0 / math.sqrt(size[u])
        version[u] += 1
        version[v] += 1
        adj_u = adj[u]
        adj_u.pop(v, None)
        for x, w in adj[v].items():
            if x == u:
                continue
            adj_u[x] = adj_u.get(x, 0.0) + w
            adj_x = adj[x]
            adj_x.pop(v, None)
            adj_x[u] = adj_u[x]
        adj[v] = {}
        # fresh scores for all edges incident to the merged vertex
        su, iu, vu = size[u], isq[u], version[u]
        for x, w in adj_u.items():
            if size[x] + su <= U:
                s = biased() * w * (iu + isq[x])
                if u < x:
                    push(heap, (-s, u, x, vu, version[x]))
                else:
                    push(heap, (-s, x, u, version[x], vu))

    # path-compress everything and report roots
    return np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)


def greedy_labels_for_graph(
    g: Graph,
    U: int,
    rng: np.random.Generator,
    score_a: float = 0.03,
    score_b: float = 0.6,
) -> np.ndarray:
    """Run the greedy directly on a :class:`Graph`; returns dense cell labels."""
    labels = greedy_assemble(g.vsize, adjacency_of_graph(g), U, rng, score_a, score_b)
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
