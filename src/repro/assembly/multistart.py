"""Multistart with optional evolutionary combination (paper Section 3).

Each iteration runs the randomized greedy followed by the local search;
after ``M`` iterations the best solution wins.  With combination enabled,
an elite pool of capacity ``k = ceil(sqrt(M))`` (by default) is maintained:
the first ``k`` iterations seed the pool; every later iteration generates a
fresh solution ``P``, combines two random pool members into ``P'``, combines
``P`` with ``P'`` into ``P''``, and tries to insert ``P''``, ``P'``, ``P``
into the pool in that order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.config import AssemblyConfig
from ..graph.graph import Graph
from .cells import PartitionState
from .combine import combine_solutions
from .greedy import greedy_labels_for_graph
from .local_search import local_search
from .pool import ElitePool, Solution

__all__ = ["MultistartStats", "multistart"]


@dataclass
class MultistartStats:
    """Aggregate counters across multistart iterations."""
    iterations: int = 0
    combinations: int = 0
    ls_improvements: int = 0
    ls_steps: int = 0
    iteration_costs: List[float] = field(default_factory=list)


def _one_start(
    g: Graph, U: int, cfg: AssemblyConfig, rng: np.random.Generator, stats: MultistartStats
) -> Solution:
    labels = greedy_labels_for_graph(g, U, rng, cfg.score_a, cfg.score_b)
    state = PartitionState(g, labels)
    ls = local_search(
        state,
        U,
        variant=cfg.local_search,
        phi_max=cfg.phi,
        rng=rng,
        score_a=cfg.score_a,
        score_b=cfg.score_b,
    )
    stats.ls_improvements += ls.improvements
    stats.ls_steps += ls.steps
    return Solution.from_labels(g, state.labels, state.cost)


def multistart(
    g: Graph,
    U: int,
    cfg: Optional[AssemblyConfig] = None,
    rng: np.random.Generator | None = None,
) -> tuple[Solution, MultistartStats]:
    """Run the full assembly search on a fragment graph.

    Returns the best solution found and per-run statistics.
    """
    cfg = AssemblyConfig() if cfg is None else cfg
    rng = np.random.default_rng() if rng is None else rng
    stats = MultistartStats()

    best: Optional[Solution] = None
    pool: Optional[ElitePool] = None
    if cfg.use_combination:
        k = cfg.pool_capacity or max(2, math.ceil(math.sqrt(cfg.multistart)))
        pool = ElitePool(k)

    for it in range(cfg.multistart):
        p = _one_start(g, U, cfg, rng, stats)
        stats.iterations += 1
        candidates = [p]
        if pool is not None:
            if len(pool) < pool.capacity or len(pool) < 2:
                pool.add(p)
            else:
                p1, p2 = pool.sample_two(rng)
                p_prime = combine_solutions(g, p1, p2, U, cfg, rng)
                p_second = combine_solutions(g, p, p_prime, U, cfg, rng)
                stats.combinations += 2
                pool.add(p_second)
                pool.add(p_prime)
                pool.add(p)
                candidates.extend([p_prime, p_second])
        for c in candidates:
            if best is None or c.cost < best.cost:
                best = c
        stats.iteration_costs.append(min(c.cost for c in candidates))

    assert best is not None
    return best, stats
