"""Multistart with optional evolutionary combination (paper Section 3).

Each iteration runs the randomized greedy followed by the local search;
after ``M`` iterations the best solution wins.  With combination enabled,
an elite pool of capacity ``k = ceil(sqrt(M))`` (by default) is maintained:
the first ``k`` iterations seed the pool; every later iteration generates a
fresh solution ``P``, combines two random pool members into ``P'``, combines
``P`` with ``P'`` into ``P''``, and tries to insert ``P''``, ``P'``, ``P``
into the pool in that order.

Because every iteration only ever *adds* a candidate, the loop is naturally
anytime: an expired :class:`~repro.runtime.budget.RunBudget` stops it after
the current iteration and the best solution so far is returned (at least
one iteration always runs, so the result is always valid).  With
``runtime.checkpoint_path`` set, the solution pool, best solution, and RNG
state are periodically serialized so a killed run can be resumed with
``runtime.resume`` (see ``docs/RESILIENCE.md`` for the format).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.config import AssemblyConfig, RuntimeConfig
from ..graph.graph import Graph
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from ..runtime.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .cells import PartitionState
from .combine import combine_solutions
from .greedy import greedy_labels_for_graph
from .local_search import local_search
from .pool import ElitePool, Solution

__all__ = ["MultistartStats", "multistart"]

CHECKPOINT_KIND = "multistart"


@dataclass
class MultistartStats:
    """Aggregate counters across multistart iterations."""
    iterations: int = 0
    combinations: int = 0
    ls_improvements: int = 0
    ls_steps: int = 0
    iteration_costs: List[float] = field(default_factory=list)
    # resilience accounting (docs/RESILIENCE.md)
    deadline_expired: bool = False  # loop stopped early on the budget
    resumed_at: int = -1  # iteration restored from a checkpoint (-1 = fresh)
    checkpoints_written: int = 0

    def incidents(self) -> dict:
        """Non-trivial resilience events, for run reports."""
        out: dict = {}
        if self.deadline_expired:
            out["deadline_expired"] = True
        if self.resumed_at >= 0:
            out["resumed_at"] = self.resumed_at
        if self.checkpoints_written:
            out["checkpoints_written"] = self.checkpoints_written
        return out


def _one_start(
    g: Graph, U: int, cfg: AssemblyConfig, rng: np.random.Generator, stats: MultistartStats
) -> Solution:
    with profile_span("assembly.greedy"):
        labels = greedy_labels_for_graph(g, U, rng, cfg.score_a, cfg.score_b)
        state = PartitionState(g, labels)
    with profile_span("assembly.local_search"):
        ls = local_search(
            state,
            U,
            variant=cfg.local_search,
            phi_max=cfg.phi,
            rng=rng,
            score_a=cfg.score_a,
            score_b=cfg.score_b,
        )
    stats.ls_improvements += ls.improvements
    stats.ls_steps += ls.steps
    return Solution.from_labels(g, state.labels, state.cost)


def _checkpoint_state(
    g: Graph, it: int, rng: np.random.Generator, best: Solution, pool: Optional[ElitePool]
) -> dict:
    return {
        "iteration": it,
        "rng_state": rng.bit_generator.state,
        "best": {"labels": np.asarray(best.labels), "cost": float(best.cost)},
        "pool": None
        if pool is None
        else [
            {"labels": np.asarray(s.labels), "cost": float(s.cost)}
            for s in pool.solutions
        ],
        "graph": {"n": int(g.n), "m": int(g.m)},
    }


def _restore(g: Graph, state: dict, pool: Optional[ElitePool], rng: np.random.Generator):
    """Apply a loaded checkpoint; returns (start_iteration, best_solution)."""
    fp = state.get("graph", {})
    if fp.get("n") != g.n or fp.get("m") != g.m:
        raise CheckpointError(
            f"checkpoint was written for a graph with n={fp.get('n')}, m={fp.get('m')}; "
            f"this graph has n={g.n}, m={g.m}"
        )
    rng.bit_generator.state = state["rng_state"]
    best = Solution.from_labels(g, state["best"]["labels"], state["best"]["cost"])
    if pool is not None and state.get("pool"):
        for entry in state["pool"]:
            pool.add(Solution.from_labels(g, entry["labels"], entry["cost"]))
    return int(state["iteration"]), best


def multistart(
    g: Graph,
    U: int,
    cfg: Optional[AssemblyConfig] = None,
    rng: np.random.Generator | None = None,
    runtime: RuntimeConfig | None = None,
    budget: RunBudget | None = None,
) -> tuple[Solution, MultistartStats]:
    """Run the full assembly search on a fragment graph.

    Returns the best solution found and per-run statistics.  See the module
    docstring for deadline and checkpoint/resume semantics.
    """
    cfg = AssemblyConfig() if cfg is None else cfg
    rng = np.random.default_rng() if rng is None else rng
    runtime = RuntimeConfig() if runtime is None else runtime
    if budget is None and runtime.time_budget is not None:
        budget = runtime.make_budget()
    stats = MultistartStats()

    best: Optional[Solution] = None
    pool: Optional[ElitePool] = None
    if cfg.use_combination:
        k = cfg.pool_capacity or max(2, math.ceil(math.sqrt(cfg.multistart)))
        pool = ElitePool(k)

    start_iter = 0
    ckpt = runtime.checkpoint_path
    if ckpt and runtime.resume:
        state = load_checkpoint(ckpt, CHECKPOINT_KIND)
        if state is not None:
            start_iter, best = _restore(g, state, pool, rng)
            stats.resumed_at = start_iter

    for it in range(start_iter, cfg.multistart):
        # the deadline is honored only once a valid solution exists: the
        # first iteration (or a resumed best) guarantees anytime validity
        if best is not None and budget is not None and budget.checkpoint("multistart"):
            stats.deadline_expired = True
            break
        p = _one_start(g, U, cfg, rng, stats)
        stats.iterations += 1
        candidates = [p]
        if pool is not None:
            if len(pool) < pool.capacity or len(pool) < 2:
                pool.add(p)
            else:
                p1, p2 = pool.sample_two(rng)
                with profile_span("assembly.combine"):
                    p_prime = combine_solutions(g, p1, p2, U, cfg, rng)
                    p_second = combine_solutions(g, p, p_prime, U, cfg, rng)
                stats.combinations += 2
                pool.add(p_second)
                pool.add(p_prime)
                pool.add(p)
                candidates.extend([p_prime, p_second])
        for c in candidates:
            if best is None or c.cost < best.cost:
                best = c
        stats.iteration_costs.append(min(c.cost for c in candidates))

        if ckpt and ((it + 1) % runtime.checkpoint_every == 0 or it + 1 == cfg.multistart):
            save_checkpoint(ckpt, CHECKPOINT_KIND, _checkpoint_state(g, it + 1, rng, best, pool))
            stats.checkpoints_written += 1

    assert best is not None
    return best, stats
