"""Multistart with optional evolutionary combination (paper Section 3).

Each iteration runs the randomized greedy followed by the local search;
after ``M`` iterations the best solution wins.  With combination enabled,
an elite pool of capacity ``k = ceil(sqrt(M))`` (by default) is maintained:
the first ``k`` iterations seed the pool; every later iteration generates a
fresh solution ``P``, combines two random pool members into ``P'``, combines
``P`` with ``P'`` into ``P''``, and tries to insert ``P''``, ``P'``, ``P``
into the pool in that order.

Because every iteration only ever *adds* a candidate, the loop is naturally
anytime: an expired :class:`~repro.runtime.budget.RunBudget` stops it after
the current iteration and the best solution so far is returned (at least
one iteration always runs, so the result is always valid).  With
``runtime.checkpoint_path`` set, the solution pool, best solution, and RNG
state are periodically serialized so a killed run can be resumed with
``runtime.resume`` (see ``docs/RESILIENCE.md`` for the format).

Parallel mode (``parallel=`` a :class:`~repro.parallel.pool.ParallelRuntime`)
restructures the loop into the paper's parallel multistart: all per-iteration
seeds are derived from the parent RNG up front, the independent greedy+LS
starts run as one wave on the worker pool, and combination iterations run in
rounds of (elite-pool capacity) against a pool snapshot, with parents sampled
by the parent RNG and results re-inserted in iteration order.  Every RNG
draw thus happens either in the parent (seed derivation, parent sampling) or
in a per-iteration generator seeded by the parent, so the outcome is a pure
function of the seed — identical for serial, threads, and processes
backends.  The schedule differs from the sequential legacy loop (rounds see
a briefly frozen pool), so ``parallel=None`` keeps the legacy behavior
exactly; checkpoints written by parallel mode carry the derived seed list
and are resumed by parallel mode, while legacy checkpoints fall back to the
legacy loop.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.config import AssemblyConfig, RuntimeConfig
from ..graph.graph import Graph
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from ..runtime.checkpoint import (
    CheckpointError,
    load_checkpoint_safe,
    rng_state_checksum,
    save_checkpoint,
)
from .cells import PartitionState
from .combine import combine_chain
from .greedy import greedy_labels_for_graph
from .local_search import local_search
from .pool import ElitePool, Solution

__all__ = ["MultistartStats", "multistart"]

CHECKPOINT_KIND = "multistart"


@dataclass
class MultistartStats:
    """Aggregate counters across multistart iterations."""
    iterations: int = 0
    combinations: int = 0
    ls_improvements: int = 0
    ls_steps: int = 0
    iteration_costs: List[float] = field(default_factory=list)
    # resilience accounting (docs/RESILIENCE.md)
    deadline_expired: bool = False  # loop stopped early on the budget
    resumed_at: int = -1  # iteration restored from a checkpoint (-1 = fresh)
    checkpoints_written: int = 0
    # non-empty when the resume degraded (older generation / fresh start)
    checkpoint_recovery: dict = field(default_factory=dict)

    def incidents(self) -> dict:
        """Non-trivial resilience events, for run reports."""
        out: dict = {}
        if self.deadline_expired:
            out["deadline_expired"] = True
        if self.resumed_at >= 0:
            out["resumed_at"] = self.resumed_at
        if self.checkpoints_written:
            out["checkpoints_written"] = self.checkpoints_written
        if self.checkpoint_recovery:
            out["checkpoint_recovery"] = dict(self.checkpoint_recovery)
        return out


def _one_start(
    g: Graph, U: int, cfg: AssemblyConfig, rng: np.random.Generator, stats: MultistartStats
) -> Solution:
    with profile_span("assembly.greedy"):
        labels = greedy_labels_for_graph(g, U, rng, cfg.score_a, cfg.score_b)
        state = PartitionState(g, labels)
    with profile_span("assembly.local_search"):
        ls = local_search(
            state,
            U,
            variant=cfg.local_search,
            phi_max=cfg.phi,
            rng=rng,
            score_a=cfg.score_a,
            score_b=cfg.score_b,
        )
    stats.ls_improvements += ls.improvements
    stats.ls_steps += ls.steps
    return Solution.from_labels(g, state.labels, state.cost)


def _checkpoint_state(
    g: Graph,
    it: int,
    rng: np.random.Generator,
    best: Solution,
    pool: Optional[ElitePool],
    start_seeds: Optional[List[int]] = None,
    entry_rng_crc: Optional[int] = None,
) -> dict:
    state = {
        "iteration": it,
        "entry_rng_crc": entry_rng_crc,
        "rng_state": rng.bit_generator.state,
        "best": {"labels": np.asarray(best.labels), "cost": float(best.cost)},
        "pool": None
        if pool is None
        else [
            {"labels": np.asarray(s.labels), "cost": float(s.cost)}
            for s in pool.solutions
        ],
        "graph": {"n": int(g.n), "m": int(g.m)},
    }
    if start_seeds is not None:
        # parallel mode: the full derived-seed schedule travels with the
        # checkpoint so a resumed run replays the identical iteration set
        state["start_seeds"] = [int(s) for s in start_seeds]
    return state


def _restore(
    g: Graph,
    state: dict,
    pool: Optional[ElitePool],
    rng: np.random.Generator,
    entry_rng_crc: Optional[int] = None,
):
    """Apply a loaded checkpoint; returns (start_iteration, best_solution)."""
    fp = state.get("graph", {})
    if fp.get("n") != g.n or fp.get("m") != g.m:
        raise CheckpointError(
            f"checkpoint was written for a graph with n={fp.get('n')}, m={fp.get('m')}; "
            f"this graph has n={g.n}, m={g.m}"
        )
    stored_crc = state.get("entry_rng_crc")
    if entry_rng_crc is not None and stored_crc is not None and stored_crc != entry_rng_crc:
        raise CheckpointError(
            "checkpoint was written by a run with a different seed configuration "
            "(RNG entry-state checksum mismatch); resuming would silently diverge "
            "from both runs — pass the original seed or start fresh"
        )
    rng.bit_generator.state = state["rng_state"]
    best = Solution.from_labels(g, state["best"]["labels"], state["best"]["cost"])
    if pool is not None and state.get("pool"):
        for entry in state["pool"]:
            pool.add(Solution.from_labels(g, entry["labels"], entry["cost"]))
    return int(state["iteration"]), best


def multistart(
    g: Graph,
    U: int,
    cfg: Optional[AssemblyConfig] = None,
    rng: np.random.Generator | None = None,
    runtime: RuntimeConfig | None = None,
    budget: RunBudget | None = None,
    parallel=None,
) -> tuple[Solution, MultistartStats]:
    """Run the full assembly search on a fragment graph.

    Returns the best solution found and per-run statistics.  See the module
    docstring for deadline and checkpoint/resume semantics, and for what
    ``parallel`` (a :class:`~repro.parallel.pool.ParallelRuntime`) changes.
    """
    cfg = AssemblyConfig() if cfg is None else cfg
    rng = np.random.default_rng(0) if rng is None else rng
    runtime = RuntimeConfig() if runtime is None else runtime
    if budget is None and runtime.time_budget is not None:
        budget = runtime.make_budget()
    stats = MultistartStats()
    # fingerprint of the RNG stream position at loop entry — a pure function
    # of the run's seed configuration, stored in every checkpoint so a resume
    # under a *different* seed config is rejected instead of diverging
    entry_crc = rng_state_checksum(rng.bit_generator.state)

    if parallel is not None and cfg.multistart > 1 and g.n > 0:
        out = _multistart_parallel(
            g, U, cfg, rng, runtime, budget, stats, parallel, entry_crc
        )
        if out is not None:
            return out
        # a legacy checkpoint (no seed schedule) resumes on the legacy loop

    best: Optional[Solution] = None
    pool: Optional[ElitePool] = None
    if cfg.use_combination:
        k = cfg.pool_capacity or max(2, math.ceil(math.sqrt(cfg.multistart)))
        pool = ElitePool(k)

    start_iter = 0
    ckpt = runtime.checkpoint_path
    if ckpt and runtime.resume:
        state, recovery = load_checkpoint_safe(
            ckpt, CHECKPOINT_KIND, rng=rng, generations=runtime.checkpoint_generations
        )
        stats.checkpoint_recovery = recovery
        if state is not None:
            start_iter, best = _restore(g, state, pool, rng, entry_crc)
            stats.resumed_at = start_iter

    for it in range(start_iter, cfg.multistart):
        # the deadline is honored only once a valid solution exists: the
        # first iteration (or a resumed best) guarantees anytime validity
        if best is not None and budget is not None and budget.checkpoint("multistart"):
            stats.deadline_expired = True
            break
        p = _one_start(g, U, cfg, rng, stats)
        stats.iterations += 1
        candidates = [p]
        if pool is not None:
            if len(pool) < pool.capacity or len(pool) < 2:
                pool.add(p)
            else:
                p1, p2 = pool.sample_two(rng)
                with profile_span("assembly.combine"):
                    p_prime, p_second = combine_chain(g, p, p1, p2, U, cfg, rng)
                stats.combinations += 2
                pool.add(p_second)
                pool.add(p_prime)
                pool.add(p)
                candidates.extend([p_prime, p_second])
        for c in candidates:
            if best is None or c.cost < best.cost:
                best = c
        stats.iteration_costs.append(min(c.cost for c in candidates))

        if ckpt and ((it + 1) % runtime.checkpoint_every == 0 or it + 1 == cfg.multistart):
            save_checkpoint(
                ckpt,
                CHECKPOINT_KIND,
                _checkpoint_state(g, it + 1, rng, best, pool, entry_rng_crc=entry_crc),
                generations=runtime.checkpoint_generations,
                fault_plan=runtime.fault_plan,
                key=it + 1,
            )
            stats.checkpoints_written += 1

    assert best is not None
    return best, stats


def _multistart_parallel(
    g: Graph,
    U: int,
    cfg: AssemblyConfig,
    rng: np.random.Generator,
    runtime: RuntimeConfig,
    budget: Optional[RunBudget],
    stats: MultistartStats,
    parallel,
    entry_crc: Optional[int] = None,
) -> Optional[tuple]:
    """Derived-seed multistart on the worker pool (see module docstring).

    Returns ``None`` when a resume checkpoint was written by the legacy
    loop (no seed schedule) — the caller then falls back to that loop.
    """
    from ..runtime.executor import resilient_map
    from ..parallel.tasks import combine_iteration_task, run_start_task

    M = cfg.multistart
    elite: Optional[ElitePool] = None
    cap = 0
    if cfg.use_combination:
        cap = cfg.pool_capacity or max(2, math.ceil(math.sqrt(M)))
        elite = ElitePool(cap)

    best: Optional[Solution] = None
    completed = 0
    start_seeds: Optional[List[int]] = None
    ckpt = runtime.checkpoint_path
    if ckpt and runtime.resume:
        state, recovery = load_checkpoint_safe(
            ckpt, CHECKPOINT_KIND, rng=rng, generations=runtime.checkpoint_generations
        )
        stats.checkpoint_recovery = recovery
        if state is not None:
            if not state.get("start_seeds"):
                return None
            completed, best = _restore(g, state, elite, rng, entry_crc)
            start_seeds = [int(s) for s in state["start_seeds"]]
            stats.resumed_at = completed
    if start_seeds is None:
        # the whole iteration schedule is fixed here, before any dispatch:
        # this is what makes the outcome executor-independent
        start_seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=M)]

    # the first min(M, capacity) iterations seed the elite pool, like the
    # sequential loop's warm-up phase; without combination all M are starts
    k0 = M if elite is None else min(M, max(2, cap))

    def dispatch(task, task_items):
        return resilient_map(
            task,
            task_items,
            executor=parallel.backend,
            workers=parallel.workers,
            max_retries=runtime.max_retries,
            backoff_base=runtime.backoff_base,
            backoff_max=runtime.backoff_max,
            backoff_jitter=runtime.backoff_jitter,
            seed=runtime.retry_seed,
            budget=budget,
            fault_plan=runtime.fault_plan,
            pool=parallel.pool(),
        )

    def absorb(wstats: dict) -> None:
        parallel.note_batch(wstats)
        stats.ls_improvements += int(wstats.get("ls_improvements", 0))
        stats.ls_steps += int(wstats.get("ls_steps", 0))

    def note_best(sol: Solution) -> None:
        nonlocal best
        if best is None or sol.cost < best.cost:
            best = sol

    def write_ckpt(it: int) -> None:
        if ckpt and best is not None:
            save_checkpoint(
                ckpt,
                CHECKPOINT_KIND,
                _checkpoint_state(
                    g, it, rng, best, elite, start_seeds, entry_rng_crc=entry_crc
                ),
                generations=runtime.checkpoint_generations,
                fault_plan=runtime.fault_plan,
                key=it,
            )
            stats.checkpoints_written += 1

    def run_starts(idxs: List[int]) -> None:
        # share per wave (memoized): after a pool collapse the export was
        # released, and a supervised respawn needs fresh segments in place
        # before the pool is (re)built inside dispatch()
        task = functools.partial(run_start_task, handle=parallel.share(g), U=U, cfg=cfg)
        with profile_span("assembly.multistart_wave"):
            results, _report = dispatch(task, [start_seeds[i] for i in idxs])
        for out in results:
            if out is None:
                continue  # skipped start: the iteration is simply lost
            labels, cost, wstats = out
            absorb(wstats)
            sol = Solution.from_labels(g, labels, cost)
            stats.iterations += 1
            stats.iteration_costs.append(float(cost))
            if elite is not None:
                elite.add(sol)
            note_best(sol)

    if completed < k0:
        run_starts(list(range(completed, k0)))
        completed = k0
        write_ckpt(completed)

    while completed < M:
        # no best-is-set guard (unlike the sequential loop): the inline
        # fallback below keeps the anytime guarantee even on full expiry
        if budget is not None and budget.checkpoint("multistart"):
            stats.deadline_expired = True
            break
        round_idx = list(range(completed, min(M, completed + max(1, cap))))
        if elite is None or len(elite) < 2:
            # not enough parents to combine (e.g. the whole first wave was
            # skipped): degrade the round to plain independent starts
            run_starts(round_idx)
        else:
            items = []
            for i in round_idx:
                p1, p2 = elite.sample_two(rng)
                items.append(
                    (
                        start_seeds[i],
                        np.asarray(p1.labels), float(p1.cost),
                        np.asarray(p2.labels), float(p2.cost),
                    )
                )
            task = functools.partial(
                combine_iteration_task, handle=parallel.share(g), U=U, cfg=cfg
            )
            with profile_span("assembly.multistart_wave"):
                results, _report = dispatch(task, items)
            for out in results:
                if out is None:
                    continue
                (pl, pc), (ppl, ppc), (psl, psc), wstats = out
                absorb(wstats)
                p = Solution.from_labels(g, pl, pc)
                p_prime = Solution.from_labels(g, ppl, ppc)
                p_second = Solution.from_labels(g, psl, psc)
                stats.iterations += 1
                stats.combinations += 2
                # same insertion order as the sequential loop: P'', P', P
                elite.add(p_second)
                elite.add(p_prime)
                elite.add(p)
                for c in (p, p_prime, p_second):
                    note_best(c)
                stats.iteration_costs.append(float(min(pc, ppc, psc)))
        completed = round_idx[-1] + 1
        write_ckpt(completed)

    if best is None:
        # every dispatched iteration was skipped; keep the anytime guarantee
        # by running the first scheduled start inline
        best = _one_start(g, U, cfg, np.random.default_rng(start_seeds[0]), stats)
        stats.iterations += 1
        stats.iteration_costs.append(float(best.cost))
    if budget is not None and budget.expired():
        stats.deadline_expired = True
        # an interrupted parallel run always leaves a resumable artifact,
        # even when the deadline beat the first wave (best = inline start)
        write_ckpt(completed)
    return best, stats
