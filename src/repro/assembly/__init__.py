"""Assembly phase of PUNCH: greedy, local search, multistart, combination."""

from .cells import PartitionState
from .combine import combine_solutions, perturbed_graph
from .driver import AssemblyResult, run_assembly
from .greedy import adjacency_of_graph, greedy_assemble, greedy_labels_for_graph
from .instance import AuxInstance, build_aux_instance
from .local_search import LocalSearchStats, local_search
from .multistart import MultistartStats, multistart
from .pool import ElitePool, Solution
from .score import biased_r, pair_score

__all__ = [
    "run_assembly",
    "AssemblyResult",
    "multistart",
    "MultistartStats",
    "local_search",
    "LocalSearchStats",
    "PartitionState",
    "build_aux_instance",
    "AuxInstance",
    "greedy_assemble",
    "greedy_labels_for_graph",
    "adjacency_of_graph",
    "combine_solutions",
    "perturbed_graph",
    "ElitePool",
    "Solution",
    "biased_r",
    "pair_score",
]
