"""Auxiliary re-optimization instances for the local search.

Each local-search step is defined by a pair ``{R, S}`` of adjacent cells and
a variant (paper Fig. 3):

- ``L2``  : the instance contains the *uncontracted* fragments of R and S.
- ``L2+`` : additionally, every neighbor cell of R or S as one *contracted*
  unit.
- ``L2*`` : the neighbor cells are uncontracted as well.

Edges to cells outside the instance contribute the same amount to the cut no
matter how the instance is repartitioned, so they are omitted; the step
compares only the *internal* cost before and after re-running the greedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from .cells import PartitionState

__all__ = ["AuxInstance", "build_aux_instance"]


@dataclass
class AuxInstance:
    """A small contraction instance derived from a pair of cells.

    ``unit_frags[i]`` lists the fragments behind unit ``i`` (a single
    fragment for uncontracted units, a whole cell for contracted ones);
    ``unit_cell[i]`` is the current cell of unit ``i``.  ``edges`` is the
    internal (unit, unit, weight) list; ``uncontracted`` flags units that
    are single fragments from uncontracted cells.
    """

    unit_sizes: np.ndarray
    unit_frags: List[List[int]]
    unit_cell: np.ndarray
    edges: List[Tuple[int, int, float]]
    uncontracted: np.ndarray

    def adjacency(self) -> List[Dict[int, float]]:
        """Adjacency-dict form consumed by the greedy."""
        adj: List[Dict[int, float]] = [dict() for _ in range(len(self.unit_sizes))]
        for a, b, w in self.edges:
            adj[a][b] = adj[a].get(b, 0.0) + w
            adj[b][a] = adj[b].get(a, 0.0) + w
        return adj

    def internal_cost(self, unit_groups: np.ndarray) -> float:
        """Cut weight inside the instance under a unit grouping."""
        return float(
            sum(w for a, b, w in self.edges if unit_groups[a] != unit_groups[b])
        )

    @property
    def current_internal_cost(self) -> float:
        """Internal cut under the current cell assignment."""
        return self.internal_cost(self.unit_cell)


def build_aux_instance(
    state: PartitionState, R: int, S: int, variant: str
) -> AuxInstance:
    """Build the auxiliary instance for pair ``{R, S}`` under ``variant``."""
    if variant not in ("L2", "L2+", "L2*"):
        raise ValueError(f"unknown local search variant {variant!r}")
    g = state.g
    neighbors: Set[int] = (set(state.H[R]) | set(state.H[S])) - {R, S}

    if variant == "L2":
        uncontracted_cells = [R, S]
        contracted_cells: List[int] = []
    elif variant == "L2+":
        uncontracted_cells = [R, S]
        contracted_cells = sorted(neighbors)
    else:  # L2*
        uncontracted_cells = [R, S] + sorted(neighbors)
        contracted_cells = []

    unit_sizes: List[int] = []
    unit_frags: List[List[int]] = []
    unit_cell: List[int] = []
    uncontracted_flags: List[bool] = []
    unit_of_frag: Dict[int, int] = {}
    unit_of_cell: Dict[int, int] = {}

    for c in uncontracted_cells:
        for v in state.cell_members[c]:
            unit_of_frag[v] = len(unit_sizes)
            unit_sizes.append(int(g.vsize[v]))
            unit_frags.append([v])
            unit_cell.append(c)
            uncontracted_flags.append(True)
    for c in contracted_cells:
        unit_of_cell[c] = len(unit_sizes)
        unit_sizes.append(state.cell_size[c])
        unit_frags.append(list(state.cell_members[c]))
        unit_cell.append(c)
        uncontracted_flags.append(False)

    # internal edges touching an uncontracted fragment, via the fragment graph
    edges: List[Tuple[int, int, float]] = []
    xadj, adjncy, eidw = g.xadj, g.adjncy, g.ewgt[g.eid]
    for v, a in unit_of_frag.items():
        lo, hi = xadj[v], xadj[v + 1]
        for y, w in zip(adjncy[lo:hi], eidw[lo:hi]):
            y = int(y)
            b = unit_of_frag.get(y)
            if b is not None:
                if y > v:  # each fragment-fragment edge once
                    edges.append((a, b, float(w)))
            else:
                b = unit_of_cell.get(int(state.labels[y]))
                if b is not None:
                    edges.append((a, b, float(w)))
    # edges between two contracted neighbor cells, from the H view
    for i, c in enumerate(contracted_cells):
        for d, w in state.H[c].items():
            if d in unit_of_cell and d > c:
                edges.append((unit_of_cell[c], unit_of_cell[d], float(w)))

    return AuxInstance(
        unit_sizes=np.asarray(unit_sizes, dtype=np.int64),
        unit_frags=unit_frags,
        unit_cell=np.asarray(unit_cell, dtype=np.int64),
        edges=edges,
        uncontracted=np.asarray(uncontracted_flags, dtype=bool),
    )
