"""Auxiliary re-optimization instances for the local search.

Each local-search step is defined by a pair ``{R, S}`` of adjacent cells and
a variant (paper Fig. 3):

- ``L2``  : the instance contains the *uncontracted* fragments of R and S.
- ``L2+`` : additionally, every neighbor cell of R or S as one *contracted*
  unit.
- ``L2*`` : the neighbor cells are uncontracted as well.

Edges to cells outside the instance contribute the same amount to the cut no
matter how the instance is repartitioned, so they are omitted; the step
compares only the *internal* cost before and after re-running the greedy.

The production builder assembles the instance from the per-cell adjacency
arrays cached on :class:`~repro.assembly.cells.PartitionState` (one mask
over the cells' flattened incidence instead of a Python loop per half-edge)
and is bit-identical to the retained scalar
:func:`build_aux_instance_reference` — including the *order* of the edge
list, which the greedy's RNG consumption depends on through the
adjacency-dict insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from .cells import PartitionState

__all__ = ["AuxInstance", "build_aux_instance", "build_aux_instance_reference"]


@dataclass
class AuxInstance:
    """A small contraction instance derived from a pair of cells.

    ``unit_frags[i]`` lists the fragments behind unit ``i`` (a single
    fragment for uncontracted units, a whole cell for contracted ones);
    ``unit_cell[i]`` is the current cell of unit ``i``.  The internal edges
    are stored as flat arrays ``edge_a/edge_b/edge_w`` (the legacy ``edges``
    tuple view remains available); ``uncontracted`` flags units that are
    single fragments from uncontracted cells.
    """

    unit_sizes: np.ndarray
    unit_frags: List[List[int]]
    unit_cell: np.ndarray
    edge_a: np.ndarray
    edge_b: np.ndarray
    edge_w: np.ndarray
    uncontracted: np.ndarray

    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        """The internal edges as ``(unit, unit, weight)`` tuples."""
        return list(zip(self.edge_a.tolist(), self.edge_b.tolist(), self.edge_w.tolist()))

    def adjacency(self) -> List[Dict[int, float]]:
        """Adjacency-dict form consumed by the greedy."""
        adj: List[Dict[int, float]] = [dict() for _ in range(len(self.unit_sizes))]
        for a, b, w in zip(self.edge_a.tolist(), self.edge_b.tolist(), self.edge_w.tolist()):
            adj[a][b] = adj[a].get(b, 0.0) + w
            adj[b][a] = adj[b].get(a, 0.0) + w
        return adj

    def internal_cost(self, unit_groups: np.ndarray) -> float:
        """Cut weight inside the instance under a unit grouping."""
        if len(self.edge_a) == 0:
            return 0.0
        unit_groups = np.asarray(unit_groups)
        cut = unit_groups[self.edge_a] != unit_groups[self.edge_b]
        return float(self.edge_w[cut].sum())

    @property
    def current_internal_cost(self) -> float:
        """Internal cut under the current cell assignment."""
        return self.internal_cost(self.unit_cell)


def _instance_cells(
    state: PartitionState, R: int, S: int, variant: str
) -> Tuple[List[int], List[int]]:
    """The (uncontracted, contracted) cell lists of a pair's instance."""
    if variant not in ("L2", "L2+", "L2*"):
        raise ValueError(f"unknown local search variant {variant!r}")
    neighbors: Set[int] = (set(state.H[R]) | set(state.H[S])) - {R, S}
    if variant == "L2":
        return [R, S], []
    if variant == "L2+":
        return [R, S], sorted(neighbors)
    return [R, S] + sorted(neighbors), []  # L2*


def build_aux_instance(
    state: PartitionState, R: int, S: int, variant: str
) -> AuxInstance:
    """Build the auxiliary instance for pair ``{R, S}`` under ``variant``.

    Vectorized: units and edges come from the cached per-cell incidence
    arrays (:meth:`PartitionState.cell_adjacency`); one boolean mask over
    the flattened half-edges replaces the per-fragment Python loop while
    preserving the reference edge order exactly.
    """
    g = state.g
    uncontracted_cells, contracted_cells = _instance_cells(state, R, S, variant)

    # stamp the uncontracted fragments with their unit ids
    state._stamp_clock += 1
    clock = state._stamp_clock
    frag_unit, frag_stamp = state._frag_unit, state._frag_stamp
    per_cell = [state.cell_adjacency(c) for c in uncontracted_cells]
    base = 0
    bases: List[int] = []
    for (mem, _, _, _, _) in per_cell:
        frag_unit[mem] = np.arange(base, base + len(mem), dtype=np.int64)
        frag_stamp[mem] = clock
        bases.append(base)
        base += len(mem)
    n_unc = base

    unit_sizes = np.concatenate(
        [g.vsize[mem] for (mem, _, _, _, _) in per_cell]
        + [np.asarray([state.cell_size[c] for c in contracted_cells], dtype=np.int64)]
    ).astype(np.int64)
    unit_frags: List[List[int]] = []
    for (mem, _, _, _, _) in per_cell:
        unit_frags.extend([int(v)] for v in mem)
    for c in contracted_cells:
        unit_frags.append(list(state.cell_members[c]))
    unit_cell = np.concatenate(
        [
            np.full(len(mem), c, dtype=np.int64)
            for c, (mem, _, _, _, _) in zip(uncontracted_cells, per_cell)
        ]
        + [np.asarray(contracted_cells, dtype=np.int64)]
    )
    uncontracted_flags = np.zeros(len(unit_sizes), dtype=bool)
    uncontracted_flags[:n_unc] = True

    # internal edges touching an uncontracted fragment: one pass over the
    # concatenated incidence of the uncontracted cells, in CSR order (the
    # same order the scalar reference walks)
    vv = np.concatenate([p[1] for p in per_cell]) if per_cell else np.empty(0, np.int64)
    aa = np.concatenate(
        [p[2] + b for p, b in zip(per_cell, bases)]
    ) if per_cell else np.empty(0, np.int64)
    yy = np.concatenate([p[3] for p in per_cell]) if per_cell else np.empty(0, np.int64)
    ww = np.concatenate([p[4] for p in per_cell]) if per_cell else np.empty(0, np.float64)

    in_frag = frag_stamp[yy] == clock
    if contracted_cells:
        contr = np.asarray(contracted_cells, dtype=np.int64)  # sorted
        lab_y = state.labels[yy]
        ci = np.searchsorted(contr, lab_y)
        ci = np.minimum(ci, len(contr) - 1)
        cell_hit = contr[ci] == lab_y
        b_cell = n_unc + ci
    else:
        cell_hit = np.zeros(len(yy), dtype=bool)
        b_cell = np.zeros(len(yy), dtype=np.int64)
    b_unit = np.where(in_frag, frag_unit[yy], b_cell)
    # frag-frag edges count once (from the lower endpoint); frag-cell edges
    # count for every incident half-edge, as in the reference
    keep = np.where(in_frag, yy > vv, cell_hit)
    edge_a = aa[keep]
    edge_b = b_unit[keep]
    edge_w = ww[keep]

    # edges between two contracted neighbor cells, from the H view (dict
    # iteration order preserved — it feeds the greedy's RNG order)
    if contracted_cells:
        unit_of_cell = {c: n_unc + i for i, c in enumerate(contracted_cells)}
        extra_a: List[int] = []
        extra_b: List[int] = []
        extra_w: List[float] = []
        for c in contracted_cells:
            for d, w in state.H[c].items():
                if d in unit_of_cell and d > c:
                    extra_a.append(unit_of_cell[c])
                    extra_b.append(unit_of_cell[d])
                    extra_w.append(float(w))
        if extra_a:
            edge_a = np.concatenate([edge_a, np.asarray(extra_a, dtype=np.int64)])
            edge_b = np.concatenate([edge_b, np.asarray(extra_b, dtype=np.int64)])
            edge_w = np.concatenate([edge_w, np.asarray(extra_w, dtype=np.float64)])

    return AuxInstance(
        unit_sizes=unit_sizes,
        unit_frags=unit_frags,
        unit_cell=unit_cell,
        edge_a=edge_a.astype(np.int64),
        edge_b=edge_b.astype(np.int64),
        edge_w=edge_w.astype(np.float64),
        uncontracted=uncontracted_flags,
    )


def build_aux_instance_reference(
    state: PartitionState, R: int, S: int, variant: str
) -> AuxInstance:
    """Scalar (half-edge-at-a-time) reference for :func:`build_aux_instance`.

    Retained for equivalence tests and the hot-path benchmark; produces the
    identical instance, including edge order.
    """
    g = state.g
    uncontracted_cells, contracted_cells = _instance_cells(state, R, S, variant)

    unit_sizes: List[int] = []
    unit_frags: List[List[int]] = []
    unit_cell: List[int] = []
    uncontracted_flags: List[bool] = []
    unit_of_frag: Dict[int, int] = {}
    unit_of_cell: Dict[int, int] = {}

    for c in uncontracted_cells:
        for v in state.cell_members[c]:
            unit_of_frag[v] = len(unit_sizes)
            unit_sizes.append(int(g.vsize[v]))
            unit_frags.append([v])
            unit_cell.append(c)
            uncontracted_flags.append(True)
    for c in contracted_cells:
        unit_of_cell[c] = len(unit_sizes)
        unit_sizes.append(state.cell_size[c])
        unit_frags.append(list(state.cell_members[c]))
        unit_cell.append(c)
        uncontracted_flags.append(False)

    # internal edges touching an uncontracted fragment, via the fragment graph
    edges: List[Tuple[int, int, float]] = []
    xadj, adjncy, eidw = g.xadj, g.adjncy, g.half_edge_weights()
    for v, a in unit_of_frag.items():
        lo, hi = xadj[v], xadj[v + 1]
        for y, w in zip(adjncy[lo:hi], eidw[lo:hi]):
            y = int(y)
            b = unit_of_frag.get(y)
            if b is not None:
                if y > v:  # each fragment-fragment edge once
                    edges.append((a, b, float(w)))
            else:
                b = unit_of_cell.get(int(state.labels[y]))
                if b is not None:
                    edges.append((a, b, float(w)))
    # edges between two contracted neighbor cells, from the H view
    for c in contracted_cells:
        for d, w in state.H[c].items():
            if d in unit_of_cell and d > c:
                edges.append((unit_of_cell[c], unit_of_cell[d], float(w)))

    return AuxInstance(
        unit_sizes=np.asarray(unit_sizes, dtype=np.int64),
        unit_frags=unit_frags,
        unit_cell=np.asarray(unit_cell, dtype=np.int64),
        edge_a=np.asarray([e[0] for e in edges], dtype=np.int64),
        edge_b=np.asarray([e[1] for e in edges], dtype=np.int64),
        edge_w=np.asarray([e[2] for e in edges], dtype=np.float64),
        uncontracted=np.asarray(uncontracted_flags, dtype=bool),
    )
