"""The randomized greedy score function (paper Section 3, "Greedy Algorithm").

    score({u, v}) = r * w{u, v} * (sqrt(1/s(u)) + sqrt(1/s(v)))

The intuition given in the paper: "we want to merge vertices that are
relatively small but tightly connected", because a road-network region of
size ``k`` has about ``O(sqrt(k))`` outgoing edges, and adding the two
independent fractions weights the smaller region higher.  Large ``w`` and
small sizes make this expression *large*, so the greedy picks the pair with
the **maximum** score.  (The condensed paper says "minimizes", which
contradicts its own intuition and formula; the full IPDPS version selects
the best-scoring pair in the maximizing sense, and that is what we do —
see DESIGN.md.)

The randomization term ``r`` is biased towards 1: with probability ``a`` it
is uniform in ``[0, b]``, otherwise uniform in ``[b, 1]`` (paper defaults
``a = 0.03``, ``b = 0.6``) — an occasional strong demotion of a top pair
that diversifies multistart iterations without drowning the deterministic
signal.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["biased_r", "pair_score"]


def biased_r(rng: np.random.Generator, a: float = 0.03, b: float = 0.6) -> float:
    """Draw the biased randomization term ``r``."""
    if rng.random() < a:
        return b * rng.random()
    return b + (1.0 - b) * rng.random()


def pair_score(
    w: float,
    su: int,
    sv: int,
    rng: np.random.Generator,
    a: float = 0.03,
    b: float = 0.6,
) -> float:
    """Score of merging a pair of adjacent vertices (higher = merge first)."""
    r = biased_r(rng, a, b)
    return r * w * (math.sqrt(1.0 / su) + math.sqrt(1.0 / sv))
