"""Minimum s-t cut extraction — the operation natural cuts are made of.

``min_st_cut`` takes an undirected capacitated edge list, runs a max-flow
solver, and returns the cut value, the source-side vertex mask, and the ids
of the cut edges.  Three backends:

- ``"push_relabel"`` — the paper's solver (FIFO + global relabeling), default.
- ``"dinic"`` / ``"edmonds_karp"`` — reference solvers for cross-checking.
- ``"scipy"`` — ``scipy.sparse.csgraph.maximum_flow`` (C implementation) for
  integer capacities; an engineering escape hatch when subproblems get big.

Side-extraction convention (pinned by ``tests/test_flow_mincut_sides.py``):
when the min cut is not unique, ``push_relabel`` returns the
**source-maximal** side (complement of the residual sink-reachable set)
while the other backends return the **source-minimal** side (residual BFS
from ``s``).  Each convention is deterministic, but masks differ across
backends — which is why cut-engine cache keys are salted with the solver
name (``repro.cutengine.base.CutEngine.cache_key``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bfs_flow import dinic, edmonds_karp
from .network import FlowNetwork
from .push_relabel import max_preflow

__all__ = ["MinCutResult", "min_st_cut", "SOLVERS"]

SOLVERS = ("push_relabel", "dinic", "edmonds_karp", "scipy")


@dataclass
class MinCutResult:
    """Result of a minimum s-t cut computation.

    Attributes
    ----------
    value : total capacity crossing the cut.
    source_side : boolean mask over vertices; ``True`` = s-side.
    cut_edges : indices (into the input edge list) of edges crossing the cut.
    """

    value: float
    source_side: np.ndarray
    cut_edges: np.ndarray


def _scipy_mincut(n, edge_u, edge_v, cap, s, t):
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_flow

    icap = np.rint(cap).astype(np.int64)
    if not np.allclose(icap, cap):
        raise ValueError("scipy backend requires integer capacities")
    rows = np.concatenate([edge_u, edge_v])
    cols = np.concatenate([edge_v, edge_u])
    data = np.concatenate([icap, icap])
    mat = csr_matrix((data, (rows, cols)), shape=(n, n))
    mat.sum_duplicates()
    res = maximum_flow(mat, int(s), int(t))
    residual = mat - res.flow
    residual.data = (residual.data > 0).astype(np.int64)
    residual.eliminate_zeros()
    from scipy.sparse.csgraph import breadth_first_order

    try:
        order = breadth_first_order(residual, int(s), directed=True, return_predecessors=False)
    except Exception:  # pragma: no cover - isolated source corner case
        order = np.asarray([s])
    side = np.zeros(n, dtype=bool)
    side[order] = True
    return float(res.flow_value), side


def min_st_cut(
    n: int,
    edge_u,
    edge_v,
    cap,
    s: int,
    t: int,
    solver: str = "push_relabel",
) -> MinCutResult:
    """Compute a minimum s-t cut of an undirected capacitated graph."""
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    cap = np.asarray(cap, dtype=np.float64)
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; choose from {SOLVERS}")

    if solver == "scipy":
        value, side = _scipy_mincut(n, edge_u, edge_v, cap, s, t)
    else:
        net = FlowNetwork(n, edge_u, edge_v, cap)
        if solver == "push_relabel":
            value, _, side = max_preflow(net, s, t)
        elif solver == "dinic":
            value, _, side = dinic(net, s, t)
        else:
            value, _, side = edmonds_karp(net, s, t)

    cut_edges = np.flatnonzero(side[edge_u] != side[edge_v]).astype(np.int64)
    return MinCutResult(value=value, source_side=side, cut_edges=cut_edges)
