"""Flow-network representation for s-t min-cut subproblems.

Natural-cut detection solves many small min-cut instances (paper Fig. 1):
the BFS tree with its core contracted to ``s`` and its ring contracted to
``t``, edge weights as capacities.  This module provides the arc-array
representation shared by all solvers.

Arcs are stored in pairs: arc ``2e`` is ``u -> v`` and arc ``2e + 1`` is
``v -> u`` for the ``e``-th undirected edge, so ``rev(a) == a ^ 1``.  Both
directions carry the full undirected capacity, which makes the directed
max-flow value equal the undirected min-cut weight.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """Directed residual network built from undirected capacitated edges."""

    __slots__ = ("n", "n_arcs", "arc_to", "arc_cap", "adj_start", "adj_arcs")

    def __init__(self, n: int, edge_u, edge_v, cap) -> None:
        edge_u = np.asarray(edge_u, dtype=np.int64)
        edge_v = np.asarray(edge_v, dtype=np.int64)
        cap = np.asarray(cap, dtype=np.float64)
        m = len(edge_u)
        self.n = int(n)
        self.n_arcs = 2 * m
        self.arc_to = np.empty(2 * m, dtype=np.int64)
        self.arc_to[0::2] = edge_v
        self.arc_to[1::2] = edge_u
        self.arc_cap = np.empty(2 * m, dtype=np.float64)
        self.arc_cap[0::2] = cap
        self.arc_cap[1::2] = cap

        tails = np.empty(2 * m, dtype=np.int64)
        tails[0::2] = edge_u
        tails[1::2] = edge_v
        order = np.argsort(tails, kind="stable")
        self.adj_arcs = order.astype(np.int64)
        counts = np.bincount(tails, minlength=n)
        self.adj_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.adj_start[1:])

    def arcs_of(self, v: int) -> np.ndarray:
        """Arc ids leaving vertex ``v``."""
        return self.adj_arcs[self.adj_start[v] : self.adj_start[v + 1]]

    @staticmethod
    def rev(a: int) -> int:
        """The paired reverse arc (``a ^ 1``)."""
        return a ^ 1

    def edge_of_arc(self, a: int) -> int:
        """The undirected edge index an arc belongs to."""
        return a >> 1
