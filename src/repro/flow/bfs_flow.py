"""Augmenting-path max-flow solvers: Dinic and Edmonds–Karp.

These serve as independent reference implementations to cross-check the
push-relabel solver (the paper's production choice) in tests, and as
alternative backends.  Dinic is also competitive on the small, shallow
natural-cut subproblems.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from .network import FlowNetwork

__all__ = ["dinic", "edmonds_karp"]

_EPS = 1e-12


def _level_graph(net: FlowNetwork, flow: np.ndarray, s: int, t: int) -> np.ndarray:
    level = np.full(net.n, -1, dtype=np.int64)
    level[s] = 0
    q = deque([s])
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    while q:
        u = q.popleft()
        for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
            a = int(a)
            w = int(arc_to[a])
            if level[w] < 0 and arc_cap[a] - flow[a] > _EPS:
                level[w] = level[u] + 1
                q.append(w)
    return level


def dinic(net: FlowNetwork, s: int, t: int) -> Tuple[float, np.ndarray, np.ndarray]:
    """Dinic's algorithm. Returns ``(value, flow, source_side)``."""
    if s == t:
        raise ValueError("source equals sink")
    n = net.n
    flow = np.zeros(net.n_arcs, dtype=np.float64)
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    value = 0.0
    while True:
        level = _level_graph(net, flow, s, t)
        if level[t] < 0:
            break
        it = adj_start[:-1].astype(np.int64)
        # iterative blocking-flow DFS
        while True:
            # find an augmenting path in the level graph
            path: list[int] = []
            v = s
            while v != t:
                advanced = False
                while it[v] < adj_start[v + 1]:
                    a = int(adj_arcs[it[v]])
                    w = int(arc_to[a])
                    if arc_cap[a] - flow[a] > _EPS and level[w] == level[v] + 1:
                        path.append(a)
                        v = w
                        advanced = True
                        break
                    it[v] += 1
                if not advanced:
                    if v == s:
                        path = []
                        break
                    # retreat: dead-end vertex; pop last arc and advance past it
                    level[v] = -1
                    a = path.pop()
                    v = int(arc_to[a ^ 1])
                    it[v] += 1
            if not path:
                break
            bottleneck = min(arc_cap[a] - flow[a] for a in path)
            for a in path:
                flow[a] += bottleneck
                flow[a ^ 1] -= bottleneck
            value += float(bottleneck)
    level = _level_graph(net, flow, s, t)
    source_side = level >= 0
    return value, flow, source_side


def edmonds_karp(net: FlowNetwork, s: int, t: int) -> Tuple[float, np.ndarray, np.ndarray]:
    """Edmonds–Karp (BFS augmenting paths). Returns ``(value, flow, side)``."""
    if s == t:
        raise ValueError("source equals sink")
    n = net.n
    flow = np.zeros(net.n_arcs, dtype=np.float64)
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    value = 0.0
    pred = np.full(n, -1, dtype=np.int64)  # arc used to reach each vertex
    while True:
        pred[:] = -1
        pred[s] = -2
        q = deque([s])
        found = False
        while q and not found:
            u = q.popleft()
            for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
                a = int(a)
                w = int(arc_to[a])
                if pred[w] == -1 and arc_cap[a] - flow[a] > _EPS:
                    pred[w] = a
                    if w == t:
                        found = True
                        break
                    q.append(w)
        if not found:
            break
        # trace the path back and augment
        bottleneck = np.inf
        v = t
        while v != s:
            a = int(pred[v])
            bottleneck = min(bottleneck, arc_cap[a] - flow[a])
            v = int(arc_to[a ^ 1])
        v = t
        while v != s:
            a = int(pred[v])
            flow[a] += bottleneck
            flow[a ^ 1] -= bottleneck
            v = int(arc_to[a ^ 1])
        value += float(bottleneck)
    # source side = residual-reachable from s
    side = np.zeros(n, dtype=bool)
    side[s] = True
    q = deque([s])
    while q:
        u = q.popleft()
        for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
            a = int(a)
            w = int(arc_to[a])
            if not side[w] and arc_cap[a] - flow[a] > _EPS:
                side[w] = True
                q.append(w)
    return value, flow, side
