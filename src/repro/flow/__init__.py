"""Max-flow / minimum s-t cut substrate."""

from .bfs_flow import dinic, edmonds_karp
from .mincut import SOLVERS, MinCutResult, min_st_cut
from .network import FlowNetwork
from .push_relabel import max_preflow

__all__ = [
    "FlowNetwork",
    "max_preflow",
    "dinic",
    "edmonds_karp",
    "min_st_cut",
    "MinCutResult",
    "SOLVERS",
]
