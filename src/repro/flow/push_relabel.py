"""FIFO push-relabel max-flow (Goldberg–Tarjan), first phase only.

This is the solver the paper implements: "the version using FIFO order,
frequent global relabelings, and the *send* operation performs best"
(Section 5).  We reproduce exactly that configuration:

- **FIFO**: active vertices are processed from a queue; a discharged vertex
  that still has excess after a relabel is re-appended.
- **Frequent global relabeling**: exact distance labels are recomputed by a
  backward BFS from the sink after a work budget proportional to the arc
  count is exhausted.
- **Send / first phase only**: we compute a maximum *preflow* into ``t``,
  which already determines both the max-flow value and a minimum cut — the
  second phase (converting the preflow into a flow) is unnecessary for
  partitioning and is skipped, as in the paper's use.
- **Gap heuristic**: when some height ``0 < h < n`` becomes empty, every
  vertex above the gap is lifted to ``n`` (it can no longer reach ``t``).

At first-phase termination the minimum cut is ``(V \\ T*, T*)`` where ``T*``
is the set of vertices that can still reach ``t`` in the residual network.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from ..graph.csr import gather_csr_rows
from .network import FlowNetwork

__all__ = ["max_preflow", "global_relabel_reference"]


def _global_relabel(net: FlowNetwork, flow: np.ndarray, s: int, t: int) -> np.ndarray:
    """Exact residual distances to ``t`` (backward BFS); unreachable -> n.

    Level-synchronous frontier kernel: each distance level expands all of
    its vertices' incidence lists with one CSR gather.  BFS distances are
    order-independent, so the output is bit-identical to
    :func:`global_relabel_reference`.
    """
    n = net.n
    h = np.full(n, n, dtype=np.int64)
    h[t] = 0
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    frontier = np.asarray([t], dtype=np.int64)
    d = 0
    while len(frontier):
        d += 1
        arcs = gather_csr_rows(adj_start, adj_arcs, frontier)
        if len(arcs) == 0:
            break
        w = arc_to[arcs]
        # residual arc w -> u exists iff rev(a) = a^1 has residual capacity;
        # h[t] = 0 already excludes t from the h == n test
        keep = (h[w] == n) & (arc_cap[arcs ^ 1] - flow[arcs ^ 1] > 0)
        w = w[keep]
        if len(w) == 0:
            break
        frontier = np.unique(w)
        h[frontier] = d
    h[s] = n
    return h


def global_relabel_reference(
    net: FlowNetwork, flow: np.ndarray, s: int, t: int
) -> np.ndarray:
    """Scalar (deque) reference for the backward global-relabel BFS.

    Retained for equivalence tests and the hot-path benchmark.
    """
    n = net.n
    h = np.full(n, n, dtype=np.int64)
    h[t] = 0
    q = deque([t])
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    while q:
        u = q.popleft()
        du = h[u]
        for a in adj_arcs[adj_start[u] : adj_start[u + 1]]:
            a = int(a)
            w = int(arc_to[a])
            # residual arc w -> u exists iff rev(a) = a^1 has residual capacity
            if h[w] == n and w != t and arc_cap[a ^ 1] - flow[a ^ 1] > 0:
                h[w] = du + 1
                q.append(w)
    h[s] = n
    return h


def max_preflow(
    net: FlowNetwork,
    s: int,
    t: int,
    global_relabel_work: float = 4.0,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Run first-phase FIFO push-relabel.

    Returns ``(value, flow, source_side)``: the max-flow value, per-arc flow
    (a preflow — conservation may fail off the cut), and a boolean mask of
    the min cut's source side.

    ``global_relabel_work``: a global relabel is triggered every
    ``global_relabel_work * n_arcs`` units of discharge work ("frequent
    global relabelings").
    """
    n = net.n
    if s == t:
        raise ValueError("source equals sink")
    flow = np.zeros(net.n_arcs, dtype=np.float64)
    adj_start, adj_arcs, arc_to, arc_cap = (
        net.adj_start,
        net.adj_arcs,
        net.arc_to,
        net.arc_cap,
    )
    excess = np.zeros(n, dtype=np.float64)
    h = _global_relabel(net, flow, s, t)
    cur = adj_start[:-1].astype(np.int64)  # current-arc pointers

    # height occupancy for the gap heuristic
    hcount = np.zeros(2 * n + 1, dtype=np.int64)
    hcount[: n + 1] = np.bincount(h, minlength=n + 1)

    active: deque = deque()
    in_queue = np.zeros(n, dtype=bool)

    def activate(v: int) -> None:
        if v != s and v != t and not in_queue[v] and h[v] < n:
            in_queue[v] = True
            active.append(v)

    # saturate all arcs out of the source
    for a in adj_arcs[adj_start[s] : adj_start[s + 1]]:
        a = int(a)
        c = arc_cap[a]
        if c > 0:
            flow[a] += c
            flow[a ^ 1] -= c
            excess[arc_to[a]] += c
            excess[s] -= c
            activate(int(arc_to[a]))

    work = 0.0
    work_budget = global_relabel_work * max(net.n_arcs, 1)

    while active:
        v = active.popleft()
        in_queue[v] = False
        # discharge v
        while excess[v] > 0 and h[v] < n:
            if cur[v] < adj_start[v + 1]:
                a = int(adj_arcs[cur[v]])
                w = int(arc_to[a])
                res = arc_cap[a] - flow[a]
                if res > 0 and h[v] == h[w] + 1:
                    # send
                    d = min(excess[v], res)
                    flow[a] += d
                    flow[a ^ 1] -= d
                    excess[v] -= d
                    excess[w] += d
                    activate(w)
                else:
                    cur[v] += 1
                    work += 1
            else:
                # relabel v to 1 + min over residual arcs
                old_h = h[v]
                new_h = 2 * n
                lo, hi = adj_start[v], adj_start[v + 1]
                for a in adj_arcs[lo:hi]:
                    a = int(a)
                    if arc_cap[a] - flow[a] > 0:
                        cand = h[arc_to[a]] + 1
                        if cand < new_h:
                            new_h = cand
                work += hi - lo
                hcount[old_h] -= 1
                # gap heuristic: a now-empty level below n strands everything
                # above it on the s-side
                if hcount[old_h] == 0 and 0 < old_h < n:
                    lifted = (h > old_h) & (h < n)
                    lifted[s] = False
                    lifted[t] = False
                    for u in np.flatnonzero(lifted):
                        hcount[h[u]] -= 1
                        h[u] = n
                        hcount[n] += 1
                    if new_h > old_h:  # v itself is above the gap
                        new_h = max(new_h, n)
                h[v] = min(new_h, 2 * n)
                hcount[h[v]] += 1
                cur[v] = adj_start[v]
                if h[v] >= n:
                    break
            if work >= work_budget:
                work = 0.0
                h = _global_relabel(net, flow, s, t)
                hcount[:] = 0
                hcount[: n + 1] = np.bincount(h, minlength=n + 1)
                cur[:] = adj_start[:-1]
                # rebuild the active queue under the new labels
                active.clear()
                in_queue[:] = False
                for u in np.flatnonzero(excess > 0):
                    activate(int(u))
                if not in_queue[v]:
                    break  # v was deactivated (now at height >= n)
        if excess[v] > 0 and h[v] < n:
            activate(v)

    value = float(excess[t])
    # source side of the min cut: vertices that cannot reach t in the residual
    dist = _global_relabel(net, flow, s, t)
    source_side = dist >= n
    source_side[t] = False
    source_side[s] = True
    return value, flow, source_side
