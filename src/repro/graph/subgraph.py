"""Induced subgraph extraction with vertex mappings.

Used by the assembly phase to build auxiliary re-optimization instances
(paper Section 3, "Local Search") and by the rebalancing algorithm for
``G[W]`` (Section 4).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .builder import build_graph
from .graph import Graph

__all__ = ["induced_subgraph"]


def induced_subgraph(g: Graph, vertices: np.ndarray) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """Extract the subgraph induced by ``vertices``.

    Returns ``(sub, sub_to_g, edge_ids)``:

    - ``sub`` — the induced subgraph (vertex ``i`` of ``sub`` is
      ``sub_to_g[i]`` in ``g``; sizes, weights, coordinates carried over).
    - ``sub_to_g`` — the vertex mapping (a copy of ``vertices``).
    - ``edge_ids`` — for each edge of ``sub``, the id of the corresponding
      edge in ``g``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if len(np.unique(vertices)) != len(vertices):
        raise ValueError("vertex set contains duplicates")
    inv = np.full(g.n, -1, dtype=np.int64)
    inv[vertices] = np.arange(len(vertices), dtype=np.int64)

    lu = inv[g.edge_u]
    lv = inv[g.edge_v]
    keep = (lu >= 0) & (lv >= 0)
    edge_ids = np.flatnonzero(keep).astype(np.int64)

    coords = g.coords[vertices] if g.coords is not None else None
    sub = build_graph(
        len(vertices),
        lu[keep],
        lv[keep],
        weights=g.ewgt[keep],
        sizes=g.vsize[vertices],
        coords=coords,
    )
    # build_graph sorts merged edges by (u, v) key; since the induced edges
    # are already simple, the merge is a permutation — recover its order so
    # edge_ids aligns with sub's edge numbering.
    key_sub = sub.edge_u.astype(np.int64) * len(vertices) + sub.edge_v
    key_orig = np.minimum(lu[keep], lv[keep]) * np.int64(len(vertices)) + np.maximum(
        lu[keep], lv[keep]
    )
    order = np.argsort(key_orig, kind="stable")
    assert np.array_equal(np.sort(key_sub), key_orig[order])
    edge_ids = edge_ids[order]
    return sub, vertices.copy(), edge_ids
