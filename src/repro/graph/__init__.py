"""Graph substrate: CSR kernel, contraction, connectivity, small cuts, I/O."""

from .builder import build_graph
from .components import (
    connected_components,
    connected_components_masked,
    is_connected,
    largest_component,
)
from .contraction import ContractionChain, compose_labels, contract, identity_labels
from .graph import Graph
from .subgraph import induced_subgraph
from .traversal import BFSRegion, BFSWorkspace, bfs_order, grow_bfs_region
from .twocuts import bridges, edge_cut_labels, two_cut_classes
from .validation import cut_edges_of_labeling, cut_weight, validate_graph

__all__ = [
    "Graph",
    "build_graph",
    "contract",
    "compose_labels",
    "identity_labels",
    "ContractionChain",
    "connected_components",
    "connected_components_masked",
    "is_connected",
    "largest_component",
    "induced_subgraph",
    "BFSRegion",
    "BFSWorkspace",
    "bfs_order",
    "grow_bfs_region",
    "bridges",
    "edge_cut_labels",
    "two_cut_classes",
    "cut_edges_of_labeling",
    "cut_weight",
    "validate_graph",
]
