"""Bounded breadth-first search primitives.

The natural-cut detector (paper Section 2, "Detecting Natural Cuts") grows,
for each center vertex ``v``, a BFS tree ``T`` until its total vertex size
reaches ``alpha * U``; the *core* is everything added while the tree size was
still below ``alpha * U / f``, and the *ring* is the external neighborhood of
``T``.  This module implements exactly that primitive.

Because thousands of centers are processed per run, the workspace (visit
stamps) is allocated once and reused: each BFS touches only ``O(|T| + |ring|)``
cells, never ``O(n)``.

The production kernels are *frontier-at-a-time*: a whole BFS level is
expanded with one CSR gather, deduplicated in discovery order, and cut at
the exact vertex where the size bound is reached.  They are bit-identical to
the retained scalar references (``grow_bfs_region_reference``,
``bfs_order_reference``) — a FIFO queue appends vertices in exactly the
order of the concatenated adjacency slices of the previous level, so
level-synchronous expansion with stable first-occurrence dedup reproduces
the scalar visit order; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import gather_csr_rows, stable_unique
from .graph import Graph

__all__ = [
    "BFSWorkspace",
    "BFSRegion",
    "grow_bfs_region",
    "grow_bfs_region_reference",
    "bfs_order",
    "bfs_order_reference",
]


class BFSWorkspace:
    """Reusable visit-stamp arrays for repeated local BFS on one graph."""

    def __init__(self, n: int) -> None:
        self._stamp = np.zeros(n, dtype=np.int64)
        self._clock = 0

    def fresh(self) -> int:
        """Start a new traversal epoch; returns the stamp value to use."""
        self._clock += 1
        return self._clock

    @property
    def stamps(self) -> np.ndarray:
        """The raw stamp array (internal use by traversals)."""
        return self._stamp


@dataclass
class BFSRegion:
    """Result of a bounded BFS growth from a center.

    Attributes
    ----------
    tree : vertices of the BFS tree ``T`` in visit order.
    core_count : the first ``core_count`` entries of ``tree`` form the core.
    ring : external neighbors of ``T`` (empty if the BFS exhausted the
        component before hitting the size bound — no cut is possible then).
    tree_size : total vertex size of ``T``.
    """

    tree: np.ndarray
    core_count: int
    ring: np.ndarray
    tree_size: int

    @property
    def core(self) -> np.ndarray:
        """The core vertices (prefix of the BFS order)."""
        return self.tree[: self.core_count]

    @property
    def exhausted(self) -> bool:
        """True when the BFS consumed a whole component (no ring)."""
        return len(self.ring) == 0


def grow_bfs_region(
    g: Graph,
    ws: BFSWorkspace,
    center: int,
    max_size: int,
    core_size: int,
) -> BFSRegion:
    """Grow a BFS tree from ``center`` until its size reaches ``max_size``.

    A vertex belongs to the *core* if, at the moment it was appended, the
    accumulated tree size was still strictly below ``core_size``; since the
    accumulator is monotone, the core is always a prefix of the BFS order.
    The *ring* is the external neighborhood of ``T``.

    Frontier-at-a-time kernel: each level is expanded with one CSR gather
    and cut at the exact prefix where the accumulated size reaches
    ``max_size``.  Output is bit-identical to
    :func:`grow_bfs_region_reference`.
    """
    stamp = ws.fresh()
    marks = ws.stamps
    xadj, adjncy, vsize = g.xadj, g.adjncy, g.vsize

    marks[center] = stamp
    frontier = np.asarray([center], dtype=np.int64)
    tree_parts = [frontier]
    acc = int(vsize[center])
    core_count = 1

    while len(frontier) and acc < max_size:
        cand = gather_csr_rows(xadj, adjncy, frontier)
        cand = cand[marks[cand] != stamp]
        if len(cand) == 0:
            break
        new = stable_unique(cand).astype(np.int64)
        # size-bounded prefix: the scalar loop stops appending right after
        # the vertex whose size pushes the accumulator to max_size
        csum = acc + np.cumsum(vsize[new])
        over = np.flatnonzero(csum >= max_size)
        if len(over):
            new = new[: int(over[0]) + 1]
            csum = csum[: len(new)]
        pre = csum - vsize[new]  # tree size just before each append
        core_count += int(np.count_nonzero(pre < core_size))
        acc = int(csum[-1])
        marks[new] = stamp
        tree_parts.append(new)
        frontier = new

    tree_arr = np.concatenate(tree_parts) if len(tree_parts) > 1 else tree_parts[0]

    # ring: still-unvisited neighbors of the tree, in first-touch order
    ring = gather_csr_rows(xadj, adjncy, tree_arr)
    ring = stable_unique(ring[marks[ring] != stamp]).astype(np.int64)
    return BFSRegion(
        tree=tree_arr,
        core_count=core_count,
        ring=ring,
        tree_size=acc,
    )


def grow_bfs_region_reference(
    g: Graph,
    ws: BFSWorkspace,
    center: int,
    max_size: int,
    core_size: int,
) -> BFSRegion:
    """Scalar (vertex-at-a-time) reference for :func:`grow_bfs_region`.

    Retained for equivalence tests and the hot-path benchmark; the
    vectorized kernel must reproduce this output exactly.
    """
    stamp = ws.fresh()
    marks = ws.stamps
    xadj, adjncy, vsize = g.xadj, g.adjncy, g.vsize

    tree = [center]
    marks[center] = stamp
    acc = int(vsize[center])
    core_count = 1
    head = 0
    while head < len(tree) and acc < max_size:
        u = tree[head]
        head += 1
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            wi = int(w)
            if marks[wi] != stamp:
                marks[wi] = stamp
                if acc < core_size:
                    core_count += 1
                tree.append(wi)
                acc += int(vsize[wi])
                if acc >= max_size:
                    break

    tree_arr = np.asarray(tree, dtype=np.int64)

    ring_stamp = ws.fresh()  # distinct epoch so ring marks don't alias tree marks
    ring = []
    for u in tree_arr:
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            wi = int(w)
            if marks[wi] != stamp and marks[wi] != ring_stamp:
                marks[wi] = ring_stamp
                ring.append(wi)
    return BFSRegion(
        tree=tree_arr,
        core_count=core_count,
        ring=np.asarray(ring, dtype=np.int64),
        tree_size=acc,
    )


def bfs_order(g: Graph, source: int) -> np.ndarray:
    """Full BFS visit order from ``source`` (its connected component only).

    Level-synchronous frontier expansion; bit-identical to
    :func:`bfs_order_reference`.
    """
    marks = np.zeros(g.n, dtype=bool)
    marks[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    parts = [frontier]
    xadj, adjncy = g.xadj, g.adjncy
    while len(frontier):
        cand = gather_csr_rows(xadj, adjncy, frontier)
        cand = cand[~marks[cand]]
        if len(cand) == 0:
            break
        new = stable_unique(cand).astype(np.int64)
        marks[new] = True
        parts.append(new)
        frontier = new
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def bfs_order_reference(g: Graph, source: int) -> np.ndarray:
    """Scalar (deque) reference for :func:`bfs_order`."""
    marks = np.zeros(g.n, dtype=bool)
    order = [source]
    marks[source] = True
    head = 0
    xadj, adjncy = g.xadj, g.adjncy
    while head < len(order):
        u = order[head]
        head += 1
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            if not marks[w]:
                marks[w] = True
                order.append(int(w))
    return np.asarray(order, dtype=np.int64)
