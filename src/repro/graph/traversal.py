"""Bounded breadth-first search primitives.

The natural-cut detector (paper Section 2, "Detecting Natural Cuts") grows,
for each center vertex ``v``, a BFS tree ``T`` until its total vertex size
reaches ``alpha * U``; the *core* is everything added while the tree size was
still below ``alpha * U / f``, and the *ring* is the external neighborhood of
``T``.  This module implements exactly that primitive.

Because thousands of centers are processed per run, the workspace (visit
stamps) is allocated once and reused: each BFS touches only ``O(|T| + |ring|)``
cells, never ``O(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = ["BFSWorkspace", "BFSRegion", "grow_bfs_region", "bfs_order"]


class BFSWorkspace:
    """Reusable visit-stamp arrays for repeated local BFS on one graph."""

    def __init__(self, n: int) -> None:
        self._stamp = np.zeros(n, dtype=np.int64)
        self._clock = 0

    def fresh(self) -> int:
        """Start a new traversal epoch; returns the stamp value to use."""
        self._clock += 1
        return self._clock

    @property
    def stamps(self) -> np.ndarray:
        """The raw stamp array (internal use by traversals)."""
        return self._stamp


@dataclass
class BFSRegion:
    """Result of a bounded BFS growth from a center.

    Attributes
    ----------
    tree : vertices of the BFS tree ``T`` in visit order.
    core_count : the first ``core_count`` entries of ``tree`` form the core.
    ring : external neighbors of ``T`` (empty if the BFS exhausted the
        component before hitting the size bound — no cut is possible then).
    tree_size : total vertex size of ``T``.
    """

    tree: np.ndarray
    core_count: int
    ring: np.ndarray
    tree_size: int

    @property
    def core(self) -> np.ndarray:
        """The core vertices (prefix of the BFS order)."""
        return self.tree[: self.core_count]

    @property
    def exhausted(self) -> bool:
        """True when the BFS consumed a whole component (no ring)."""
        return len(self.ring) == 0


def grow_bfs_region(
    g: Graph,
    ws: BFSWorkspace,
    center: int,
    max_size: int,
    core_size: int,
) -> BFSRegion:
    """Grow a BFS tree from ``center`` until its size reaches ``max_size``.

    A vertex belongs to the *core* if, at the moment it was appended, the
    accumulated tree size was still strictly below ``core_size``; since the
    accumulator is monotone, the core is always a prefix of the BFS order.
    The *ring* is collected in a second sweep over the tree's adjacency
    lists (the still-unvisited neighbors).
    """
    stamp = ws.fresh()
    marks = ws.stamps
    xadj, adjncy, vsize = g.xadj, g.adjncy, g.vsize

    tree = [center]
    marks[center] = stamp
    acc = int(vsize[center])
    core_count = 1
    head = 0
    while head < len(tree) and acc < max_size:
        u = tree[head]
        head += 1
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            wi = int(w)
            if marks[wi] != stamp:
                marks[wi] = stamp
                if acc < core_size:
                    core_count += 1
                tree.append(wi)
                acc += int(vsize[wi])
                if acc >= max_size:
                    break

    tree_arr = np.asarray(tree, dtype=np.int64)

    ring_stamp = ws.fresh()  # distinct epoch so ring marks don't alias tree marks
    ring = []
    for u in tree_arr:
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            wi = int(w)
            if marks[wi] != stamp and marks[wi] != ring_stamp:
                marks[wi] = ring_stamp
                ring.append(wi)
    return BFSRegion(
        tree=tree_arr,
        core_count=core_count,
        ring=np.asarray(ring, dtype=np.int64),
        tree_size=acc,
    )


def bfs_order(g: Graph, source: int) -> np.ndarray:
    """Full BFS visit order from ``source`` (its connected component only)."""
    marks = np.zeros(g.n, dtype=bool)
    order = [source]
    marks[source] = True
    head = 0
    xadj, adjncy = g.xadj, g.adjncy
    while head < len(order):
        u = order[head]
        head += 1
        for w in adjncy[xadj[u] : xadj[u + 1]]:
            if not marks[w]:
                marks[w] = True
                order.append(int(w))
    return np.asarray(order, dtype=np.int64)
