"""Shared NumPy kernels for frontier-at-a-time CSR traversal.

All vectorized hot paths (BFS region growth, backward global relabeling,
subproblem gathers, the degree-2 chain scan) reduce to two primitives:

- :func:`gather_csr_rows` — concatenate the CSR slices of a batch of rows
  in row order, without a Python-level loop.  The result order is exactly
  the order a sequential ``for row: for entry in slice`` loop would visit,
  which is what keeps the vectorized kernels bit-identical to their
  scalar references.
- :func:`stable_unique` — first-occurrence deduplication.  ``np.unique``
  sorts; a frontier expansion needs the *discovery* order (the order a
  FIFO queue would append), so duplicates are dropped while the first
  occurrence keeps its position.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_csr_rows", "repeat_rows", "stable_unique"]


def gather_csr_rows(offsets: np.ndarray, data: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenate ``data[offsets[r] : offsets[r + 1]]`` for each row in order.

    Equivalent to ``np.concatenate([data[offsets[r]:offsets[r+1]] for r in
    rows])`` but with a single fancy-index gather.
    """
    starts = offsets[rows]
    counts = offsets[rows + np.int64(1)] - starts
    total = int(counts.sum())
    if total == 0:
        return data[:0]
    # index i of the output maps to starts[r] + (i - first output index of r)
    shifts = np.cumsum(counts) - counts  # first output index per row
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - shifts, counts)
    return data[idx]


def repeat_rows(offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Each row id repeated once per entry of its CSR slice (aligned with
    :func:`gather_csr_rows` output)."""
    counts = offsets[rows + np.int64(1)] - offsets[rows]
    return np.repeat(rows, counts)


def stable_unique(a: np.ndarray) -> np.ndarray:
    """Deduplicate keeping the first occurrence of each value in place."""
    if len(a) <= 1:
        return a
    _, idx = np.unique(a, return_index=True)
    idx.sort()
    return a[idx]
