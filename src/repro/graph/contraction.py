"""Graph contraction by vertex labeling, and mapping composition.

Contraction is the workhorse of both PUNCH phases: the filtering phase
contracts tiny-cut subtrees, degree-2 chains, 2-cut components and natural-cut
fragments; the assembly phase contracts fragments into cells.  All of it is
expressed as *contract by label array*: given ``labels[v] in [0, n')`` the new
graph has one vertex per label, vertex sizes are summed, internal edges vanish
and parallel edges merge with summed weights (paper Section 2, "Filtering
Phase", first paragraphs).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .builder import build_graph
from .graph import Graph

__all__ = [
    "contract",
    "compose_labels",
    "normalize_labels",
    "identity_labels",
    "ContractionChain",
]


def normalize_labels(labels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Renumber arbitrary labels to the dense range ``[0, k)``.

    Returns the dense label array and ``k`` (number of distinct labels).
    """
    labels = np.asarray(labels)
    uniq, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64), int(len(uniq))


def identity_labels(n: int) -> np.ndarray:
    """The identity contraction (every vertex its own group)."""
    return np.arange(n, dtype=np.int64)


def compose_labels(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Compose two contraction maps: result[v] = second[first[v]]."""
    return np.asarray(second)[np.asarray(first)]


def contract(
    g: Graph,
    labels: np.ndarray,
    coords: str | None = "mean",
) -> Tuple[Graph, np.ndarray]:
    """Contract ``g`` according to ``labels``.

    Parameters
    ----------
    g : input graph.
    labels : per-vertex group ids (arbitrary integers; densified internally).
        Vertices with equal labels are merged into one super-vertex.
    coords : ``"mean"`` to carry coordinates as size-weighted centroids of the
        merged groups (if ``g`` has coordinates), ``None`` to drop them.

    Returns
    -------
    (new_graph, dense_labels) : the contracted graph, and the dense label
        array mapping each vertex of ``g`` to its vertex in ``new_graph``.
    """
    labels, k = normalize_labels(labels)
    if len(labels) != g.n:
        raise ValueError("labels must have length g.n")

    vsize = np.bincount(labels, weights=g.vsize, minlength=k).astype(np.int64)

    lu = labels[g.edge_u]
    lv = labels[g.edge_v]
    keep = lu != lv
    new_coords = None
    if coords == "mean" and g.coords is not None:
        w = g.vsize.astype(np.float64)
        tot = np.bincount(labels, weights=w, minlength=k)
        cx = np.bincount(labels, weights=w * g.coords[:, 0], minlength=k) / tot
        cy = np.bincount(labels, weights=w * g.coords[:, 1], minlength=k) / tot
        new_coords = np.stack([cx, cy], axis=1)

    new_g = build_graph(k, lu[keep], lv[keep], weights=g.ewgt[keep], coords=new_coords)
    # rebinds the attribute on a just-built local graph — no shared views of
    # it can exist yet, and the counts build_graph derived are placeholders
    new_g.vsize = vsize  # repro: noqa(REPRO106)
    return new_g, labels


class ContractionChain:
    """Tracks the composition of successive contractions.

    ``chain.map`` always maps *original* vertices to vertices of the current
    (most contracted) graph, so a partition of the contracted graph can be
    projected back: ``partition_of_original = cell_labels[chain.map]``.
    """

    def __init__(self, g: Graph) -> None:
        self.original = g
        self.current = g
        self.map = identity_labels(g.n)

    def apply(self, labels: np.ndarray, coords: Optional[str] = "mean") -> Graph:
        """Contract the current graph by ``labels`` and extend the chain."""
        new_g, dense = contract(self.current, labels, coords=coords)
        self.map = compose_labels(self.map, dense)
        self.current = new_g
        return new_g

    def project(self, cell_labels: np.ndarray) -> np.ndarray:
        """Project a labeling of the current graph back to original vertices."""
        cell_labels = np.asarray(cell_labels)
        if len(cell_labels) != self.current.n:
            raise ValueError("cell_labels must label the current graph")
        return cell_labels[self.map]
