"""Vectorized construction of :class:`~repro.graph.graph.Graph` objects.

The builder takes raw endpoint arrays, canonicalizes them (``u < v``), drops
self-loops, merges parallel edges by summing weights, and assembles the CSR
arrays — all with NumPy primitives (``np.unique`` / ``np.bincount`` /
``np.argsort``) so that graph construction stays fast even for 10^5+ edges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .graph import Graph

__all__ = ["build_graph", "build_csr", "merge_parallel_edges"]


def merge_parallel_edges(n, u, v, w):
    """Canonicalize, drop self-loops, and merge parallel edges.

    Returns ``(edge_u, edge_v, ewgt)`` with ``edge_u < edge_v`` and at most
    one edge per vertex pair (weights of merged edges are summed — the
    paper's contraction rule).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * np.int64(n) + hi
    uniq, inv = np.unique(key, return_inverse=True)
    merged_w = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(merged_w, inv, w)
    edge_u = (uniq // n).astype(np.int32)
    edge_v = (uniq % n).astype(np.int32)
    return edge_u, edge_v, merged_w


def build_csr(n, edge_u, edge_v):
    """Build ``(xadj, adjncy, eid)`` CSR arrays from canonical edge arrays."""
    m = len(edge_u)
    deg = np.bincount(edge_u, minlength=n) + np.bincount(edge_v, minlength=n)
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=xadj[1:])
    # Each undirected edge contributes two half-edges; sort half-edge sources.
    src = np.concatenate([edge_u, edge_v])
    dst = np.concatenate([edge_v, edge_u])
    eids = np.concatenate([np.arange(m, dtype=np.int32)] * 2) if m else np.empty(0, dtype=np.int32)
    order = np.argsort(src, kind="stable")
    adjncy = dst[order].astype(np.int32)
    eid = eids[order]
    return xadj, adjncy, eid


def build_graph(
    n: int,
    u,
    v,
    weights=None,
    sizes=None,
    coords: Optional[np.ndarray] = None,
) -> Graph:
    """Build a :class:`Graph` with ``n`` vertices from endpoint arrays.

    Parameters
    ----------
    n : number of vertices.
    u, v : endpoint arrays (any integer dtype); self-loops dropped, parallel
        edges merged with summed weights.
    weights : per-edge weights, default 1.0 (unweighted — the paper's setting).
    sizes : per-vertex sizes, default 1 (unit sizes — the paper's setting).
    coords : optional ``(n, 2)`` planar coordinates.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same shape")
    if n < 0:
        raise ValueError("n must be non-negative")
    if u.size and (u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n):
        raise ValueError("edge endpoint out of range")
    if weights is None:
        w = np.ones(len(u), dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != u.shape:
            raise ValueError("weights must match edges")
        if w.size and w.min() <= 0:
            raise ValueError("edge weights must be positive")
    if sizes is None:
        vsize = np.ones(n, dtype=np.int64)
    else:
        vsize = np.asarray(sizes, dtype=np.int64)
        if vsize.shape != (n,):
            raise ValueError("sizes must have length n")
        if n and vsize.min() <= 0:
            raise ValueError("vertex sizes must be positive")

    edge_u, edge_v, ewgt = merge_parallel_edges(n, u, v, w)
    xadj, adjncy, eid = build_csr(n, edge_u, edge_v)
    return Graph(xadj, adjncy, eid, edge_u, edge_v, vsize, ewgt, coords=coords)
