"""Cross-cutting structural validation helpers for graphs and labelings."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["validate_graph", "validate_labels", "cut_edges_of_labeling", "cut_weight"]


def validate_graph(g: Graph) -> None:
    """Run all structural invariant checks; raises ``AssertionError``."""
    g.check()


def validate_labels(g: Graph, labels: np.ndarray) -> None:
    """Check that ``labels`` is a valid vertex labeling of ``g``."""
    labels = np.asarray(labels)
    if labels.shape != (g.n,):
        raise ValueError(f"labels must have shape ({g.n},), got {labels.shape}")
    if g.n and labels.min() < 0:
        raise ValueError("labels must be non-negative")


def cut_edges_of_labeling(g: Graph, labels: np.ndarray) -> np.ndarray:
    """Edge ids whose endpoints carry different labels."""
    labels = np.asarray(labels)
    return np.flatnonzero(labels[g.edge_u] != labels[g.edge_v]).astype(np.int64)


def cut_weight(g: Graph, labels: np.ndarray) -> float:
    """Total weight of the cut induced by a vertex labeling (paper's cost)."""
    labels = np.asarray(labels)
    mask = labels[g.edge_u] != labels[g.edge_v]
    return float(g.ewgt[mask].sum())
