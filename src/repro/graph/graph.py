"""Immutable CSR graph kernel.

The whole library operates on :class:`Graph`: a simple, connected-or-not,
undirected graph stored in compressed sparse row (CSR) form with flat NumPy
arrays.  Every vertex carries a positive integer *size* ``s(v)`` and every
undirected edge a positive *weight* ``w(e)``, matching the problem statement
of the PUNCH paper (Section 1, Preliminaries).

Layout
------
- ``xadj``   : ``int64[n + 1]`` — half-edge offsets per vertex.
- ``adjncy`` : ``int32[2m]``    — neighbor vertex of each half-edge.
- ``eid``    : ``int32[2m]``    — undirected edge id of each half-edge.
- ``edge_u`` / ``edge_v`` : ``int32[m]`` — canonical endpoints (``u < v``).
- ``vsize``  : ``int64[n]``     — vertex sizes.
- ``ewgt``   : ``float64[m]``   — edge weights.
- ``coords`` : optional ``float64[n, 2]`` — planar embedding (synthetic
  generators provide one; PUNCH itself never requires it, but the inertial
  flow baseline does).

Instances are treated as immutable: all transformations (contraction,
subgraph extraction) build new ``Graph`` objects plus a vertex mapping.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An undirected graph with vertex sizes and edge weights, in CSR form.

    Use :func:`repro.graph.builder.build_graph` (or ``Graph.from_edges``) to
    construct one from an edge list; the constructor itself expects already
    consistent CSR arrays and is mainly for internal use.
    """

    __slots__ = (
        "n",
        "m",
        "xadj",
        "adjncy",
        "eid",
        "edge_u",
        "edge_v",
        "vsize",
        "ewgt",
        "coords",
        "_half_ewgt",
    )

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        eid: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        vsize: np.ndarray,
        ewgt: np.ndarray,
        coords: Optional[np.ndarray] = None,
    ) -> None:
        self.n = int(len(xadj) - 1)
        self.m = int(len(edge_u))
        self.xadj = np.ascontiguousarray(xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(adjncy, dtype=np.int32)
        self.eid = np.ascontiguousarray(eid, dtype=np.int32)
        self.edge_u = np.ascontiguousarray(edge_u, dtype=np.int32)
        self.edge_v = np.ascontiguousarray(edge_v, dtype=np.int32)
        self.vsize = np.ascontiguousarray(vsize, dtype=np.int64)
        self.ewgt = np.ascontiguousarray(ewgt, dtype=np.float64)
        self.coords = None if coords is None else np.asarray(coords, dtype=np.float64)
        self._half_ewgt: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n: int,
        edges,
        weights=None,
        sizes=None,
        coords=None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Self-loops are dropped and parallel edges merged (weights summed),
        exactly as the paper's contraction semantics require.
        """
        from .builder import build_graph  # local import to avoid a cycle

        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edges.size == 0:
            edges = np.empty((0, 2), dtype=np.int64)
        u = edges[:, 0]
        v = edges[:, 1]
        return build_graph(n, u, v, weights=weights, sizes=sizes, coords=coords)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor vertices of ``v`` (one entry per incident edge)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def incident(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbors, edge_ids)`` of the half-edges leaving ``v``."""
        lo, hi = self.xadj[v], self.xadj[v + 1]
        return self.adjncy[lo:hi], self.eid[lo:hi]

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex."""
        return np.diff(self.xadj)

    def edge_endpoints(self, e: int) -> Tuple[int, int]:
        """Canonical ``(u, v)`` endpoints of edge ``e`` (u < v)."""
        return int(self.edge_u[e]), int(self.edge_v[e])

    def total_size(self) -> int:
        """Sum of all vertex sizes (the paper's n for U* purposes)."""
        return int(self.vsize.sum())

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.ewgt.sum())

    def half_edge_weights(self) -> np.ndarray:
        """Weight of each half-edge (``ewgt`` gathered by ``eid``).

        The gather is computed once and memoized (graphs are immutable);
        callers must not mutate the returned array.
        """
        if self._half_ewgt is None:
            self._half_ewgt = self.ewgt[self.eid]
        return self._half_ewgt

    def edges_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The undirected edge list as ``(edge_u, edge_v, ewgt)`` arrays.

        Vectorized accessor for hot paths; prefer this over the per-edge
        :meth:`edges` generator.
        """
        return self.edge_u, self.edge_v, self.ewgt

    # ------------------------------------------------------------------
    # Zero-copy export / import (shared-memory runtime)
    # ------------------------------------------------------------------
    def shared_arrays(self) -> dict:
        """All array state as ``{field: ndarray}``, for zero-copy export.

        Includes the memoized :meth:`half_edge_weights` gather so workers
        never recompute it; ``coords`` is present only when the graph has
        an embedding.  The inverse is :meth:`from_shared_arrays`.
        """
        arrays = {
            "xadj": self.xadj,
            "adjncy": self.adjncy,
            "eid": self.eid,
            "edge_u": self.edge_u,
            "edge_v": self.edge_v,
            "vsize": self.vsize,
            "ewgt": self.ewgt,
            "half_ewgt": self.half_edge_weights(),
        }
        if self.coords is not None:
            arrays["coords"] = self.coords
        return arrays

    @classmethod
    def from_shared_arrays(cls, arrays: dict) -> "Graph":
        """Rebuild a graph from :meth:`shared_arrays` output without copies.

        The arrays are used as-is (``ascontiguousarray`` on an already
        contiguous array of the right dtype is a no-op), so read-only
        shared-memory views stay zero-copy and keep their write flags.
        """
        g = cls(
            arrays["xadj"],
            arrays["adjncy"],
            arrays["eid"],
            arrays["edge_u"],
            arrays["edge_v"],
            arrays["vsize"],
            arrays["ewgt"],
            coords=arrays.get("coords"),
        )
        g._half_ewgt = arrays["half_ewgt"]
        return g

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over undirected edges as ``(u, v, w)`` tuples.

        Convenience accessor for tests and I/O; hot paths should use
        :meth:`edges_arrays` instead.
        """
        for u, v, w in zip(self.edge_u.tolist(), self.edge_v.tolist(), self.ewgt.tolist()):
            yield u, v, w

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m}, size={self.total_size()})"

    def check(self) -> None:
        """Validate structural invariants; raises ``AssertionError``.

        Intended for tests and debugging, not hot paths.
        """
        assert self.xadj.shape == (self.n + 1,)
        assert self.xadj[0] == 0 and self.xadj[-1] == 2 * self.m
        assert np.all(np.diff(self.xadj) >= 0)
        assert self.adjncy.shape == (2 * self.m,)
        assert self.eid.shape == (2 * self.m,)
        if self.m:
            assert self.adjncy.min() >= 0 and self.adjncy.max() < self.n
            assert self.eid.min() >= 0 and self.eid.max() < self.m
            assert np.all(self.edge_u < self.edge_v), "self-loops or non-canonical edges"
            assert np.all(self.ewgt > 0), "non-positive edge weight"
            # every undirected edge appears exactly twice as a half-edge
            assert np.all(np.bincount(self.eid, minlength=self.m) == 2)
            # half-edge endpoints agree with edge_u/edge_v
            src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.xadj))
            lo = np.minimum(src, self.adjncy)
            hi = np.maximum(src, self.adjncy)
            assert np.all(lo == self.edge_u[self.eid])
            assert np.all(hi == self.edge_v[self.eid])
        assert self.vsize.shape == (self.n,)
        assert np.all(self.vsize > 0), "non-positive vertex size"
        if self.coords is not None:
            assert self.coords.shape == (self.n, 2)
