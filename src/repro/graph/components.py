"""Connected components and reachability on CSR graphs.

Backed by ``scipy.sparse.csgraph`` (union-find in C) with a pure-NumPy
frontier-BFS fallback, so component labeling of 10^5-vertex graphs costs
milliseconds — it runs once per filtering pass and once per natural-cut
fragment extraction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "connected_components",
    "connected_components_masked",
    "is_connected",
    "largest_component",
]


def _adjacency_csr(g: Graph, edge_mask=None):
    from scipy.sparse import csr_matrix

    if edge_mask is None:
        u, v = g.edge_u, g.edge_v
    else:
        u, v = g.edge_u[edge_mask], g.edge_v[edge_mask]
    data = np.ones(2 * len(u), dtype=np.int8)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    return csr_matrix((data, (rows, cols)), shape=(g.n, g.n))


def connected_components(g: Graph) -> Tuple[int, np.ndarray]:
    """Label connected components. Returns ``(count, labels[int64])``."""
    if g.n == 0:
        return 0, np.empty(0, dtype=np.int64)
    if g.m == 0:
        return g.n, np.arange(g.n, dtype=np.int64)
    from scipy.sparse.csgraph import connected_components as cc

    k, labels = cc(_adjacency_csr(g), directed=False)
    return int(k), labels.astype(np.int64)


def connected_components_masked(g: Graph, removed_edges: np.ndarray) -> Tuple[int, np.ndarray]:
    """Components of ``(V, E \\ removed_edges)``.

    ``removed_edges`` is an array of undirected edge ids.  This is the
    operation behind fragment extraction (paper Fig. 2): remove all cut edges
    and contract each remaining component.
    """
    mask = np.ones(g.m, dtype=bool)
    if len(removed_edges):
        mask[np.asarray(removed_edges, dtype=np.int64)] = False
    if not mask.any():
        return g.n, np.arange(g.n, dtype=np.int64)
    from scipy.sparse.csgraph import connected_components as cc

    k, labels = cc(_adjacency_csr(g, edge_mask=mask), directed=False)
    return int(k), labels.astype(np.int64)


def is_connected(g: Graph) -> bool:
    """True iff the graph has at most one connected component."""
    if g.n <= 1:
        return True
    k, _ = connected_components(g)
    return k == 1


def largest_component(g: Graph) -> np.ndarray:
    """Vertex ids of the component with the largest total vertex size."""
    k, labels = connected_components(g)
    if k <= 1:
        return np.arange(g.n, dtype=np.int64)
    sizes = np.bincount(labels, weights=g.vsize, minlength=k)
    best = int(np.argmax(sizes))
    return np.flatnonzero(labels == best).astype(np.int64)
