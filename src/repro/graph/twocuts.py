"""Bridges and 2-cut equivalence classes via cycle-space sampling.

Pass 3 of PUNCH's tiny-cut detection needs all *2-cuts* (cuts with exactly
two edges).  There can be :math:`\\Omega(m^2)` such pairs, but the relation
"``e`` and ``f`` form a 2-cut and neither is a bridge" is an equivalence
relation on edges, and its classes can be found in (near-)linear time with
the cycle-space sampling technique of Pritchard and Thurimella [PT11], which
the paper cites:

1.  Build a spanning forest.  Give every non-tree edge an independent
    uniform random 64-bit label.
2.  Give every tree edge the XOR of the labels of the non-tree edges whose
    fundamental cycle contains it (computed bottom-up in one pass).
3.  Then, with high probability: an edge is a **bridge** iff its label is 0,
    and two non-bridge edges form a **2-cut** iff their labels are equal.
    Grouping edges by label yields exactly the equivalence classes.

The failure probability is ``O(m^2 / 2^64)`` — irrelevant in practice, and
the downstream pass re-verifies every class by actually computing connected
components, so a collision could only cost a missed contraction, never a
wrong answer.

[PT11] D. Pritchard, R. Thurimella. Fast computation of small cuts via cycle
       space sampling. ACM Trans. Algorithms 7(4), 2011.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .graph import Graph

__all__ = ["edge_cut_labels", "bridges", "two_cut_classes"]


def _spanning_forest(g: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """BFS spanning forest.

    Returns ``(order, parent_vertex, parent_eid)``: vertices in BFS order,
    and for each vertex its tree parent and connecting edge id (-1 at roots).
    """
    n = g.n
    xadj, adjncy, eid = g.xadj, g.adjncy, g.eid
    parent_v = np.full(n, -1, dtype=np.int64)
    parent_e = np.full(n, -1, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    k = 0
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = True
        order[k] = root
        k += 1
        head = k - 1
        while head < k:
            u = int(order[head])
            head += 1
            for idx in range(xadj[u], xadj[u + 1]):
                w = int(adjncy[idx])
                if not seen[w]:
                    seen[w] = True
                    parent_v[w] = u
                    parent_e[w] = int(eid[idx])
                    order[k] = w
                    k += 1
    return order, parent_v, parent_e


def edge_cut_labels(g: Graph, rng: np.random.Generator | None = None) -> np.ndarray:
    """Random cycle-space labels per edge (uint64), as described above."""
    rng = np.random.default_rng(0xC0FFEE) if rng is None else rng
    order, parent_v, parent_e = _spanning_forest(g)

    labels = np.zeros(g.m, dtype=np.uint64)
    tree_mask = np.zeros(g.m, dtype=bool)
    has_parent = parent_e >= 0
    tree_mask[parent_e[has_parent]] = True
    nontree = np.flatnonzero(~tree_mask)

    # independent random labels for non-tree edges; re-roll the (absurdly
    # unlikely) zero so "label == 0" is reserved for bridges
    nt_labels = rng.integers(1, np.iinfo(np.uint64).max, size=len(nontree), dtype=np.uint64)
    labels[nontree] = nt_labels

    # phi[v] = XOR of labels of non-tree edges incident to v
    phi = np.zeros(g.n, dtype=np.uint64)
    if len(nontree):
        np.bitwise_xor.at(phi, g.edge_u[nontree].astype(np.int64), nt_labels)
        np.bitwise_xor.at(phi, g.edge_v[nontree].astype(np.int64), nt_labels)

    # bottom-up accumulation: the tree edge above v gets the subtree XOR of phi
    for i in range(g.n - 1, -1, -1):
        v = int(order[i])
        p = parent_v[v]
        if p >= 0:
            labels[parent_e[v]] = phi[v]
            phi[p] ^= phi[v]
    return labels


def bridges(g: Graph, rng: np.random.Generator | None = None) -> np.ndarray:
    """Edge ids of all bridges (1-cuts), w.h.p."""
    labels = edge_cut_labels(g, rng)
    return np.flatnonzero(labels == 0)


def two_cut_classes(
    g: Graph, rng: np.random.Generator | None = None
) -> List[np.ndarray]:
    """The equivalence classes of the paper's 2-cut relation.

    Each returned array holds the edge ids of one class (size >= 2); every
    pair of edges within a class forms a 2-cut, and no 2-cut crosses classes
    (w.h.p.).  Bridges (label 0) are excluded, exactly matching the paper's
    predicate "e and f form a 2-cut, but neither e nor f form a 1-cut".
    """
    labels = edge_cut_labels(g, rng)
    nonzero = np.flatnonzero(labels != 0)
    if len(nonzero) == 0:
        return []
    lab = labels[nonzero]
    sorted_idx = np.argsort(lab, kind="stable")
    lab_sorted = lab[sorted_idx]
    edges_sorted = nonzero[sorted_idx]
    # boundaries of equal-label runs
    starts = np.flatnonzero(np.concatenate([[True], lab_sorted[1:] != lab_sorted[:-1]]))
    ends = np.concatenate([starts[1:], [len(lab_sorted)]])
    classes = [
        edges_sorted[s:e].astype(np.int64) for s, e in zip(starts, ends) if e - s >= 2
    ]
    return classes
