"""Biconnected components, articulation points, and the block-cut forest.

Pass 1 of PUNCH's tiny-cut detection (paper Section 2, "Detecting Tiny
Cuts") identifies the biconnected components of the graph, roots the tree
they form at the maximum-size component, and contracts every subtree whose
total vertex size is at most ``U``.  This module provides the substrate: an
iterative Hopcroft–Tarjan DFS (explicit stacks — road networks have long
paths that would blow the recursion limit) and a block-cut forest with
rooted subtree sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .graph import Graph

__all__ = ["biconnected_components", "BlockCutForest", "build_block_cut_forest"]


def biconnected_components(g: Graph) -> Tuple[int, np.ndarray, np.ndarray]:
    """Partition edges into biconnected components.

    Returns ``(n_components, edge_comp, articulation)`` where ``edge_comp[e]``
    is the component id of edge ``e`` (bridges form singleton components) and
    ``articulation`` is a boolean mask over vertices.
    """
    n, m = g.n, g.m
    xadj, adjncy, eid = g.xadj, g.adjncy, g.eid
    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    parent_eid = np.full(n, -2, dtype=np.int64)
    edge_comp = np.full(m, -1, dtype=np.int64)
    art = np.zeros(n, dtype=bool)
    ptr = xadj[:-1].astype(np.int64)  # next half-edge cursor per vertex

    timer = 0
    ncomp = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        disc[root] = low[root] = timer
        timer += 1
        vstack: List[int] = [root]
        estack: List[int] = []
        root_children = 0
        while vstack:
            v = vstack[-1]
            if ptr[v] < xadj[v + 1]:
                he = ptr[v]
                ptr[v] += 1
                w = int(adjncy[he])
                e = int(eid[he])
                if e == parent_eid[v]:
                    continue  # the tree edge back to the parent
                if disc[w] == -1:
                    estack.append(e)
                    disc[w] = low[w] = timer
                    timer += 1
                    parent_eid[w] = e
                    vstack.append(w)
                    if v == root:
                        root_children += 1
                elif disc[w] < disc[v]:
                    # back edge to an ancestor (forward copies are skipped)
                    estack.append(e)
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            else:
                vstack.pop()
                if vstack:
                    u = vstack[-1]
                    if low[v] < low[u]:
                        low[u] = low[v]
                    if low[v] >= disc[u]:
                        # u separates v's subtree: close one biconnected comp
                        pe = parent_eid[v]
                        while True:
                            e = estack.pop()
                            edge_comp[e] = ncomp
                            if e == pe:
                                break
                        ncomp += 1
                        if u != root:
                            art[u] = True
        if root_children > 1:
            art[root] = True
    return ncomp, edge_comp, art


@dataclass
class BlockCutForest:
    """The block-cut forest of a graph, rooted for top-down traversal.

    Tree nodes are ``0..n_blocks-1`` (blocks) followed by one node per
    articulation vertex.  Each graph vertex is *attributed* to exactly one
    node: articulation vertices to their own node, other vertices to their
    unique block (isolated vertices to a singleton pseudo-block).  Subtree
    sizes and Euler intervals then make "the hanging piece below articulation
    ``a`` through block ``B``" a contiguous slice of ``order``.
    """

    n_blocks: int
    node_parent: np.ndarray  # parent tree-node per tree-node (-1 at roots)
    node_of_vertex: np.ndarray  # attributed tree node per graph vertex
    art_node: Dict[int, int]  # articulation vertex -> its tree node
    subtree_size: np.ndarray  # total attributed vertex size per tree node
    tin: np.ndarray
    tout: np.ndarray
    order: np.ndarray  # graph vertices sorted by tin of their attributed node
    order_pos: np.ndarray  # prefix count: vertices with tin < tin[node]
    roots: List[int] = field(default_factory=list)

    def subtree_vertices(self, node: int) -> np.ndarray:
        """All graph vertices attributed inside the subtree of ``node``."""
        lo = self.order_pos[self.tin[node]]
        hi = self.order_pos[self.tout[node]]
        return self.order[lo:hi]

    def children(self, node: int) -> np.ndarray:
        """Child tree-nodes of ``node``."""
        return self._children_list[node]

    _children_list: List[np.ndarray] = field(default_factory=list)


def build_block_cut_forest(g: Graph) -> BlockCutForest:
    """Compute the rooted block-cut forest of ``g``.

    Each tree of the forest is rooted at its maximum-vertex-size block (the
    paper roots at "the maximum-size edge-connected component").
    """
    ncomp, edge_comp, art = biconnected_components(g)

    # vertex-block incidence (unique pairs), vectorized
    if g.m:
        vv = np.concatenate([g.edge_u, g.edge_v]).astype(np.int64)
        cc = np.concatenate([edge_comp, edge_comp])
        pair = vv * np.int64(max(ncomp, 1)) + cc
        uniq = np.unique(pair)
        inc_v = (uniq // max(ncomp, 1)).astype(np.int64)
        inc_b = (uniq % max(ncomp, 1)).astype(np.int64)
    else:
        inc_v = np.empty(0, dtype=np.int64)
        inc_b = np.empty(0, dtype=np.int64)

    # isolated vertices get singleton pseudo-blocks
    touched = np.zeros(g.n, dtype=bool)
    touched[inc_v] = True
    isolated = np.flatnonzero(~touched)
    n_blocks = ncomp + len(isolated)
    if len(isolated):
        inc_v = np.concatenate([inc_v, isolated])
        inc_b = np.concatenate([inc_b, np.arange(ncomp, n_blocks, dtype=np.int64)])

    n_nodes = n_blocks + int(art.sum())
    art_vertices = np.flatnonzero(art)
    art_node = {int(v): n_blocks + i for i, v in enumerate(art_vertices)}

    # attribution of graph vertices to tree nodes
    node_of_vertex = np.full(g.n, -1, dtype=np.int64)
    # non-articulation vertices: their unique block
    non_art_mask = ~art[inc_v]
    node_of_vertex[inc_v[non_art_mask]] = inc_b[non_art_mask]
    for v, node in art_node.items():
        node_of_vertex[v] = node

    # bipartite forest adjacency: block <-> its articulation vertices
    adj: List[List[int]] = [[] for _ in range(n_nodes)]
    art_pairs_mask = art[inc_v]
    for v, b in zip(inc_v[art_pairs_mask], inc_b[art_pairs_mask]):
        a_node = art_node[int(v)]
        adj[int(b)].append(a_node)
        adj[a_node].append(int(b))

    # per-node attributed size
    node_size = np.zeros(n_nodes, dtype=np.int64)
    np.add.at(node_size, node_of_vertex, g.vsize)

    # block vertex-size (including its articulation vertices) for root choice
    block_size = np.zeros(n_blocks, dtype=np.int64)
    np.add.at(block_size, inc_b, g.vsize[inc_v])

    node_parent = np.full(n_nodes, -1, dtype=np.int64)
    visited = np.zeros(n_nodes, dtype=bool)
    subtree_size = node_size.copy()
    tin = np.zeros(n_nodes, dtype=np.int64)
    tout = np.zeros(n_nodes, dtype=np.int64)
    children_list: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n_nodes
    roots: List[int] = []
    clock = 0

    # group blocks by connected tree: iterate blocks by decreasing size so the
    # first unvisited block of each tree is its largest -> the root.
    for b in np.argsort(-block_size, kind="stable"):
        b = int(b)
        if visited[b]:
            continue
        roots.append(b)
        # iterative DFS with tin/tout
        stack: List[Tuple[int, int]] = [(b, 0)]
        visited[b] = True
        tin[b] = clock
        clock += 1
        post: List[int] = []
        while stack:
            node, idx = stack[-1]
            if idx < len(adj[node]):
                stack[-1] = (node, idx + 1)
                nxt = adj[node][idx]
                if not visited[nxt]:
                    visited[nxt] = True
                    node_parent[nxt] = node
                    tin[nxt] = clock
                    clock += 1
                    stack.append((nxt, 0))
            else:
                stack.pop()
                tout[node] = clock
                post.append(node)
        for node in post:
            p = node_parent[node]
            if p >= 0:
                subtree_size[p] += subtree_size[node]
        for node in post:
            kids = [c for c in adj[node] if node_parent[c] == node]
            children_list[node] = np.asarray(kids, dtype=np.int64)

    # Euler-interval vertex ordering: sort vertices by tin of attributed node
    order = np.argsort(tin[node_of_vertex], kind="stable").astype(np.int64)
    # order_pos[t] = number of vertices whose node-tin < t, for t in [0, clock]
    counts = np.bincount(tin[node_of_vertex], minlength=clock + 1)
    order_pos = np.zeros(clock + 1, dtype=np.int64)
    np.cumsum(counts[:-1], out=order_pos[1:])

    forest = BlockCutForest(
        n_blocks=n_blocks,
        node_parent=node_parent,
        node_of_vertex=node_of_vertex,
        art_node=art_node,
        subtree_size=subtree_size,
        tin=tin,
        tout=tout,
        order=order,
        order_pos=order_pos,
        roots=roots,
    )
    forest._children_list = children_list
    return forest
