"""Tiny-cut pass 1: contract block-cut-tree subtrees (1-cuts).

Paper, Section 2 ("Detecting Tiny Cuts"), first pass: identify the
biconnected components, root the tree they form at the maximum-size
component, traverse top-down, and contract every subtree of total size at
most ``U`` into a single vertex.  A contracted subtree hangs off one
articulation vertex, so the new vertex has degree 1; if the subtree's size
is at most ``tau`` and it fits, it is additionally merged into that
articulation vertex ("its neighbor in the parent component") — the paper's
heuristic refinement with ``tau = 5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.biconnected import build_block_cut_forest
from ..graph.graph import Graph

__all__ = ["one_cut_labels", "OneCutStats"]


@dataclass
class OneCutStats:
    """Counters from tiny-cut pass 1."""
    subtrees_contracted: int = 0
    tau_merges: int = 0
    vertices_removed: int = 0


def one_cut_labels(g: Graph, U: int, tau: int = 5) -> tuple[np.ndarray, OneCutStats]:
    """Compute contraction labels for pass 1.

    Returns ``(labels, stats)``; contracting ``g`` by ``labels`` performs all
    subtree contractions and ``tau``-merges.  Labels are vertex ids (each
    group labeled by one of its members), so they are directly densifiable.
    """
    forest = build_block_cut_forest(g)
    labels = np.arange(g.n, dtype=np.int64)
    stats = OneCutStats()
    # extra size already tau-merged into each articulation vertex
    merged_extra = {}

    for root in forest.roots:
        # top-down BFS over tree nodes; at each articulation node, try to
        # contract the subtrees hanging below it through each child block
        queue: List[int] = [root]
        while queue:
            node = queue.pop()
            for art in forest.children(node):
                # `node` is a block node, `art` an articulation-vertex node
                art = int(art)
                for block in forest.children(art):
                    block = int(block)
                    sub_size = int(forest.subtree_size[block])
                    if sub_size <= U:
                        verts = forest.subtree_vertices(block)
                        rep = int(verts[0])
                        labels[verts] = rep
                        stats.subtrees_contracted += 1
                        stats.vertices_removed += len(verts) - 1
                        # tau-merge into the articulation vertex if tiny
                        a = _art_vertex(forest, art)
                        if sub_size <= tau:
                            acc = merged_extra.get(a, 0)
                            if int(g.vsize[a]) + acc + sub_size <= U:
                                labels[verts] = labels[a]
                                merged_extra[a] = acc + sub_size
                                stats.tau_merges += 1
                                stats.vertices_removed += 1
                    else:
                        queue.append(block)
    return labels, stats


def _art_vertex(forest, art_node: int) -> int:
    """Graph vertex behind an articulation tree node."""
    # art_node ids are assigned densely after the blocks, in the order of
    # np.flatnonzero(articulation); invert that once and cache on the forest.
    cache = getattr(forest, "_art_vertex_cache", None)
    if cache is None:
        cache = {node: v for v, node in forest.art_node.items()}
        forest._art_vertex_cache = cache
    return cache[art_node]
