"""Tiny-cut detection: the three contraction passes of paper Section 2.

1. Contract block-cut-tree subtrees of size <= U (plus the tau-merge).
2. Contract degree-2 chains of size <= U.
3. Contract small components cut off by 2-cut equivalence classes.

Each pass computes a label array on the current graph and contracts through
the shared :class:`~repro.graph.contraction.ContractionChain`, so the
composite original-to-fragment mapping is maintained for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.contraction import ContractionChain
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from .onecuts import OneCutStats, one_cut_labels
from .paths import PathStats, degree_two_labels
from .twocut_pass import TwoCutStats, two_cut_pass_labels

__all__ = ["TinyCutStats", "run_tiny_cuts"]


@dataclass
class TinyCutStats:
    """Vertex counts and per-pass counters for tiny-cut detection."""
    n_before: int = 0
    n_after_pass1: int = 0
    n_after_pass2: int = 0
    n_after_pass3: int = 0
    pass1: OneCutStats = field(default_factory=OneCutStats)
    pass2: PathStats = field(default_factory=PathStats)
    pass3: TwoCutStats = field(default_factory=TwoCutStats)
    passes_run: int = 3
    deadline_expired: bool = False  # later passes skipped on budget expiry


def run_tiny_cuts(
    chain: ContractionChain,
    U: int,
    tau: int = 5,
    chunk_large_paths: bool = False,
    rng: np.random.Generator | None = None,
    budget: RunBudget | None = None,
) -> TinyCutStats:
    """Run passes 1-3 on ``chain.current``, contracting in place.

    The chain is advanced after each pass; ``chain.current`` ends up being
    the tiny-cut-contracted graph on which natural cuts are detected.

    Each pass is a cooperative cancellation point: when ``budget`` expires
    the remaining passes are skipped.  The chain is valid after every pass
    (each pass only contracts groups of size <= U), so stopping early just
    yields a less-contracted — but correct — graph.
    """
    stats = TinyCutStats(n_before=chain.current.n)
    stats.passes_run = 0

    if budget is not None and budget.checkpoint("tiny_cuts_pass1"):
        stats.deadline_expired = True
        stats.n_after_pass1 = stats.n_after_pass2 = stats.n_after_pass3 = chain.current.n
        return stats
    with profile_span("tiny_cuts.pass1_onecuts"):
        labels, stats.pass1 = one_cut_labels(chain.current, U, tau=tau)
        chain.apply(labels)
    stats.n_after_pass1 = chain.current.n
    stats.passes_run = 1

    if budget is not None and budget.checkpoint("tiny_cuts_pass2"):
        stats.deadline_expired = True
        stats.n_after_pass2 = stats.n_after_pass3 = chain.current.n
        return stats
    with profile_span("tiny_cuts.pass2_paths"):
        labels, stats.pass2 = degree_two_labels(
            chain.current, U, chunk_large=chunk_large_paths
        )
        chain.apply(labels)
    stats.n_after_pass2 = chain.current.n
    stats.passes_run = 2

    if budget is not None and budget.checkpoint("tiny_cuts_pass3"):
        stats.deadline_expired = True
        stats.n_after_pass3 = chain.current.n
        return stats
    with profile_span("tiny_cuts.pass3_twocuts"):
        labels, stats.pass3 = two_cut_pass_labels(chain.current, U, rng=rng)
        chain.apply(labels)
    stats.n_after_pass3 = chain.current.n
    stats.passes_run = 3
    return stats
