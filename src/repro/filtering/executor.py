"""Executors for embarrassingly parallel cut subproblems.

The paper parallelizes natural-cut detection with OpenMP: "our
implementation first picks all centers sequentially, then runs each
minimum-cut computation (including the creation of the relevant subproblem)
in parallel".  We reproduce the same two-stage structure behind a small
executor abstraction:

- ``"serial"``  — plain loop (default; deterministic, and the right choice
  on a single-core box or under the GIL for CPU-bound pure-Python work).
- ``"threads"`` — ``ThreadPoolExecutor``; useful when the flow solver
  releases the GIL (e.g. the scipy backend).
- ``"processes"`` — ``ProcessPoolExecutor``; true parallelism at the cost of
  pickling subproblems.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

__all__ = ["map_subproblems", "EXECUTORS"]

EXECUTORS = ("serial", "threads", "processes")

T = TypeVar("T")
R = TypeVar("R")


def map_subproblems(
    fn: Callable[[T], R],
    items: Sequence[T],
    executor: str = "serial",
    workers: int | None = None,
    pool=None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving order.

    ``workers=None`` lets the pool pick its default; an explicit worker
    count must be positive.  An empty item list returns ``[]`` without
    spinning up a pool.

    ``pool`` is an optional persistent :class:`~repro.parallel.pool.WorkerPool`
    (duck-typed: ``kind``, ``executor``, ``usable()``): when its kind matches
    the requested executor, the map reuses it instead of constructing (and
    tearing down) a fresh pool — the per-call pool here is exactly the perf
    bug the shared-memory runtime exists to fix.  Callers that submit
    handle-based batches schedule them one task per item (``chunksize=1``);
    the chunking heuristic below is only for raw, unbatched item streams.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    if not items:
        return []
    if executor == "serial":
        return [fn(x) for x in items]
    if pool is not None and pool.kind == executor and pool.usable():
        return list(pool.executor.map(fn, items, chunksize=1))
    if executor == "threads":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    # processes: aim for ~64 chunks total (ceiling division keeps tiny
    # inputs at chunksize 1 instead of degenerating through 0 // 64)
    chunksize = max(1, -(-len(items) // 64))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
