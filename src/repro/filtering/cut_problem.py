"""Construction of the contracted s-t min-cut subproblem for a natural cut.

Given a BFS region (tree ``T`` grown to size ``alpha*U``, its core, and its
ring — see paper Fig. 1), build the small instance on which the minimum cut
is computed: the core is contracted to the source ``s``, the ring to the
sink ``t``, the remaining tree vertices stay individual, and all edges among
``T ∪ ring`` are kept (edges internal to the core or internal to the ring
vanish; parallel edges merge for the flow network, but the original edge ids
are retained so the cut can be reported in terms of input edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flow.mincut import min_st_cut
from ..graph.graph import Graph
from ..graph.traversal import BFSRegion

__all__ = ["CutProblem", "build_cut_problem", "solve_cut_problem"]

S_LOCAL = 0
T_LOCAL = 1


@dataclass
class CutProblem:
    """A contracted s-t min-cut instance.

    ``net_u/net_v/net_cap`` describe the merged flow network (local vertex 0
    is ``s`` = contracted core, local vertex 1 is ``t`` = contracted ring).
    ``cand_edges`` are the original-graph edge ids of all candidate edges
    (one entry per *original* edge between distinct local supernodes), with
    ``cand_lu/cand_lv`` their local endpoints — after solving, an original
    edge is in the natural cut iff its local endpoints land on opposite
    sides.
    """

    n_local: int
    net_u: np.ndarray
    net_v: np.ndarray
    net_cap: np.ndarray
    cand_edges: np.ndarray
    cand_lu: np.ndarray
    cand_lv: np.ndarray
    center: int = -1

    def solve(self, solver: str = "push_relabel") -> tuple[float, np.ndarray]:
        """Solve this instance; see :func:`solve_cut_problem`."""
        return solve_cut_problem(self, solver)


def build_cut_problem(g: Graph, region: BFSRegion, center: int = -1) -> CutProblem | None:
    """Build the contracted instance for one BFS region.

    Returns ``None`` when the region has an empty ring (the BFS exhausted a
    connected component, so there is nothing to cut).
    """
    if region.exhausted:
        return None
    tree = region.tree
    core_count = region.core_count
    ring = region.ring

    # local ids: s=0, t=1, then non-core tree vertices 2..
    local = {}
    for v in tree[:core_count]:
        local[int(v)] = S_LOCAL
    for i, v in enumerate(tree[core_count:]):
        local[int(v)] = 2 + i
    for v in ring:
        local[int(v)] = T_LOCAL
    n_local = 2 + (len(tree) - core_count)

    # collect edges with both endpoints inside T ∪ ring, via the tree's
    # adjacency (every such edge is incident to a tree vertex)
    xadj, eid, edge_u, edge_v = g.xadj, g.eid, g.edge_u, g.edge_v
    eids = set()
    for v in tree:
        v = int(v)
        for idx in range(xadj[v], xadj[v + 1]):
            eids.add(int(eid[idx]))
    cand_edges = []
    cand_lu = []
    cand_lv = []
    for e in eids:
        u = int(edge_u[e])
        w = int(edge_v[e])
        lu = local.get(u)
        lv = local.get(w)
        if lu is None or lv is None:
            continue  # leaves the region (tree -> outside beyond the ring? impossible; ring -> outside pruned here)
        if lu == lv:
            continue  # internal to the core or to the ring
        cand_edges.append(e)
        cand_lu.append(lu)
        cand_lv.append(lv)

    cand_edges = np.asarray(cand_edges, dtype=np.int64)
    cand_lu = np.asarray(cand_lu, dtype=np.int64)
    cand_lv = np.asarray(cand_lv, dtype=np.int64)

    # merge parallel (local) edges for the flow network
    lo = np.minimum(cand_lu, cand_lv)
    hi = np.maximum(cand_lu, cand_lv)
    key = lo * np.int64(n_local) + hi
    uniq, inv = np.unique(key, return_inverse=True)
    cap = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(cap, inv, g.ewgt[cand_edges])
    net_u = (uniq // n_local).astype(np.int64)
    net_v = (uniq % n_local).astype(np.int64)

    return CutProblem(
        n_local=n_local,
        net_u=net_u,
        net_v=net_v,
        net_cap=cap,
        cand_edges=cand_edges,
        cand_lu=cand_lu,
        cand_lv=cand_lv,
        center=center,
    )


def solve_cut_problem(p: CutProblem, solver: str = "push_relabel") -> tuple[float, np.ndarray]:
    """Solve the min s-t cut; returns ``(cut_value, original_cut_edge_ids)``."""
    res = min_st_cut(p.n_local, p.net_u, p.net_v, p.net_cap, S_LOCAL, T_LOCAL, solver=solver)
    side = res.source_side
    in_cut = side[p.cand_lu] != side[p.cand_lv]
    return res.value, p.cand_edges[in_cut]
