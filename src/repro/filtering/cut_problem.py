"""Construction of the contracted s-t min-cut subproblem for a natural cut.

Given a BFS region (tree ``T`` grown to size ``alpha*U``, its core, and its
ring — see paper Fig. 1), build the small instance on which the minimum cut
is computed: the core is contracted to the source ``s``, the ring to the
sink ``t``, the remaining tree vertices stay individual, and all edges among
``T ∪ ring`` are kept (edges internal to the core or internal to the ring
vanish; parallel edges merge for the flow network, but the original edge ids
are retained so the cut can be reported in terms of input edges).

The production builder is fully vectorized (one CSR gather over the tree
rows plus ``searchsorted`` endpoint mapping); the scalar reference is
retained as :func:`build_cut_problem_reference` for equivalence tests.  The
two builders produce identical flow networks; only the *order* of the
candidate-edge arrays differs (sorted vs. hash order), which no consumer
depends on.

``CutProblem.fingerprint`` is a canonical digest of the merged flow network
(vertex count, endpoints, capacities) — two regions that contract to the
same network have the same min-cut value and source side.
:class:`~repro.perf.cut_cache.CutCache` keys on the fingerprint *salted
with the cut engine and flow solver*
(:meth:`repro.cutengine.base.CutEngine.cache_key`): engines and backends
may legally return different valid cuts for the same network, so entries
are never shared across them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..flow.mincut import min_st_cut
from ..graph.csr import gather_csr_rows
from ..graph.graph import Graph
from ..graph.traversal import BFSRegion

__all__ = [
    "CutProblem",
    "build_cut_problem",
    "build_cut_problem_reference",
    "solve_cut_problem",
    "solve_cut_problem_sides",
]

S_LOCAL = 0
T_LOCAL = 1


@dataclass
class CutProblem:
    """A contracted s-t min-cut instance.

    ``net_u/net_v/net_cap`` describe the merged flow network (local vertex 0
    is ``s`` = contracted core, local vertex 1 is ``t`` = contracted ring).
    ``cand_edges`` are the original-graph edge ids of all candidate edges
    (one entry per *original* edge between distinct local supernodes), with
    ``cand_lu/cand_lv`` their local endpoints — after solving, an original
    edge is in the natural cut iff its local endpoints land on opposite
    sides.
    """

    n_local: int
    net_u: np.ndarray
    net_v: np.ndarray
    net_cap: np.ndarray
    cand_edges: np.ndarray
    cand_lu: np.ndarray
    cand_lv: np.ndarray
    center: int = -1
    _fingerprint: bytes | None = field(default=None, repr=False, compare=False)

    def solve(self, solver: str = "push_relabel") -> tuple[float, np.ndarray]:
        """Solve this instance; see :func:`solve_cut_problem`."""
        return solve_cut_problem(self, solver)

    def fingerprint(self) -> bytes:
        """Canonical digest of the merged flow network.

        Problems with equal fingerprints have identical min-cut values and
        source-side masks (the network is already canonical: ``np.unique``
        sorts the merged edges).  Memoized per instance.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.n_local).tobytes())
            h.update(np.ascontiguousarray(self.net_u, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.net_v, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.net_cap, dtype=np.float64).tobytes())
            self._fingerprint = h.digest()
        return self._fingerprint

    def cut_edges_of_side(self, source_side: np.ndarray) -> np.ndarray:
        """Original-graph cut edge ids under a local source-side mask."""
        in_cut = source_side[self.cand_lu] != source_side[self.cand_lv]
        return self.cand_edges[in_cut]


def build_cut_problem(g: Graph, region: BFSRegion, center: int = -1) -> CutProblem | None:
    """Build the contracted instance for one BFS region (vectorized).

    Returns ``None`` when the region has an empty ring (the BFS exhausted a
    connected component, so there is nothing to cut).
    """
    if region.exhausted:
        return None
    tree = region.tree
    core_count = region.core_count
    ring = region.ring
    n_local = 2 + (len(tree) - core_count)

    # every edge with both endpoints in T ∪ ring is incident to a tree
    # vertex, so one gather over the tree rows finds them all
    eids = np.unique(gather_csr_rows(g.xadj, g.eid, tree)).astype(np.int64)
    eu = g.edge_u[eids].astype(np.int64)
    ev = g.edge_v[eids].astype(np.int64)

    # local ids: core -> 0, ring -> 1, non-core tree vertices -> 2..
    verts = np.concatenate([tree, ring])
    labs = np.empty(len(verts), dtype=np.int64)
    labs[:core_count] = S_LOCAL
    labs[core_count : len(tree)] = 2 + np.arange(len(tree) - core_count, dtype=np.int64)
    labs[len(tree) :] = T_LOCAL
    order = np.argsort(verts, kind="stable")
    sv = verts[order]
    sl = labs[order]
    # both endpoints are guaranteed present in T ∪ ring (the ring is the
    # complete external neighborhood of the tree)
    lu = sl[np.searchsorted(sv, eu)]
    lv = sl[np.searchsorted(sv, ev)]

    keep = lu != lv  # drop edges internal to the core or to the ring
    cand_edges = eids[keep]
    cand_lu = lu[keep]
    cand_lv = lv[keep]

    return _assemble_problem(g, n_local, cand_edges, cand_lu, cand_lv, center)


def build_cut_problem_reference(
    g: Graph, region: BFSRegion, center: int = -1
) -> CutProblem | None:
    """Scalar (vertex-at-a-time) reference for :func:`build_cut_problem`.

    Retained for equivalence tests and the hot-path benchmark.  Produces the
    identical flow network; the candidate arrays may be ordered differently.
    """
    if region.exhausted:
        return None
    tree = region.tree
    core_count = region.core_count
    ring = region.ring

    # local ids: s=0, t=1, then non-core tree vertices 2..
    local = {}
    for v in tree[:core_count]:
        local[int(v)] = S_LOCAL
    for i, v in enumerate(tree[core_count:]):
        local[int(v)] = 2 + i
    for v in ring:
        local[int(v)] = T_LOCAL
    n_local = 2 + (len(tree) - core_count)

    # collect edges with both endpoints inside T ∪ ring, via the tree's
    # adjacency (every such edge is incident to a tree vertex)
    xadj, eid, edge_u, edge_v = g.xadj, g.eid, g.edge_u, g.edge_v
    eids = set()
    for v in tree:
        v = int(v)
        for idx in range(xadj[v], xadj[v + 1]):
            eids.add(int(eid[idx]))
    cand_edges = []
    cand_lu = []
    cand_lv = []
    # sorted: candidate order feeds min-cut tie-breaking downstream, so it
    # must be canonical, not hash-table order
    for e in sorted(eids):
        u = int(edge_u[e])
        w = int(edge_v[e])
        lu = local.get(u)
        lv = local.get(w)
        if lu is None or lv is None:
            continue  # leaves the region (tree -> outside beyond the ring? impossible; ring -> outside pruned here)
        if lu == lv:
            continue  # internal to the core or to the ring
        cand_edges.append(e)
        cand_lu.append(lu)
        cand_lv.append(lv)

    return _assemble_problem(
        g,
        n_local,
        np.asarray(cand_edges, dtype=np.int64),
        np.asarray(cand_lu, dtype=np.int64),
        np.asarray(cand_lv, dtype=np.int64),
        center,
    )


def _assemble_problem(g, n_local, cand_edges, cand_lu, cand_lv, center):
    """Merge parallel (local) edges into the flow network and wrap up."""
    lo = np.minimum(cand_lu, cand_lv)
    hi = np.maximum(cand_lu, cand_lv)
    key = lo * np.int64(n_local) + hi
    uniq, inv = np.unique(key, return_inverse=True)
    cap = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(cap, inv, g.ewgt[cand_edges])
    net_u = (uniq // n_local).astype(np.int64)
    net_v = (uniq % n_local).astype(np.int64)

    return CutProblem(
        n_local=int(n_local),
        net_u=net_u,
        net_v=net_v,
        net_cap=cap,
        cand_edges=cand_edges,
        cand_lu=cand_lu,
        cand_lv=cand_lv,
        center=center,
    )


def solve_cut_problem(p: CutProblem, solver: str = "push_relabel") -> tuple[float, np.ndarray]:
    """Solve the min s-t cut; returns ``(cut_value, original_cut_edge_ids)``."""
    value, side = solve_cut_problem_sides(p, solver)
    return value, p.cut_edges_of_side(side)


def solve_cut_problem_sides(
    p: CutProblem, solver: str = "push_relabel"
) -> tuple[float, np.ndarray]:
    """Solve the min s-t cut; returns ``(cut_value, source_side_mask)``.

    The source-side mask is over *local* vertices, so it is reusable for
    any problem with the same network fingerprint (see
    :class:`~repro.perf.cut_cache.CutCache`).
    """
    res = min_st_cut(p.n_local, p.net_u, p.net_v, p.net_cap, S_LOCAL, T_LOCAL, solver=solver)
    return res.value, res.source_side
