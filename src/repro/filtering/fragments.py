"""Fragment extraction: contract everything between the natural cuts.

Paper, end of Section 2: "we contract each connected component of the graph
``G_C = (V, E \\ C)``, where ``C`` is the union of all edges cut ... We call
each contracted component a *fragment*."  With ``alpha <= 1`` each fragment
provably fits in ``U`` — every vertex sits in some core, and the component
of a covered vertex in ``G_C`` is confined to the source side of that
core's natural cut, which lies inside a BFS tree of size ~``alpha * U``.

Because vertex sizes after tiny-cut contraction can be lumpy, the BFS tree
may overshoot ``alpha * U`` by up to one vertex; ``split_oversized`` guards
the invariant by greedily slicing any fragment that still exceeds ``U`` into
connected chunks (this never triggers with unit sizes and ``alpha <= 1``,
but makes the guarantee unconditional).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.components import connected_components_masked
from ..graph.graph import Graph

__all__ = ["fragment_labels", "split_oversized", "FragmentStats"]


@dataclass
class FragmentStats:
    """Counters from fragment extraction."""
    fragments: int = 0
    oversized_split: int = 0
    max_fragment_size: int = 0


def split_oversized(g: Graph, labels: np.ndarray, U: int) -> tuple[np.ndarray, int]:
    """Slice any label group of size > U into connected chunks of size <= U.

    Chunks are grown by BFS inside the group, so each stays connected.
    Returns the corrected labels and the number of groups split.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    k = int(labels.max()) + 1 if len(labels) else 0
    group_sizes = np.bincount(labels, weights=g.vsize, minlength=k)
    oversized = np.flatnonzero(group_sizes > U)
    next_label = k
    for grp in oversized:
        members = np.flatnonzero(labels == grp)
        unassigned = set(int(v) for v in members)
        # seed chunks in ascending vertex id — a set pop here would make the
        # slicing (and thus the fragment graph) depend on hash-table order
        for start in members:
            start = int(start)
            if start not in unassigned:
                continue
            chunk = [start]
            unassigned.discard(start)
            acc = int(g.vsize[start])
            head = 0
            while head < len(chunk):
                v = chunk[head]
                head += 1
                for w in g.neighbors(v):
                    w = int(w)
                    if w in unassigned and acc + int(g.vsize[w]) <= U:
                        unassigned.discard(w)
                        chunk.append(w)
                        acc += int(g.vsize[w])
            labels[chunk] = next_label
            next_label += 1
    return labels, int(len(oversized))


def fragment_labels(
    g: Graph, cut_edge_ids: np.ndarray, U: int
) -> tuple[np.ndarray, FragmentStats]:
    """Labels of the fragments of ``G_C = (V, E \\ cut_edge_ids)``."""
    _, labels = connected_components_masked(g, cut_edge_ids)
    labels, n_split = split_oversized(g, labels, U)
    stats = FragmentStats()
    stats.oversized_split = n_split
    uniq, dense = np.unique(labels, return_inverse=True)
    stats.fragments = len(uniq)
    sizes = np.bincount(dense, weights=g.vsize)
    stats.max_fragment_size = int(sizes.max()) if len(sizes) else 0
    return dense.astype(np.int64), stats
