"""Natural-cut detection (paper Section 2, "Detecting Natural Cuts").

The algorithm works in iterations.  Each iteration picks an uncovered vertex
``v`` uniformly at random as a *center*, grows a BFS tree ``T`` from it until
``s(T)`` reaches ``alpha * U``, takes the first vertices (while the tree was
smaller than ``alpha * U / f``) as the *core* and the external neighbors of
``T`` as the *ring*, and computes the minimum cut between the contracted core
and the contracted ring.  Core vertices become covered; the loop ends when
every vertex has been in some core, and the whole procedure repeats ``C``
times (the *coverage*).  The union of all cut edges delimits the fragments.

Center selection uses a pre-drawn random permutation: the first uncovered
element of a uniform permutation is uniformly distributed among the
uncovered vertices, so this is equivalent to the paper's rule while keeping
the sweep O(n).

Mirroring the paper's parallelization, each sweep first *collects* all
subproblems sequentially (BFS + core marking, which determines the centers),
then solves the min-cut instances through an executor.

Resilience (see ``docs/RESILIENCE.md``): subproblems run through
:func:`~repro.runtime.executor.resilient_map`, each min-cut solve falls back
along :data:`SOLVER_FALLBACKS` when a solver raises, and an expired
:class:`~repro.runtime.budget.RunBudget` stops the detection early — every
skip, retry, fallback, and degradation is counted on
:class:`NaturalCutStats`.  Skipping a subproblem is always safe: natural
cuts only *suggest* fragment borders, and fragment extraction enforces the
size bound unconditionally.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
import math
from typing import List, Optional

import numpy as np

from ..core.config import RuntimeConfig
from ..cutengine import SOLVER_FALLBACKS, get_engine
from ..graph.graph import Graph
from ..graph.traversal import BFSWorkspace, grow_bfs_region
from ..lint.sanitizer import get_sanitizer
from ..perf.cut_cache import CutCache
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from ..runtime.executor import resilient_map
from ..runtime.faults import FaultPlan
from .cut_problem import CutProblem, build_cut_problem

__all__ = [
    "NaturalCutStats",
    "detect_natural_cuts",
    "collect_cut_problems",
    "collect_cut_regions",
    "SOLVER_FALLBACKS",  # re-export; canonical home is repro.cutengine.base
]


@dataclass
class NaturalCutStats:
    """Counters and distributions from natural-cut detection."""
    centers: int = 0
    problems_solved: int = 0
    exhausted_regions: int = 0
    cut_edges_marked: int = 0
    total_cut_value: float = 0.0
    cut_values: List[float] = field(default_factory=list)
    tree_sizes: List[int] = field(default_factory=list)
    core_sizes: List[int] = field(default_factory=list)
    ring_sizes: List[int] = field(default_factory=list)
    # resilience accounting (docs/RESILIENCE.md)
    retries: int = 0  # re-attempted subproblems
    timeouts: int = 0  # attempts killed by the per-subproblem timeout
    skipped: int = 0  # subproblems dropped after exhausting attempts
    deadline_skipped: int = 0  # subproblems never solved (budget expired)
    solver_fallbacks: int = 0  # solves that succeeded on a fallback solver
    executor_degradations: int = 0  # processes -> threads -> serial demotions
    cache_pressure_events: int = 0  # chaos-injected cut-cache shrinks
    # cut-cache accounting (src/repro/perf/cut_cache.py)
    cache_hits: int = 0  # subproblems answered from the CutCache
    cache_misses: int = 0  # subproblems that required a fresh solve
    cut_engine: str = "push_relabel"  # engine that chose the cuts
    final_executor: str = "serial"  # tier that finished the work
    deadline_expired: bool = False  # detection stopped early on the budget
    error_samples: List[str] = field(default_factory=list)

    def incidents(self) -> dict:
        """Non-zero resilience counters, for run reports."""
        counters = {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "skipped": self.skipped,
            "deadline_skipped": self.deadline_skipped,
            "solver_fallbacks": self.solver_fallbacks,
            "executor_degradations": self.executor_degradations,
            "cache_pressure_events": self.cache_pressure_events,
        }
        out = {k: v for k, v in counters.items() if v}
        if self.deadline_expired:
            out["deadline_expired"] = True
        return out


def _collect_sweep(
    g: Graph,
    U: int,
    alpha: float,
    f: float,
    rng: np.random.Generator,
    stats: NaturalCutStats | None,
    budget: RunBudget | None,
    build: bool,
) -> list:
    """The shared center-picking sweep behind both collect functions.

    With ``build=True`` every non-exhausted region is turned into a
    :class:`CutProblem` (the sequential path); with ``build=False`` only
    ``(center, ring_size)`` pairs are recorded — the pool path re-grows the
    region inside the worker (region growth is a pure function of the
    center, independent of the covered mask, so the worker reconstructs it
    exactly), and the ring size feeds the LPT cost estimate.  Both modes
    consume the RNG identically, which keeps everything downstream of the
    sweep on the same random stream regardless of executor.
    """
    max_size = max(2, int(math.ceil(alpha * U)))
    core_size = max(1, int(math.ceil(alpha * U / f)))
    ws = BFSWorkspace(g.n)
    covered = np.zeros(g.n, dtype=bool)
    out: list = []
    # one permutation per sweep is the declared draw contract of BOTH modes
    # (build=True legacy, build=False pooled) — the serial≡parallel anchor;
    # the sanitizer replays the declaration and flags any divergence
    san = get_sanitizer()
    rng_token = san.rng_begin(rng)
    order = rng.permutation(g.n)
    san.rng_end("filter.sweep", rng, rng_token, [("permutation", g.n)])
    for sweep_pos, center in enumerate(order):
        if (
            budget is not None
            and sweep_pos % 64 == 0
            and budget.checkpoint("collect_cut_problems")
        ):
            break
        center = int(center)
        if covered[center]:
            continue
        region = grow_bfs_region(g, ws, center, max_size, core_size)
        covered[region.core] = True
        if stats is not None:
            stats.centers += 1
            stats.tree_sizes.append(int(region.tree_size))
            stats.core_sizes.append(int(len(region.core)))
            stats.ring_sizes.append(int(len(region.ring)))
        if region.exhausted:
            if stats is not None:
                stats.exhausted_regions += 1
            continue
        if build:
            prob = build_cut_problem(g, region, center=center)
            if prob is not None:
                out.append(prob)
        else:
            out.append((center, int(len(region.ring))))
    return out


def collect_cut_problems(
    g: Graph,
    U: int,
    alpha: float,
    f: float,
    rng: np.random.Generator,
    stats: NaturalCutStats | None = None,
    budget: RunBudget | None = None,
) -> List[CutProblem]:
    """One coverage sweep: pick centers until every vertex is in some core.

    Returns the list of min-cut subproblems (regions whose BFS exhausted a
    component produce no problem — there is nothing to cut there).  When
    ``budget`` expires mid-sweep, the sweep stops and returns the problems
    collected so far.
    """
    return _collect_sweep(g, U, alpha, f, rng, stats, budget, build=True)


def collect_cut_regions(
    g: Graph,
    U: int,
    alpha: float,
    f: float,
    rng: np.random.Generator,
    stats: NaturalCutStats | None = None,
    budget: RunBudget | None = None,
) -> List[tuple]:
    """One coverage sweep collecting only ``(center, ring_size)`` pairs.

    The handle-based pool path uses this: a task then pickles just the
    center ids of its batch, and the worker rebuilds each subproblem from
    the shared graph ("including the creation of the relevant subproblem"
    runs in parallel, exactly as in the paper).
    """
    return _collect_sweep(g, U, alpha, f, rng, stats, budget, build=False)


def _solve_one(
    problem: CutProblem,
    solver: str,
    fault_plan: Optional[FaultPlan] = None,
    engine: str = "push_relabel",
) -> tuple[float, np.ndarray, int]:
    """Solve one subproblem, falling back along the engine's solve chain.

    Returns ``(cut_value, source_side_mask, fallbacks_used)``.  The mask is
    over the problem's *local* vertices — the driver recovers original cut
    edges via :meth:`CutProblem.cut_edges_of_side` — so the result can also
    be stored in the :class:`~repro.perf.cut_cache.CutCache` (under the
    engine's cache key) and reused for any problem with the same network
    fingerprint solved by the same engine.  The chain comes from
    :meth:`~repro.cutengine.base.CutEngine.solve_chain`: for the default
    engine it is exactly the historical flow-solver fallback order; other
    engines append the push-relabel chain as a safety net.  Fault injection
    at the ``"flow"`` site is keyed by the problem's center and the position
    in the chain, so a plan with ``max_attempt=0`` fails the primary solve
    and lets the first fallback succeed.
    """
    chain = get_engine(engine).solve_chain(solver)
    last_exc: Exception | None = None
    for pos, attempt in enumerate(chain):
        try:
            if fault_plan is not None:
                fault_plan.apply("flow", problem.center, pos)
            value, side = attempt(problem)
            return value, side, pos
        except Exception as exc:  # noqa: BLE001 - resilience boundary
            last_exc = exc
    assert last_exc is not None
    raise last_exc


def _apply_cache_pressure(
    cut_cache: CutCache | None,
    runtime: RuntimeConfig,
    sweep: int,
    stats: NaturalCutStats,
) -> None:
    """Chaos hook: simulate memory pressure by shrinking the cut cache.

    Duck-typed against :class:`~repro.runtime.chaos.ChaosPlan` — plain
    :class:`~repro.runtime.faults.FaultPlan` objects expose no
    ``cache_pressure`` and are ignored.  Harmless by construction: cache
    hits are bit-identical to fresh solves, so evictions cost time only.
    """
    if cut_cache is None or runtime.fault_plan is None:
        return
    pressure = getattr(runtime.fault_plan, "cache_pressure", None)
    if pressure is None:
        return
    cap = pressure(sweep)
    if cap is not None:
        cut_cache.shrink(cap)
        stats.cache_pressure_events += 1


def detect_natural_cuts(
    g: Graph,
    U: int,
    alpha: float = 1.0,
    f: float = 10.0,
    C: int = 2,
    rng: np.random.Generator | None = None,
    solver: str = "push_relabel",
    executor: str = "serial",
    workers: int | None = None,
    runtime: RuntimeConfig | None = None,
    budget: RunBudget | None = None,
    cut_cache: CutCache | None = None,
    parallel=None,
    engine: str = "push_relabel",
) -> tuple[np.ndarray, NaturalCutStats]:
    """Run ``C`` coverage sweeps; returns ``(cut_edge_ids, stats)``.

    ``cut_edge_ids`` is the union of all edges cut by any natural cut —
    the set ``C`` of the paper, whose removal defines the fragments.

    ``runtime`` configures timeouts, retries, and fault injection;
    ``budget`` (or ``runtime.time_budget``) bounds wall-clock time — on
    expiry the cuts marked so far are returned instead of raising.

    ``cut_cache`` memoizes solves by network fingerprint: subproblems whose
    contracted flow network was already solved reuse the cached
    ``(value, source side)`` instead of running the flow solver again.  The
    cache is consulted and populated in the driver thread, so it composes
    with every executor tier.  A hit is bit-identical to a fresh solve
    (equal fingerprints imply identical networks), so caching never changes
    the detected cuts.

    ``parallel`` (a :class:`~repro.parallel.pool.ParallelRuntime`) switches
    to the handle-based pool path: the sweep collects only centers, and
    LPT-scheduled center batches are solved against the shared-memory graph
    on the persistent pool (``executor``/``workers`` are then taken from the
    runtime; with ``backend="serial"`` the same batches run inline).  The
    detected cut set is the union of per-region min cuts, which is
    independent of batching and completion order, so the result is
    bit-identical to the sequential path for the same ``rng``.

    ``engine`` names a registered :class:`~repro.cutengine.base.CutEngine`
    ("push_relabel" = the paper's min cut, bit-identical default;
    "flowcutter" = Pareto-front enumeration).  Engine solves are pure
    functions of the subproblem, so every executor/caching/ordering
    guarantee above holds for every engine; cache entries are keyed
    per-engine and can never cross engines.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    runtime = RuntimeConfig() if runtime is None else runtime
    if budget is None and runtime.time_budget is not None:
        budget = runtime.make_budget()
    eng = get_engine(engine)  # fail fast on unknown names
    stats = NaturalCutStats()
    stats.cut_engine = engine
    stats.final_executor = executor if parallel is None else parallel.backend
    marked = np.zeros(g.m, dtype=bool)

    def account(problem: CutProblem, value: float, side: np.ndarray, fallbacks: int) -> None:
        stats.problems_solved += 1
        stats.total_cut_value += value
        stats.cut_values.append(float(value))
        if fallbacks:
            stats.solver_fallbacks += 1
        marked[problem.cut_edges_of_side(side)] = True

    for sweep in range(max(1, int(C))):
        if budget is not None and budget.checkpoint("natural_cuts_sweep"):
            stats.deadline_expired = True
            break
        _apply_cache_pressure(cut_cache, runtime, sweep, stats)
        if parallel is not None:
            _pooled_sweep(
                g, U, alpha, f, rng, solver, runtime, budget,
                cut_cache, parallel, stats, marked, engine,
            )
            continue
        with profile_span("natural_cuts.collect"):
            problems = collect_cut_problems(g, U, alpha, f, rng, stats, budget=budget)
        if cut_cache is not None:
            pending = []
            for prob in problems:
                entry = cut_cache.get(eng.cache_key(prob, solver))
                if entry is None:
                    pending.append(prob)
                else:
                    account(prob, entry[0], entry[1], 0)
            stats.cache_hits += len(problems) - len(pending)
            stats.cache_misses += len(pending)
        else:
            pending = problems
        # functools.partial of a module-level function stays picklable for
        # the "processes" executor (a lambda would not)
        solve = functools.partial(
            _solve_one, solver=solver, fault_plan=runtime.fault_plan, engine=engine
        )
        with profile_span("natural_cuts.solve"):
            results, report = resilient_map(
                solve,
                pending,
                executor=executor,
                workers=workers,
                timeout=runtime.subproblem_timeout,
                max_retries=runtime.max_retries,
                backoff_base=runtime.backoff_base,
                backoff_max=runtime.backoff_max,
                backoff_jitter=runtime.backoff_jitter,
                seed=runtime.retry_seed,
                budget=budget,
                fault_plan=runtime.fault_plan,
            )
        stats.retries += report.retries
        stats.timeouts += report.timeouts
        stats.skipped += report.skipped
        stats.deadline_skipped += report.deadline_skipped
        stats.executor_degradations += report.executor_degradations
        stats.final_executor = report.final_executor
        for msg in report.error_samples:
            if len(stats.error_samples) < 8:
                stats.error_samples.append(msg)
        for prob, out in zip(pending, results):
            if out is None:
                continue  # skipped subproblem: its cuts are simply not marked
            value, side, fallbacks = out
            account(prob, value, side, fallbacks)
            if cut_cache is not None:
                cut_cache.put(eng.cache_key(prob, solver), value, side)
    if budget is not None and budget.expired():
        stats.deadline_expired = True
    cut_ids = np.flatnonzero(marked).astype(np.int64)
    stats.cut_edges_marked = len(cut_ids)
    return cut_ids, stats


def _pooled_sweep(
    g: Graph,
    U: int,
    alpha: float,
    f: float,
    rng: np.random.Generator,
    solver: str,
    runtime: RuntimeConfig,
    budget: RunBudget | None,
    cut_cache: CutCache | None,
    parallel,
    stats: NaturalCutStats,
    marked: np.ndarray,
    engine: str = "push_relabel",
) -> None:
    """One coverage sweep on the shared-memory worker pool.

    Centers are collected sequentially (as in the paper), dealt into
    LPT-ordered batches by ring size, and dispatched as handle-based tasks
    — each task pickles only its center ids.  Results stream back through
    :func:`resilient_map`, which preserves batch order, and are folded into
    ``marked``; since marking is a set union, the outcome matches the
    sequential path bit for bit.  Resilience counters are batch-granular
    here (a retried/skipped/timed-out *batch* counts once), and the
    per-subproblem timeout scales by the largest batch size.
    """
    from ..parallel.tasks import solve_center_batch

    with profile_span("natural_cuts.collect"):
        regions = collect_cut_regions(g, U, alpha, f, rng, stats, budget=budget)
    if not regions:
        return
    handle = parallel.share(g)
    workers = parallel.workers or os.cpu_count() or 1
    if parallel.backend == "serial":
        workers = 1
    n_batches = max(1, workers * parallel.config.batches_per_worker)
    from ..parallel.pool import lpt_batches

    batches = lpt_batches([ring for _, ring in regions], n_batches)
    batch_centers = [[regions[i][0] for i in batch] for batch in batches]
    task = functools.partial(
        solve_center_batch,
        handle=handle,
        U=U,
        alpha=alpha,
        f=f,
        solver=solver,
        cache_entries=cut_cache.max_entries if cut_cache is not None else 0,
        fault_plan=runtime.fault_plan,
        engine=engine,
    )
    timeout = runtime.subproblem_timeout
    if timeout is not None:
        timeout *= max(len(b) for b in batch_centers)
    with profile_span("natural_cuts.solve"):
        results, report = resilient_map(
            task,
            batch_centers,
            executor=parallel.backend,
            workers=parallel.workers,
            timeout=timeout,
            max_retries=runtime.max_retries,
            backoff_base=runtime.backoff_base,
            backoff_max=runtime.backoff_max,
            backoff_jitter=runtime.backoff_jitter,
            seed=runtime.retry_seed,
            budget=budget,
            fault_plan=runtime.fault_plan,
            pool=parallel.pool(),
        )
    stats.retries += report.retries
    stats.timeouts += report.timeouts
    stats.skipped += report.skipped
    stats.deadline_skipped += report.deadline_skipped
    stats.executor_degradations += report.executor_degradations
    stats.final_executor = report.final_executor
    for msg in report.error_samples:
        if len(stats.error_samples) < 8:
            stats.error_samples.append(msg)
    for out in results:
        if out is None:
            continue  # skipped batch: its cuts are simply not marked
        solved, wstats = out
        parallel.note_batch(wstats)
        stats.cache_hits += int(wstats.get("cache_hits", 0))
        stats.cache_misses += int(wstats.get("cache_misses", 0))
        for entry in solved:
            if entry is None:
                continue  # exhausted region / degenerate network
            _center, value, edge_ids, fallbacks = entry
            stats.problems_solved += 1
            stats.total_cut_value += value
            stats.cut_values.append(float(value))
            if fallbacks:
                stats.solver_fallbacks += 1
            marked[edge_ids] = True
