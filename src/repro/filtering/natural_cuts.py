"""Natural-cut detection (paper Section 2, "Detecting Natural Cuts").

The algorithm works in iterations.  Each iteration picks an uncovered vertex
``v`` uniformly at random as a *center*, grows a BFS tree ``T`` from it until
``s(T)`` reaches ``alpha * U``, takes the first vertices (while the tree was
smaller than ``alpha * U / f``) as the *core* and the external neighbors of
``T`` as the *ring*, and computes the minimum cut between the contracted core
and the contracted ring.  Core vertices become covered; the loop ends when
every vertex has been in some core, and the whole procedure repeats ``C``
times (the *coverage*).  The union of all cut edges delimits the fragments.

Center selection uses a pre-drawn random permutation: the first uncovered
element of a uniform permutation is uniformly distributed among the
uncovered vertices, so this is equivalent to the paper's rule while keeping
the sweep O(n).

Mirroring the paper's parallelization, each sweep first *collects* all
subproblems sequentially (BFS + core marking, which determines the centers),
then solves the min-cut instances through an executor.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..graph.graph import Graph
from ..graph.traversal import BFSWorkspace, grow_bfs_region
from .cut_problem import CutProblem, build_cut_problem, solve_cut_problem
from .executor import map_subproblems

__all__ = ["NaturalCutStats", "detect_natural_cuts", "collect_cut_problems"]


@dataclass
class NaturalCutStats:
    """Counters and distributions from natural-cut detection."""
    centers: int = 0
    problems_solved: int = 0
    exhausted_regions: int = 0
    cut_edges_marked: int = 0
    total_cut_value: float = 0.0
    cut_values: List[float] = field(default_factory=list)
    tree_sizes: List[int] = field(default_factory=list)
    core_sizes: List[int] = field(default_factory=list)
    ring_sizes: List[int] = field(default_factory=list)


def collect_cut_problems(
    g: Graph,
    U: int,
    alpha: float,
    f: float,
    rng: np.random.Generator,
    stats: NaturalCutStats | None = None,
) -> List[CutProblem]:
    """One coverage sweep: pick centers until every vertex is in some core.

    Returns the list of min-cut subproblems (regions whose BFS exhausted a
    component produce no problem — there is nothing to cut there).
    """
    max_size = max(2, int(math.ceil(alpha * U)))
    core_size = max(1, int(math.ceil(alpha * U / f)))
    ws = BFSWorkspace(g.n)
    covered = np.zeros(g.n, dtype=bool)
    problems: List[CutProblem] = []
    for center in rng.permutation(g.n):
        center = int(center)
        if covered[center]:
            continue
        region = grow_bfs_region(g, ws, center, max_size, core_size)
        covered[region.core] = True
        if stats is not None:
            stats.centers += 1
            stats.tree_sizes.append(int(region.tree_size))
            stats.core_sizes.append(int(len(region.core)))
            stats.ring_sizes.append(int(len(region.ring)))
        if region.exhausted:
            if stats is not None:
                stats.exhausted_regions += 1
            continue
        prob = build_cut_problem(g, region, center=center)
        if prob is not None:
            problems.append(prob)
    return problems


def _solve_one(problem: CutProblem, solver: str):
    return solve_cut_problem(problem, solver)


def detect_natural_cuts(
    g: Graph,
    U: int,
    alpha: float = 1.0,
    f: float = 10.0,
    C: int = 2,
    rng: np.random.Generator | None = None,
    solver: str = "push_relabel",
    executor: str = "serial",
    workers: int | None = None,
) -> tuple[np.ndarray, NaturalCutStats]:
    """Run ``C`` coverage sweeps; returns ``(cut_edge_ids, stats)``.

    ``cut_edge_ids`` is the union of all edges cut by any natural cut —
    the set ``C`` of the paper, whose removal defines the fragments.
    """
    rng = np.random.default_rng() if rng is None else rng
    stats = NaturalCutStats()
    marked = np.zeros(g.m, dtype=bool)
    for _ in range(max(1, int(C))):
        problems = collect_cut_problems(g, U, alpha, f, rng, stats)
        # functools.partial of a module-level function stays picklable for
        # the "processes" executor (a lambda would not)
        solve = functools.partial(_solve_one, solver=solver)
        results = map_subproblems(solve, problems, executor=executor, workers=workers)
        for value, cut_edges in results:
            stats.problems_solved += 1
            stats.total_cut_value += value
            stats.cut_values.append(float(value))
            marked[cut_edges] = True
    cut_ids = np.flatnonzero(marked).astype(np.int64)
    stats.cut_edges_marked = len(cut_ids)
    return cut_ids, stats
