"""Filtering phase of PUNCH: tiny cuts, natural cuts, fragment extraction."""

from .cut_problem import CutProblem, build_cut_problem, solve_cut_problem
from .fragments import FragmentStats, fragment_labels, split_oversized
from .natural_cuts import NaturalCutStats, collect_cut_problems, detect_natural_cuts
from .onecuts import OneCutStats, one_cut_labels
from .paths import PathStats, degree_two_labels
from .pipeline import FilterResult, run_filtering
from .tiny_cuts import TinyCutStats, run_tiny_cuts
from .twocut_pass import TwoCutStats, two_cut_pass_labels

__all__ = [
    "run_filtering",
    "FilterResult",
    "run_tiny_cuts",
    "TinyCutStats",
    "one_cut_labels",
    "OneCutStats",
    "degree_two_labels",
    "PathStats",
    "two_cut_pass_labels",
    "TwoCutStats",
    "detect_natural_cuts",
    "collect_cut_problems",
    "NaturalCutStats",
    "build_cut_problem",
    "solve_cut_problem",
    "CutProblem",
    "fragment_labels",
    "split_oversized",
    "FragmentStats",
]
