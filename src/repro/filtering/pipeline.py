"""The complete filtering phase: tiny cuts -> natural cuts -> fragments.

Output is the *fragment graph* (paper Fig. 2, right): each vertex is a
fragment of size <= U, each edge bundles the input edges between two
fragments.  Any partition of the fragment graph projects back to a partition
of the input with identical cost, which is exactly what the assembly phase
relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import FilterConfig, RuntimeConfig
from ..graph.contraction import ContractionChain
from ..graph.graph import Graph
from ..lint.sanitizer import get_sanitizer
from ..perf.cut_cache import CutCache
from ..perf.timers import profile_span
from ..runtime.budget import RunBudget
from .fragments import FragmentStats, fragment_labels
from .natural_cuts import NaturalCutStats, detect_natural_cuts
from .tiny_cuts import TinyCutStats, run_tiny_cuts

__all__ = ["FilterResult", "run_filtering"]


@dataclass
class FilterResult:
    """Everything the assembly phase needs, plus instrumentation.

    Attributes
    ----------
    fragment_graph : the contracted graph of fragments.
    map : per-input-vertex fragment id (compose with a fragment labeling to
        get the final partition of the input).
    tiny_stats / natural_stats / fragment_stats : per-stage counters.
    time_tiny / time_natural : wall-clock seconds per stage (the paper's
        "tny" and "nat" columns).
    """

    fragment_graph: Graph
    map: np.ndarray
    tiny_stats: Optional[TinyCutStats]
    natural_stats: Optional[NaturalCutStats]
    fragment_stats: FragmentStats
    time_tiny: float = 0.0
    time_natural: float = 0.0
    # engine that chose the natural cuts (repro.cutengine registry name)
    cut_engine: str = "push_relabel"

    @property
    def reduction_factor(self) -> float:
        """Input vertices per fragment (the filtering payoff)."""
        n0 = len(self.map)
        return n0 / max(1, self.fragment_graph.n)

    def run_report(self) -> dict:
        """Resilience incidents of the filtering phase, plus the
        informational ``"filtering"`` section (engine + solve counts)."""
        report: dict = {}
        if self.tiny_stats is not None and self.tiny_stats.deadline_expired:
            report["tiny_deadline_expired"] = True
            report["tiny_passes_run"] = self.tiny_stats.passes_run
        if self.natural_stats is not None:
            report.update(self.natural_stats.incidents())
            report["filtering"] = {
                "cut_engine": self.cut_engine,
                "problems_solved": self.natural_stats.problems_solved,
                "cut_edges_marked": self.natural_stats.cut_edges_marked,
            }
        cache = self.cache_report()
        if cache:
            report["cut_cache"] = cache
        return report

    def cache_report(self) -> dict:
        """Cut-cache counters (empty dict when the cache was disabled)."""
        ns = self.natural_stats
        if ns is None or (ns.cache_hits == 0 and ns.cache_misses == 0):
            return {}
        total = ns.cache_hits + ns.cache_misses
        return {
            "hits": ns.cache_hits,
            "misses": ns.cache_misses,
            "hit_rate": ns.cache_hits / total,
        }


def run_filtering(
    g: Graph,
    U: int,
    config: FilterConfig | None = None,
    rng: np.random.Generator | None = None,
    runtime: RuntimeConfig | None = None,
    budget: RunBudget | None = None,
    parallel=None,
    cut_cache: CutCache | None = None,
) -> FilterResult:
    """Run the filtering phase of PUNCH on ``g`` with cell bound ``U``.

    ``runtime``/``budget`` arm the resilience layer (docs/RESILIENCE.md):
    on deadline expiry the phase returns the fragments contracted so far —
    always a valid, size-bounded fragment graph — instead of raising.

    ``parallel`` (a :class:`~repro.parallel.pool.ParallelRuntime`) routes
    natural-cut detection through the shared-memory worker pool; the
    detected cuts — and therefore the fragment graph — are bit-identical
    to the sequential path.  It overrides ``config.executor``/``workers``.

    ``cut_cache`` injects a caller-owned (possibly long-lived) cache of
    min-cut solves instead of the per-run cache ``config.use_cut_cache``
    would create; the incremental update engine uses this to reuse
    untouched-fingerprint entries across successive localized re-filters.
    Cache hits are bit-identical to fresh solves, so injection can change
    only speed, never the fragments.
    """
    config = FilterConfig() if config is None else config
    rng = np.random.default_rng(0) if rng is None else rng
    if U < 1:
        raise ValueError("U must be >= 1")
    if U < int(g.vsize.max(initial=1)):
        raise ValueError("U is smaller than the largest vertex size; infeasible")
    if budget is None and runtime is not None and runtime.time_budget is not None:
        budget = runtime.make_budget()

    # under --sanitize, in-place writes through any view of the input arrays
    # raise at the offending statement instead of corrupting shared segments
    san = get_sanitizer()
    san.freeze_graph(g, "filter.input")

    chain = ContractionChain(g)

    tiny_stats = None
    t0 = time.perf_counter()
    if config.detect_tiny_cuts:
        with profile_span("filter.tiny_cuts"):
            tiny_stats = run_tiny_cuts(
                chain,
                U,
                tau=config.tau,
                chunk_large_paths=config.chunk_large_paths,
                rng=rng,
                budget=budget,
            )
    time_tiny = time.perf_counter() - t0

    natural_stats = None
    t0 = time.perf_counter()
    if config.detect_natural_cuts:
        if cut_cache is None and config.use_cut_cache:
            cut_cache = CutCache(config.cut_cache_entries)
        with profile_span("filter.natural_cuts"):
            cut_ids, natural_stats = detect_natural_cuts(
                chain.current,
                U,
                alpha=config.alpha,
                f=config.f,
                C=config.coverage,
                rng=rng,
                solver=config.flow_solver,
                executor=config.executor,
                workers=config.workers,
                runtime=runtime,
                budget=budget,
                cut_cache=cut_cache,
                parallel=parallel,
                engine=config.cut_engine,
            )
        with profile_span("filter.fragments"):
            labels, frag_stats = fragment_labels(chain.current, cut_ids, U)
            chain.apply(labels)
    else:
        # without natural cuts, fragments are whatever tiny cuts produced;
        # still enforce the size bound so assembly stays feasible
        labels, frag_stats = fragment_labels(chain.current, np.arange(chain.current.m), U)
        chain.apply(labels)
    time_natural = time.perf_counter() - t0

    san.check_fragments("filtering", chain.current, g, U)
    san.freeze_graph(chain.current, "filter.fragments")

    return FilterResult(
        fragment_graph=chain.current,
        map=chain.map,
        tiny_stats=tiny_stats,
        natural_stats=natural_stats,
        fragment_stats=frag_stats,
        time_tiny=time_tiny,
        time_natural=time_natural,
        cut_engine=config.cut_engine,
    )
