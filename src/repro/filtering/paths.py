"""Tiny-cut pass 2: contract chains of degree-2 vertices.

Paper, Section 2: "During the second pass, we identify all vertices of
degree 2. We contract each path they induce to a single vertex, unless its
total size exceeds U."

Road networks are full of such chains (roads between intersections).  A
maximal chain is found by walking outward from any unvisited degree-2
vertex; pure cycles (a whole component of degree-2 vertices) are handled as
well.  With ``chunk_large=True`` an oversized chain is greedily cut into
consecutive pieces of size at most ``U`` instead of being skipped — a strict
generalization we keep off by default to match the paper.

The production scan is vectorized: chain membership comes from one connected
-components call on the degree-2 subgraph, and the per-chain representative
(the scalar walk's ``chain[0]``) is recovered by stepping *all* chains
simultaneously, one frontier-at-a-time step per iteration.  It is
bit-identical to the retained scalar reference
(:func:`degree_two_labels_reference`) — same groups, same representatives,
same counters.  ``chunk_large=True`` needs the full path order and keeps
using the scalar walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.graph import Graph

__all__ = ["degree_two_labels", "degree_two_labels_reference", "PathStats"]


@dataclass
class PathStats:
    """Counters from tiny-cut pass 2."""
    chains_found: int = 0
    chains_contracted: int = 0
    chains_skipped: int = 0
    vertices_removed: int = 0


def _walk(g: Graph, start: int, deg2: np.ndarray, visited: np.ndarray) -> List[int]:
    """Collect the maximal degree-2 chain through ``start`` (in path order)."""
    chain = [start]
    visited[start] = True
    for direction in range(2):
        prev = start
        nbrs = g.neighbors(start)
        if direction >= len(nbrs):
            break
        cur = int(nbrs[direction])
        while deg2[cur] and not visited[cur]:
            visited[cur] = True
            if direction == 0:
                chain.append(cur)
            else:
                chain.insert(0, cur)
            nxt = [int(w) for w in g.neighbors(cur) if int(w) != prev]
            if not nxt:
                break
            prev, cur = cur, nxt[0]
        # `cur` is now an anchor (non-degree-2 / visited) vertex; not in chain
    return chain


def _chain_representatives(g: Graph, deg2: np.ndarray, starts: np.ndarray,
                           is_cycle: np.ndarray) -> np.ndarray:
    """The scalar walk's ``chain[0]`` for every chain, batch-walked.

    The scalar scan starts each chain at its minimum-id member and walks
    toward ``neighbors(start)[1]``; ``chain[0]`` is the last degree-2 vertex
    reached in that direction (or ``start`` itself when that direction
    immediately leaves the chain, or for cycles).  All walks advance in
    lockstep — chains are vertex-disjoint, so they never interfere.
    """
    xadj, adjncy = g.xadj, g.adjncy
    reps = starts.copy()
    # second neighbor of each start (every degree-2 vertex has exactly two)
    n1 = adjncy[xadj[starts] + 1].astype(np.int64)
    walking = deg2[n1] & ~is_cycle
    # cur/prev per active walk; `at` indexes back into reps
    at = np.flatnonzero(walking)
    cur = n1[at]
    prev = starts[at]
    while len(at):
        nb0 = adjncy[xadj[cur]].astype(np.int64)
        nb1 = adjncy[xadj[cur] + 1].astype(np.int64)
        nxt = np.where(nb0 == prev, nb1, nb0)
        done = ~deg2[nxt]  # cur is the endpoint on this side
        if done.any():
            reps[at[done]] = cur[done]
        cont = ~done
        at, prev, cur = at[cont], cur[cont], nxt[cont]
    return reps


def degree_two_labels(
    g: Graph, U: int, chunk_large: bool = False
) -> tuple[np.ndarray, PathStats]:
    """Compute contraction labels for pass 2. Returns ``(labels, stats)``."""
    if chunk_large:
        # chunking needs the exact path order of every chain; the scalar
        # walk provides it and this mode is off by default
        return degree_two_labels_reference(g, U, chunk_large=True)

    labels = np.arange(g.n, dtype=np.int64)
    stats = PathStats()
    deg2 = g.degrees == 2
    members = np.flatnonzero(deg2)
    if len(members) == 0:
        return labels, stats

    # chain membership: connected components of the degree-2 subgraph
    emask = deg2[g.edge_u] & deg2[g.edge_v]
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components as cc

    eu = g.edge_u[emask]
    ev = g.edge_v[emask]
    sub = csr_matrix(
        (np.ones(2 * len(eu), dtype=np.int8),
         (np.concatenate([eu, ev]), np.concatenate([ev, eu]))),
        shape=(g.n, g.n),
    )
    _, comp_all = cc(sub, directed=False)
    comp = comp_all[members]  # component id per degree-2 vertex
    # densify component ids over the degree-2 vertices only
    uniq, comp = np.unique(comp, return_inverse=True)
    n_chains = len(uniq)

    # per-chain: min-id member (the scalar scan's start), total size,
    # member count, and whether the chain is a pure cycle (#edges == #verts)
    order = np.argsort(comp, kind="stable")  # members ascending within chains
    sorted_members = members[order]
    counts = np.bincount(comp, minlength=n_chains)
    first = np.cumsum(counts) - counts
    starts = sorted_members[first]  # members is ascending, so first = min id
    sizes = np.bincount(comp, weights=g.vsize[members], minlength=n_chains)
    # map subgraph edges to dense chain ids (every such edge joins two
    # degree-2 vertices, hence lies inside one chain)
    edge_chain = np.searchsorted(uniq, comp_all[eu])
    edge_counts = np.bincount(edge_chain, minlength=n_chains)
    is_cycle = edge_counts >= counts

    reps = _chain_representatives(g, deg2, starts, is_cycle)

    contract = sizes <= U
    stats.chains_found = int(n_chains)
    stats.chains_contracted = int(np.count_nonzero(contract))
    stats.chains_skipped = int(n_chains - stats.chains_contracted)
    stats.vertices_removed = int((counts[contract] - 1).sum())

    # label every member of a contracted chain with its representative
    member_contract = contract[comp]
    labels[members[member_contract]] = reps[comp[member_contract]]
    return labels, stats


def degree_two_labels_reference(
    g: Graph, U: int, chunk_large: bool = False
) -> tuple[np.ndarray, PathStats]:
    """Scalar (walk-at-a-time) reference for :func:`degree_two_labels`.

    Retained for equivalence tests, the hot-path benchmark, and the
    ``chunk_large`` mode (which needs full path order).
    """
    labels = np.arange(g.n, dtype=np.int64)
    stats = PathStats()
    deg = g.degrees
    deg2 = deg == 2
    visited = np.zeros(g.n, dtype=bool)

    for v in np.flatnonzero(deg2):
        v = int(v)
        if visited[v]:
            continue
        chain = _walk(g, v, deg2, visited)
        stats.chains_found += 1
        sizes = g.vsize[chain]
        total = int(sizes.sum())
        if total <= U:
            labels[chain] = chain[0]
            stats.chains_contracted += 1
            stats.vertices_removed += len(chain) - 1
        elif chunk_large:
            # greedy consecutive chunks, each of size <= U
            acc = 0
            rep = chain[0]
            for u, s in zip(chain, sizes):
                s = int(s)
                if acc + s > U:
                    rep = u
                    acc = 0
                labels[u] = rep
                acc += s
            stats.chains_contracted += 1
            stats.vertices_removed += len(chain) - len(np.unique(labels[chain]))
        else:
            stats.chains_skipped += 1
    return labels, stats
