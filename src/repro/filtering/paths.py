"""Tiny-cut pass 2: contract chains of degree-2 vertices.

Paper, Section 2: "During the second pass, we identify all vertices of
degree 2. We contract each path they induce to a single vertex, unless its
total size exceeds U."

Road networks are full of such chains (roads between intersections).  A
maximal chain is found by walking outward from any unvisited degree-2
vertex; pure cycles (a whole component of degree-2 vertices) are handled as
well.  With ``chunk_large=True`` an oversized chain is greedily cut into
consecutive pieces of size at most ``U`` instead of being skipped — a strict
generalization we keep off by default to match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.graph import Graph

__all__ = ["degree_two_labels", "PathStats"]


@dataclass
class PathStats:
    """Counters from tiny-cut pass 2."""
    chains_found: int = 0
    chains_contracted: int = 0
    chains_skipped: int = 0
    vertices_removed: int = 0


def _walk(g: Graph, start: int, deg2: np.ndarray, visited: np.ndarray) -> List[int]:
    """Collect the maximal degree-2 chain through ``start`` (in path order)."""
    chain = [start]
    visited[start] = True
    for direction in range(2):
        prev = start
        nbrs = g.neighbors(start)
        if direction >= len(nbrs):
            break
        cur = int(nbrs[direction])
        while deg2[cur] and not visited[cur]:
            visited[cur] = True
            if direction == 0:
                chain.append(cur)
            else:
                chain.insert(0, cur)
            nxt = [int(w) for w in g.neighbors(cur) if int(w) != prev]
            if not nxt:
                break
            prev, cur = cur, nxt[0]
        # `cur` is now an anchor (non-degree-2 / visited) vertex; not in chain
    return chain


def degree_two_labels(
    g: Graph, U: int, chunk_large: bool = False
) -> tuple[np.ndarray, PathStats]:
    """Compute contraction labels for pass 2. Returns ``(labels, stats)``."""
    labels = np.arange(g.n, dtype=np.int64)
    stats = PathStats()
    deg = g.degrees
    deg2 = deg == 2
    visited = np.zeros(g.n, dtype=bool)

    for v in np.flatnonzero(deg2):
        v = int(v)
        if visited[v]:
            continue
        chain = _walk(g, v, deg2, visited)
        stats.chains_found += 1
        sizes = g.vsize[chain]
        total = int(sizes.sum())
        if total <= U:
            labels[chain] = chain[0]
            stats.chains_contracted += 1
            stats.vertices_removed += len(chain) - 1
        elif chunk_large:
            # greedy consecutive chunks, each of size <= U
            acc = 0
            rep = chain[0]
            for u, s in zip(chain, sizes):
                s = int(s)
                if acc + s > U:
                    rep = u
                    acc = 0
                labels[u] = rep
                acc += s
            stats.chains_contracted += 1
            stats.vertices_removed += len(chain) - len(np.unique(labels[chain]))
        else:
            stats.chains_skipped += 1
    return labels, stats
