"""Tiny-cut pass 3: contract small components cut off by 2-cuts.

Paper, Section 2: the relation "``e`` and ``f`` form a 2-cut but neither is
a bridge" is an equivalence relation on edges; its classes are found in
near-linear time (:mod:`repro.graph.twocuts`).  For each class ``S`` we
compute the connected components of ``(V, E \\ S)`` and contract every
component of size at most ``U``.

The paper cannot afford Θ(|V|) work per class and traverses "two components
at a time", skipping the largest.  We use an equally work-bounded scheme
that is simpler to reason about: traversals start from the endpoints of the
class edges, are expanded round-robin, are *merged* when they collide, and
are *abandoned* the moment their size exceeds ``U`` (an oversized component
can never be contracted, so finishing it is wasted work).  Every class thus
costs ``O(min(|component|, U))`` per component instead of Θ(|V|).

Contractions across classes are applied through a union-find that refuses
any union pushing a group's size beyond ``U``, so the bound holds regardless
of how components of different classes overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..graph.graph import Graph
from ..graph.twocuts import two_cut_classes

__all__ = ["two_cut_pass_labels", "TwoCutStats", "class_components_bounded"]


@dataclass
class TwoCutStats:
    """Counters from tiny-cut pass 3."""
    classes: int = 0
    components_contracted: int = 0
    vertices_removed: int = 0


class _SizeBoundedUF:
    """Union-find over vertices that never lets a group exceed ``U``."""

    def __init__(self, vsize: np.ndarray, U: int) -> None:
        self.parent = np.arange(len(vsize), dtype=np.int64)
        self.size = vsize.astype(np.int64).copy()
        self.U = U

    def find(self, x: int) -> int:
        """Union-find root with path halving."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = int(p[x])
        return x

    def group_size(self, members: np.ndarray) -> int:
        """Combined size of the groups containing ``members``."""
        roots = {self.find(int(v)) for v in members}
        return int(sum(int(self.size[r]) for r in roots))

    def union_all(self, members: np.ndarray) -> bool:
        """Union all members if the combined group fits in ``U``."""
        # sorted: the smallest root becomes the representative, so group ids
        # never depend on set iteration order
        roots = sorted({self.find(int(v)) for v in members})
        total = sum(int(self.size[r]) for r in roots)
        if total > self.U:
            return False
        base = roots[0]
        for r in roots[1:]:
            self.parent[r] = base
        self.size[base] = total
        return True


def class_components_bounded(
    g: Graph, class_edges: np.ndarray, U: int
) -> List[np.ndarray]:
    """Components of ``(V, E \\ class_edges)`` that have size <= U.

    Uses the round-robin bounded traversal described in the module docstring;
    only components containing an endpoint of a class edge can be small (all
    others see no removed edge adjacent... they may still, but such a
    component has no removed edge on its boundary and so equals a component
    of G — the caller only passes connected graphs, so there is exactly one
    such component: the rest of the graph, which we never want to traverse).
    """
    blocked = set(int(e) for e in class_edges)
    blocked_ids = np.asarray(sorted(blocked), dtype=np.int64)
    seeds = np.unique(
        np.concatenate([g.edge_u[blocked_ids], g.edge_v[blocked_ids]])
    ).astype(np.int64)

    owner: Dict[int, int] = {}  # vertex -> traversal id (union-find on ids)
    trav_parent: List[int] = []
    trav_members: List[List[int]] = []
    trav_queue: List[List[int]] = []
    trav_size: List[int] = []
    trav_dead: List[bool] = []  # abandoned (oversized)

    def tfind(i: int) -> int:
        while trav_parent[i] != i:
            trav_parent[i] = trav_parent[trav_parent[i]]
            i = trav_parent[i]
        return i

    for v in seeds:
        v = int(v)
        if v in owner:
            continue
        tid = len(trav_parent)
        trav_parent.append(tid)
        trav_members.append([v])
        trav_queue.append([v])
        trav_size.append(int(g.vsize[v]))
        trav_dead.append(trav_size[-1] > U)
        owner[v] = tid

    xadj, adjncy, eid, vsize = g.xadj, g.adjncy, g.eid, g.vsize
    active = list(range(len(trav_parent)))
    while True:
        # refresh the active list: roots with non-empty queues, not dead
        active = [i for i in active if tfind(i) == i and trav_queue[i] and not trav_dead[i]]
        if len(active) <= 1:
            # the last unfinished traversal is (w.h.p.) the big rest of the
            # graph; by the paper's argument we may skip finishing it --
            # unless it is genuinely small, so drain it only up to size U
            if active:
                i = active[0]
                while trav_queue[i] and not trav_dead[i]:
                    _expand_one(g, i, owner, tfind, trav_parent, trav_members, trav_queue, trav_size, trav_dead, blocked, U)
                    i = tfind(i)
            break
        for i in list(active):
            i = tfind(i)
            if trav_dead[i] or not trav_queue[i]:
                continue
            _expand_one(g, i, owner, tfind, trav_parent, trav_members, trav_queue, trav_size, trav_dead, blocked, U)

    comps = []
    seen_roots = set()
    for i in range(len(trav_parent)):
        r = tfind(i)
        if r in seen_roots:
            continue
        seen_roots.add(r)
        if not trav_dead[r] and not trav_queue[r] and trav_size[r] <= U:
            comps.append(np.asarray(trav_members[r], dtype=np.int64))
    return comps


def _expand_one(g, i, owner, tfind, trav_parent, trav_members, trav_queue, trav_size, trav_dead, blocked, U):
    """Expand one vertex of traversal ``i`` (one round-robin step)."""
    v = trav_queue[i].pop()
    for idx in range(g.xadj[v], g.xadj[v + 1]):
        e = int(g.eid[idx])
        if e in blocked:
            continue
        w = int(g.adjncy[idx])
        j = owner.get(w)
        if j is None:
            ri = tfind(i)
            owner[w] = ri
            trav_members[ri].append(w)
            trav_queue[ri].append(w)
            trav_size[ri] += int(g.vsize[w])
            if trav_size[ri] > U:
                trav_dead[ri] = True
                return
        else:
            rj = tfind(j)
            ri = tfind(i)
            if ri != rj:
                # collision: same component; merge traversals
                trav_parent[rj] = ri
                trav_members[ri].extend(trav_members[rj])
                trav_queue[ri].extend(trav_queue[rj])
                trav_size[ri] += trav_size[rj]
                trav_dead[ri] = trav_dead[ri] or trav_dead[rj]
                trav_members[rj] = []
                trav_queue[rj] = []
                if trav_size[ri] > U:
                    trav_dead[ri] = True
                    return


def two_cut_pass_labels(
    g: Graph, U: int, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, TwoCutStats]:
    """Compute contraction labels for pass 3. Returns ``(labels, stats)``."""
    stats = TwoCutStats()
    classes = two_cut_classes(g, rng)
    stats.classes = len(classes)
    uf = _SizeBoundedUF(g.vsize, U)
    for cls in classes:
        for comp in class_components_bounded(g, cls, U):
            if uf.union_all(comp):
                stats.components_contracted += 1
    labels = np.fromiter((uf.find(v) for v in range(g.n)), dtype=np.int64, count=g.n)
    stats.vertices_removed = g.n - len(np.unique(labels))
    return labels, stats
