"""Equivalence and behavior tests for the perf layer.

Covers the bit-identical contract of every vectorized kernel against its
retained scalar reference, the CutCache (hits must never change a
partition), the phase profiler, and the local-search sampling fixes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assembly.cells import PartitionState
from repro.assembly.greedy import adjacency_of_graph, greedy_labels_for_graph
from repro.assembly.instance import build_aux_instance, build_aux_instance_reference
from repro.assembly.local_search import _RandomPairSet, local_search
from repro.core.config import FilterConfig, PunchConfig
from repro.core.punch import run_punch
from repro.filtering.cut_problem import (
    build_cut_problem,
    build_cut_problem_reference,
    solve_cut_problem,
    solve_cut_problem_sides,
)
from repro.filtering.natural_cuts import detect_natural_cuts
from repro.filtering.paths import degree_two_labels, degree_two_labels_reference
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import _global_relabel, global_relabel_reference
from repro.graph.csr import gather_csr_rows, stable_unique
from repro.graph.traversal import (
    BFSWorkspace,
    bfs_order,
    bfs_order_reference,
    grow_bfs_region,
    grow_bfs_region_reference,
)
from repro.perf.cut_cache import CutCache
from repro.perf.timers import PhaseProfiler, get_profiler, set_profiler
from repro.synthetic import road_network

SEEDS = [0, 1, 7]


@pytest.fixture(scope="module")
def road():
    return road_network(n_target=900, seed=3)


def random_graph(rng, n=60, extra=80):
    """A connected-ish random graph with random weights and sizes."""
    from repro.graph.builder import build_graph

    u = np.concatenate([np.arange(n - 1), rng.integers(0, n, size=extra)])
    v = np.concatenate([np.arange(1, n), rng.integers(0, n, size=extra)])
    keep = u != v
    u, v = u[keep], v[keep]
    w = rng.integers(1, 10, size=len(u)).astype(np.float64)
    s = rng.integers(1, 5, size=n)
    return build_graph(n, u, v, weights=w, sizes=s)


class TestCsrPrimitives:
    def test_gather_csr_rows_matches_slices(self, road):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, road.n, size=50).astype(np.int64)
        got = gather_csr_rows(road.xadj, road.adjncy, rows)
        want = np.concatenate(
            [road.adjncy[road.xadj[r] : road.xadj[r + 1]] for r in rows]
        )
        assert np.array_equal(got, want)

    def test_gather_empty_rows(self, road):
        assert len(gather_csr_rows(road.xadj, road.adjncy, np.empty(0, np.int64))) == 0

    def test_stable_unique_keeps_first_occurrence_order(self):
        a = np.asarray([5, 3, 5, 9, 3, 1, 9], dtype=np.int64)
        assert stable_unique(a).tolist() == [5, 3, 9, 1]


class TestTraversalEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_grow_bfs_region_identical(self, road, seed):
        rng = np.random.default_rng(seed)
        ws_a, ws_b = BFSWorkspace(road.n), BFSWorkspace(road.n)
        for c in rng.integers(0, road.n, size=40):
            a = grow_bfs_region_reference(road, ws_a, int(c), 80, 8)
            b = grow_bfs_region(road, ws_b, int(c), 80, 8)
            assert np.array_equal(a.tree, b.tree)
            assert np.array_equal(a.ring, b.ring)
            assert a.core_count == b.core_count
            assert a.exhausted == b.exhausted

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bfs_order_identical(self, road, seed):
        rng = np.random.default_rng(seed)
        for c in rng.integers(0, road.n, size=10):
            assert np.array_equal(
                bfs_order_reference(road, int(c)), bfs_order(road, int(c))
            )

    def test_random_graphs(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            g = random_graph(rng)
            ws_a, ws_b = BFSWorkspace(g.n), BFSWorkspace(g.n)
            for c in rng.integers(0, g.n, size=8):
                a = grow_bfs_region_reference(g, ws_a, int(c), 30, 4)
                b = grow_bfs_region(g, ws_b, int(c), 30, 4)
                assert np.array_equal(a.tree, b.tree)
                assert np.array_equal(a.ring, b.ring)
                assert a.core_count == b.core_count


class TestTinyCutScanEquivalence:
    @pytest.mark.parametrize("U", [1, 5, 50, 10**9])
    def test_degree_two_labels_identical(self, road, U):
        la, sa = degree_two_labels(road, U)
        lb, sb = degree_two_labels_reference(road, U)
        assert np.array_equal(la, lb)
        assert sa == sb

    def test_random_graphs(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            g = random_graph(rng, n=40, extra=10)
            for U in (1, 3, 1000):
                la, sa = degree_two_labels(g, U)
                lb, sb = degree_two_labels_reference(g, U)
                assert np.array_equal(la, lb)
                assert sa == sb


class TestCutProblemEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_networks_identical(self, road, seed):
        rng = np.random.default_rng(seed)
        ws = BFSWorkspace(road.n)
        for c in rng.integers(0, road.n, size=30):
            region = grow_bfs_region(road, ws, int(c), 80, 8)
            if region.exhausted:
                continue
            a = build_cut_problem(road, region)
            b = build_cut_problem_reference(road, region)
            if a is None or b is None:
                assert a is None and b is None
                continue
            assert a.n_local == b.n_local
            assert np.array_equal(a.net_u, b.net_u)
            assert np.array_equal(a.net_v, b.net_v)
            assert np.array_equal(a.net_cap, b.net_cap)
            assert a.fingerprint() == b.fingerprint()
            # candidate arrays may be ordered differently but cover the
            # same edges with the same local endpoints
            ka = sorted(zip(a.cand_edges.tolist(), a.cand_lu.tolist(), a.cand_lv.tolist()))
            kb = sorted(zip(b.cand_edges.tolist(), b.cand_lu.tolist(), b.cand_lv.tolist()))
            assert ka == kb
            va, ea = solve_cut_problem(a)
            vb, eb = solve_cut_problem(b)
            assert va == vb
            assert np.array_equal(np.sort(ea), np.sort(eb))


class TestGlobalRelabelEquivalence:
    def test_zero_and_nonzero_flows(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(4, 30))
            m = int(rng.integers(n, 3 * n))
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            keep = u != v
            u, v = u[keep], v[keep]
            if len(u) == 0:
                continue
            cap = rng.integers(1, 10, size=len(u)).astype(np.float64)
            net = FlowNetwork(n, u, v, cap)
            zero = np.zeros(net.n_arcs)
            assert np.array_equal(
                _global_relabel(net, zero, 0, 1), global_relabel_reference(net, zero, 0, 1)
            )
            # random antisymmetric preflow within capacities
            f = rng.uniform(0, 1, size=net.n_arcs // 2) * net.arc_cap[0::2]
            flow = np.empty(net.n_arcs)
            flow[0::2] = f
            flow[1::2] = -f
            assert np.array_equal(
                _global_relabel(net, flow, 0, 1), global_relabel_reference(net, flow, 0, 1)
            )


class TestAuxInstanceEquivalence:
    @pytest.mark.parametrize("variant", ["L2", "L2+", "L2*"])
    def test_identical_including_edge_order(self, road, variant):
        labels = greedy_labels_for_graph(road, 60, np.random.default_rng(5))
        state = PartitionState(road, labels)
        pairs = state.adjacent_pairs()[:30]
        for R, S in pairs:
            a = build_aux_instance(state, R, S, variant)
            b = build_aux_instance_reference(state, R, S, variant)
            assert np.array_equal(a.unit_sizes, b.unit_sizes)
            assert np.array_equal(a.unit_cell, b.unit_cell)
            assert np.array_equal(a.uncontracted, b.uncontracted)
            assert a.unit_frags == b.unit_frags
            assert np.array_equal(a.edge_a, b.edge_a)
            assert np.array_equal(a.edge_b, b.edge_b)
            assert np.array_equal(a.edge_w, b.edge_w)
            assert a.adjacency() == b.adjacency()

    def test_cache_invalidation_after_replace(self, road):
        """Cached cell arrays must not survive the cells they describe."""
        rng = np.random.default_rng(9)
        labels = greedy_labels_for_graph(road, 60, rng)
        state = PartitionState(road, labels)
        local_search(state, 60, variant="L2+", phi_max=2, rng=rng, max_steps=30)
        state.check()
        assert state.cost == pytest.approx(state.recompute_cost())
        # cached adjacency of every live cell matches a cold rebuild from the
        # same labels (destroyed cells were evicted, survivors are intact)
        cold = PartitionState(road, state.labels.copy())
        relabel = {}
        for v, c in enumerate(state.labels.tolist()):
            relabel.setdefault(c, int(cold.labels[v]))
        for c in state.cells():
            mem, vv, loc, ys, ws = state.cell_adjacency(c)
            assert np.array_equal(mem, np.asarray(state.cell_members[c]))
            mem2, vv2, loc2, ys2, ws2 = cold.cell_adjacency(relabel[c])
            assert np.array_equal(np.sort(mem), np.sort(mem2))
            assert np.array_equal(loc, loc2) or len(loc) == len(loc2)
            assert ws.sum() == pytest.approx(ws2.sum())


class TestCutCache:
    def test_hit_returns_stored_result(self):
        cache = CutCache()
        side = np.asarray([True, False, True])
        cache.put(b"k1", 3.5, side)
        value, stored = cache.get(b"k1")
        assert value == 3.5 and np.array_equal(stored, side)
        assert cache.hits == 1 and cache.misses == 0
        assert cache.get(b"nope") is None
        assert cache.misses == 1

    def test_eviction_bound(self):
        cache = CutCache(max_entries=4)
        for i in range(10):
            cache.put(bytes([i]), float(i), np.asarray([bool(i % 2)]))
        assert len(cache) == 4
        assert cache.get(bytes([0])) is None  # evicted (FIFO)
        assert cache.get(bytes([9])) is not None

    def test_stored_side_is_frozen_copy(self):
        cache = CutCache()
        side = np.asarray([True, False])
        cache.put(b"k", 1.0, side)
        side[0] = False  # caller mutation must not reach the cache
        _, stored = cache.get(b"k")
        assert stored[0]
        with pytest.raises(ValueError):
            stored[0] = False

    def test_equal_fingerprints_reuse_is_identical(self, road):
        """A cache hit returns exactly what a fresh solve would."""
        rng = np.random.default_rng(2)
        ws = BFSWorkspace(road.n)
        problems = []
        for c in rng.integers(0, road.n, size=60):
            r = grow_bfs_region(road, ws, int(c), 80, 8)
            if not r.exhausted:
                problems.append(build_cut_problem(road, r))
        by_fp = {}
        for p in problems:
            by_fp.setdefault(p.fingerprint(), []).append(p)
        for group in by_fp.values():
            v0, s0 = solve_cut_problem_sides(group[0])
            for p in group[1:]:
                v, s = solve_cut_problem_sides(p)
                assert v == v0
                assert np.array_equal(s, s0)

    def test_cache_never_changes_cuts(self, road):
        ids_a, stats_a = detect_natural_cuts(
            road, 64, C=2, rng=np.random.default_rng(3), cut_cache=None
        )
        cache = CutCache()
        ids_b, stats_b = detect_natural_cuts(
            road, 64, C=2, rng=np.random.default_rng(3), cut_cache=cache
        )
        assert np.array_equal(ids_a, ids_b)
        assert stats_b.cache_hits == cache.hits
        assert stats_b.cache_hits + stats_b.cache_misses > 0

    def test_cache_never_changes_partition(self, road):
        """End-to-end: identical partitions with the cache on and off."""
        on = run_punch(
            road, 64, PunchConfig(filter=FilterConfig(use_cut_cache=True), seed=0)
        )
        off = run_punch(
            road, 64, PunchConfig(filter=FilterConfig(use_cut_cache=False), seed=0)
        )
        assert on.cost == off.cost
        assert np.array_equal(on.partition.labels, off.partition.labels)
        report = on.run_report()
        assert report["cut_cache"]["misses"] > 0
        assert "cut_cache" not in off.run_report()


class TestPhaseProfiler:
    def test_disabled_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.span("x"):
            pass
        prof.count("c")
        assert prof.spans == {} and prof.counters == {}

    def test_enabled_aggregates_by_name(self):
        prof = PhaseProfiler(enabled=True)
        for _ in range(3):
            with prof.span("x"):
                pass
        prof.count("c", 2)
        prof.count("c")
        out = prof.export()
        assert out["spans"]["x"]["calls"] == 3
        assert out["spans"]["x"]["wall_s"] >= 0
        assert out["counters"]["c"] == 3
        assert "x" in prof.report()

    def test_span_records_on_exception(self):
        prof = PhaseProfiler(enabled=True)
        with pytest.raises(RuntimeError):
            with prof.span("boom"):
                raise RuntimeError("boom")
        assert prof.spans["boom"][2] == 1

    def test_set_profiler_swaps_global(self):
        prev = get_profiler()
        mine = PhaseProfiler(enabled=True)
        try:
            assert set_profiler(mine) is prev
            assert get_profiler() is mine
        finally:
            set_profiler(prev)

    def test_punch_run_populates_spans_when_enabled(self, road):
        prof = get_profiler()
        prof.reset()
        prof.enabled = True
        try:
            run_punch(road, 96, PunchConfig(seed=0))
        finally:
            prof.enabled = False
        names = set(prof.spans)
        prof.reset()
        assert {"filter.tiny_cuts", "filter.natural_cuts", "assembly.greedy"} <= names


class TestLocalSearchFixes:
    def test_sample_empty_raises_indexerror(self):
        s = _RandomPairSet()
        with pytest.raises(IndexError):
            s.sample(np.random.default_rng(0))

    def test_sample_after_discard_to_empty(self):
        s = _RandomPairSet()
        s.add((1, 2))
        s.discard((1, 2))
        assert len(s) == 0
        with pytest.raises(IndexError):
            s.sample(np.random.default_rng(0))

    def test_batch_search_survives_stale_only_pairs(self, road):
        """A round whose sampled pairs all turn stale must not crash."""
        rng = np.random.default_rng(4)
        labels = greedy_labels_for_graph(road, 60, rng)
        state = PartitionState(road, labels)
        stats = local_search(
            state, 60, variant="L2+", phi_max=4, rng=rng, max_steps=50, batch=8
        )
        state.check()
        # the cap is enforced per round, so a batched round may overshoot
        # by at most batch - 1 steps
        assert stats.steps <= 50 + 7


class TestGraphAccessors:
    def test_half_edge_weights_memoized(self, road):
        a = road.half_edge_weights()
        assert a is road.half_edge_weights()
        assert np.array_equal(a, road.ewgt[road.eid])

    def test_edges_arrays_matches_generator(self, road):
        eu, ev, ew = road.edges_arrays()
        gen = list(road.edges())
        assert len(gen) == road.m
        assert gen == list(zip(eu.tolist(), ev.tolist(), ew.tolist()))

    def test_adjacency_of_graph_order_and_values(self, road):
        adj = adjacency_of_graph(road)
        assert len(adj) == road.n
        for e in range(0, road.m, max(1, road.m // 50)):
            u, v = int(road.edge_u[e]), int(road.edge_v[e])
            assert adj[u][v] == adj[v][u] == float(road.ewgt[e])
