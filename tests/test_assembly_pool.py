"""Unit tests for the elite pool and solution combination."""

import numpy as np
import pytest

from repro.assembly import ElitePool, Solution, combine_solutions, perturbed_graph
from repro.core.config import AssemblyConfig

from .conftest import barbell, cycle_graph, random_connected_graph


def sol(g, labels):
    return Solution.from_labels(g, np.asarray(labels))


class TestSolution:
    def test_cost_computed(self):
        g = cycle_graph(4)
        s = sol(g, [0, 0, 1, 1])
        assert s.cost == 2.0
        assert len(s.cut_set) == 2

    def test_distance_symmetric_difference(self):
        g = cycle_graph(6)
        s1 = sol(g, [0, 0, 0, 1, 1, 1])
        s2 = sol(g, [0, 0, 1, 1, 1, 1])
        assert s1.distance(s2) == 2
        assert s1.distance(s1) == 0

    def test_labels_copied(self):
        g = cycle_graph(4)
        labels = np.asarray([0, 0, 1, 1])
        s = sol(g, labels)
        labels[0] = 9
        assert s.labels[0] == 0


class TestElitePool:
    def test_fills_to_capacity(self):
        g = cycle_graph(6)
        pool = ElitePool(2)
        assert pool.add(sol(g, [0, 0, 0, 1, 1, 1]))
        assert pool.add(sol(g, [0, 0, 1, 1, 2, 2]))
        assert len(pool) == 2

    def test_rejects_when_all_better(self):
        g = cycle_graph(6)
        pool = ElitePool(2)
        pool.add(sol(g, [0, 0, 0, 1, 1, 1]))  # cost 2
        pool.add(sol(g, [0, 0, 0, 0, 1, 1]))  # cost 2
        bad = sol(g, list(range(6)))  # cost 6
        # both pool members are better? no: bad.cost=6 >= both -> it CAN
        # replace one (the most similar no-better one). "all better" means
        # pool costs < bad cost, so candidates = none... wait: candidates
        # are pool members with cost >= bad.cost. Here none -> rejected.
        assert not pool.add(bad)
        assert len(pool) == 2

    def test_evicts_most_similar(self):
        g = cycle_graph(8)
        pool = ElitePool(2)
        s1 = sol(g, [0, 0, 0, 0, 1, 1, 1, 1])  # cost 2
        s2 = sol(g, [0, 0, 1, 1, 1, 1, 2, 2])  # cost 3
        pool.add(s1)
        pool.add(s2)
        # new solution with cost 3, nearly identical to s2
        s3 = sol(g, [0, 0, 1, 1, 1, 2, 2, 2])
        assert pool.add(s3)
        costs = sorted(s.cost for s in pool.solutions)
        assert costs == [2.0, 3.0]
        # s2 (the similar, no-better one) was evicted, s1 survived
        assert any(s.distance(s1) == 0 for s in pool.solutions)

    def test_best(self):
        g = cycle_graph(6)
        pool = ElitePool(3)
        pool.add(sol(g, list(range(6))))
        pool.add(sol(g, [0, 0, 0, 1, 1, 1]))
        assert pool.best.cost == 2.0

    def test_sample_two_distinct(self, rng):
        g = cycle_graph(6)
        pool = ElitePool(3)
        pool.add(sol(g, [0, 0, 0, 1, 1, 1]))
        pool.add(sol(g, [0, 0, 1, 1, 2, 2]))
        a, b = pool.sample_two(rng)
        assert a is not b

    def test_sample_two_requires_two(self, rng):
        pool = ElitePool(3)
        with pytest.raises(ValueError):
            pool.sample_two(rng)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ElitePool(0)


class TestCombination:
    def test_perturbed_graph_factors(self):
        g = cycle_graph(6)
        s1 = sol(g, [0, 0, 0, 1, 1, 1])
        s2 = sol(g, [0, 0, 0, 1, 1, 1])
        gp = perturbed_graph(g, s1, s2, 5.0, 3.0, 2.0)
        # edges cut by both get factor 2, others factor 5
        cut = sorted(s1.cut_set)
        for e in range(g.m):
            expected = 2.0 if e in s1.cut_set else 5.0
            assert gp.ewgt[e] == expected

    def test_perturbed_graph_single_agreement(self):
        g = cycle_graph(6)
        s1 = sol(g, [0, 0, 0, 1, 1, 1])
        s2 = sol(g, [0, 0, 1, 1, 1, 1])
        gp = perturbed_graph(g, s1, s2, 5.0, 3.0, 2.0)
        b = np.zeros(g.m, dtype=int)
        for e in s1.cut_set:
            b[e] += 1
        for e in s2.cut_set:
            b[e] += 1
        assert np.allclose(gp.ewgt, np.asarray([5.0, 3.0, 2.0])[b])

    def test_combination_output_feasible(self):
        g = random_connected_graph(40, 30, seed=3)
        rng = np.random.default_rng(0)
        from repro.assembly import greedy_labels_for_graph

        U = 10
        s1 = sol(g, greedy_labels_for_graph(g, U, rng))
        s2 = sol(g, greedy_labels_for_graph(g, U, rng))
        cfg = AssemblyConfig(phi=4)
        child = combine_solutions(g, s1, s2, U, cfg, rng)
        sizes = np.bincount(child.labels, weights=g.vsize)
        assert sizes.max() <= U
        # cost is evaluated under ORIGINAL weights
        assert child.cost == pytest.approx(
            float(g.ewgt[child.labels[g.edge_u] != child.labels[g.edge_v]].sum())
        )

    def test_combination_inherits_shared_cut(self):
        """If both parents agree on the (optimal) bridge cut, the child
        keeps it."""
        g = barbell(6)
        perfect = [0] * 6 + [1] * 6
        s1 = sol(g, perfect)
        s2 = sol(g, perfect)
        rng = np.random.default_rng(1)
        child = combine_solutions(g, s1, s2, 6, AssemblyConfig(phi=4), rng)
        assert child.cost == 1.0
