"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import bridges, is_connected
from repro.synthetic import (
    INSTANCE_PARAMS,
    RoadNetParams,
    delaunay_graph,
    grid_graph,
    grid_with_walls,
    instance,
    instance_names,
    road_network,
    two_blobs,
)


class TestGrid:
    def test_grid_structure(self):
        g = grid_graph(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horizontal + vertical
        assert is_connected(g)
        g.check()

    def test_grid_coords(self):
        g = grid_graph(3, 3)
        assert g.coords is not None
        assert g.coords.shape == (9, 2)

    def test_walls_reduce_edges(self):
        base = grid_graph(6, 12)
        walled = grid_with_walls(6, 12, wall_cols=[5])
        assert walled.m < base.m
        assert is_connected(walled)

    def test_wall_gap_is_min_cut(self):
        g = grid_with_walls(8, 16, wall_cols=[7], gap_rows=[3])
        # removing the single gap edge disconnects left from right
        gap = [
            e
            for e in range(g.m)
            if {int(g.edge_u[e]) % 16, int(g.edge_v[e]) % 16} == {7, 8}
        ]
        assert len(gap) == 1
        assert gap[0] in bridges(g).tolist()

    def test_two_blobs(self):
        g, cut = two_blobs(50, bridge_len=2, seed=0)
        assert is_connected(g)
        assert cut == 1
        g.check()


class TestRoadNetwork:
    def test_connected_and_sized(self):
        g = road_network(n_target=2000, seed=0)
        assert is_connected(g)
        assert 0.7 * 2000 <= g.n <= 1.3 * 2000
        g.check()

    def test_road_like_degree(self):
        g = road_network(n_target=3000, seed=1)
        avg_deg = 2 * g.m / g.n
        assert 2.0 <= avg_deg <= 4.0  # paper: road networks avg degree < 3

    def test_deterministic(self):
        g1 = road_network(n_target=1000, seed=7)
        g2 = road_network(n_target=1000, seed=7)
        assert g1.n == g2.n and g1.m == g2.m
        assert np.array_equal(g1.edge_u, g2.edge_u)
        assert np.array_equal(g1.edge_v, g2.edge_v)

    def test_seed_changes_graph(self):
        g1 = road_network(n_target=1000, seed=1)
        g2 = road_network(n_target=1000, seed=2)
        assert g1.m != g2.m or not np.array_equal(g1.edge_u, g2.edge_u)

    def test_has_coords(self):
        g = road_network(n_target=800, seed=3)
        assert g.coords is not None
        assert g.coords.shape == (g.n, 2)

    def test_has_natural_cuts(self):
        """Road networks must have bridges/small cuts for PUNCH to exploit."""
        g = road_network(n_target=3000, seed=4)
        assert len(bridges(g)) > 0

    def test_params_and_kwargs_exclusive(self):
        with pytest.raises(ValueError):
            road_network(RoadNetParams(), n_target=100)

    def test_rivers_create_sparse_city_cuts(self):
        # big single city with a river: interior min cut small
        g = road_network(n_target=2000, n_cities=2, river_min_city=100, seed=5)
        assert is_connected(g)


class TestDelaunay:
    def test_connected(self):
        g = delaunay_graph(400, seed=0)
        assert is_connected(g)
        g.check()

    def test_planarish_density(self):
        g = delaunay_graph(500, seed=1)
        assert g.m < 3 * g.n  # Delaunay bound

    def test_deterministic(self):
        g1 = delaunay_graph(300, seed=5)
        g2 = delaunay_graph(300, seed=5)
        assert g1.m == g2.m


class TestInstances:
    def test_known_names(self):
        names = instance_names()
        assert "europe_like" in names
        assert "usa_like" in names
        assert len(names) == len(INSTANCE_PARAMS)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            instance("mars_like")

    def test_memoized(self):
        a = instance("mini_like")
        b = instance("mini_like")
        assert a is b

    def test_mini_instance_valid(self):
        g = instance("mini_like")
        assert is_connected(g)
        g.check()
