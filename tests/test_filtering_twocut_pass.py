"""Unit tests for tiny-cut pass 3 (2-cut component contraction)."""

import numpy as np

from repro.filtering import two_cut_pass_labels
from repro.filtering.twocut_pass import class_components_bounded
from repro.graph import contract, two_cut_classes

from .conftest import cycle_graph, make_graph, random_connected_graph


class TestClassComponentsBounded:
    def test_cycle_components(self):
        g = cycle_graph(6)
        classes = two_cut_classes(g)
        assert len(classes) == 1
        # removing ALL cycle edges leaves 6 singleton components
        comps = class_components_bounded(g, classes[0], U=6)
        assert len(comps) == 6
        assert all(len(c) == 1 for c in comps)

    def test_two_blobs_on_cycle(self):
        # two triangles joined by two disjoint paths (a "cycle of blobs");
        # the inter-blob class {(0,3), (2,6), (6,5)} separates the triangles
        edges = [
            (0, 1), (1, 2), (2, 0),          # triangle A
            (3, 4), (4, 5), (5, 3),          # triangle B
            (0, 3),                          # path 1
            (2, 6), (6, 5),                  # path 2 via vertex 6
        ]
        g = make_graph(7, edges)
        classes = two_cut_classes(g)
        assert len(classes) == 3  # one per triangle apex + the blob cycle
        by_size = {len(c): c for c in classes}
        comps = class_components_bounded(g, by_size[3], U=7)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 3, 3]  # vertex 6, triangle A, triangle B

    def test_oversized_component_abandoned(self):
        g = cycle_graph(12)
        classes = two_cut_classes(g)
        # pick just two edges of the class: they split the cycle in two arcs
        cls = np.asarray(sorted(classes[0].tolist())[:2])
        comps = class_components_bounded(g, cls, U=3)
        # both arcs have size >= 4 unless the two edges are adjacent; with
        # U=3 at most one tiny arc survives
        assert all(int(g.vsize[c].sum()) <= 3 for c in comps)


class TestTwoCutPassLabels:
    def test_small_side_contracted(self):
        # a square with a pendant triangle attached by two edges
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 0),  # square
            (1, 4), (4, 5), (5, 2),          # path creating a 2-cut class
        ]
        g = make_graph(6, edges)
        # the class {(0,1), (0,3), (2,3)} cuts off {1, 2, 4, 5} (size 4)
        labels, stats = two_cut_pass_labels(g, U=4, rng=np.random.default_rng(0))
        cg, dense = contract(g, labels)
        assert stats.classes >= 1
        assert cg.n < g.n

    def test_U_bound_never_violated(self):
        for seed in range(5):
            g = random_connected_graph(40, 10, seed=seed)
            for U in (2, 5, 10):
                labels, _ = two_cut_pass_labels(g, U, rng=np.random.default_rng(seed))
                _, dense = contract(g, labels)
                sizes = np.bincount(dense, weights=g.vsize)
                counts = np.bincount(dense)
                assert all(s <= U for s, c in zip(sizes, counts) if c > 1)

    def test_no_two_cuts_noop(self):
        from .conftest import complete_graph

        g = complete_graph(6)
        labels, stats = two_cut_pass_labels(g, U=6)
        assert stats.classes == 0
        assert len(np.unique(labels)) == g.n

    def test_cycle_fully_contracted(self):
        g = cycle_graph(5)
        labels, stats = two_cut_pass_labels(g, U=5)
        # each cycle vertex is its own component of size 1 <= U; contracting
        # singletons is a no-op, so nothing changes structurally
        assert stats.classes == 1

    def test_contraction_preserves_total_size(self):
        g = random_connected_graph(30, 8, seed=11)
        labels, _ = two_cut_pass_labels(g, U=10)
        cg, _ = contract(g, labels)
        assert cg.total_size() == g.total_size()
