"""Property-based tests: CRP overlay exactness and balanced invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import Partition
from repro.crp import build_overlay, crp_query, dijkstra
from repro.graph import build_graph


@st.composite
def weighted_connected_graphs(draw, max_n=25):
    n = draw(st.integers(min_value=3, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    u = list(range(1, n))
    v = [int(rng.integers(0, i)) for i in range(1, n)]
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            u.append(int(a))
            v.append(int(b))
    w = rng.integers(1, 10, size=len(u)).astype(float)
    return build_graph(n, np.asarray(u), np.asarray(v), weights=w)


@given(weighted_connected_graphs(), st.integers(0, 9999))
@settings(max_examples=30, deadline=None)
def test_crp_exact_for_any_partition(g, seed):
    """CRP distances are exact for EVERY partition, not just PUNCH's."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, min(g.n, 5) + 1))
    labels = rng.integers(0, k, size=g.n)
    p = Partition(g, labels)
    overlay = build_overlay(p)
    for _ in range(4):
        s, t = rng.choice(g.n, size=2, replace=False)
        truth, _ = dijkstra(g, int(s), targets=[int(t)])
        d, _ = crp_query(overlay, int(s), int(t))
        assert d == pytest.approx(truth.get(int(t), float("inf")))


@given(weighted_connected_graphs(max_n=20), st.integers(2, 5), st.integers(0, 999))
@settings(max_examples=15, deadline=None)
def test_balanced_driver_invariants(g, k, seed):
    from repro.balanced import run_balanced_punch
    from repro.core.config import BalancedConfig

    cfg = BalancedConfig(
        starts_numerator=4,
        rebalance_attempts=4,
        phi_unbalanced=8,
        phi_rebalance=4,
        epsilon=0.5,  # generous so tiny adversarial graphs stay feasible
    )
    try:
        res = run_balanced_punch(g, k, config=cfg, rng=np.random.default_rng(seed))
    except RuntimeError:
        return  # rebalancing legitimately failed; the driver said so
    assert res.partition.num_cells <= k
    assert res.partition.max_cell_size() <= res.U_star
    assert res.partition.cell_sizes.sum() == g.total_size()


@given(weighted_connected_graphs(max_n=22), st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_pool_best_monotone(g, seed):
    """Inserting into the elite pool never loses the best solution."""
    from repro.assembly import ElitePool, Solution

    rng = np.random.default_rng(seed)
    pool = ElitePool(3)
    best_seen = float("inf")
    for _ in range(10):
        labels = rng.integers(0, 4, size=g.n)
        s = Solution.from_labels(g, labels)
        entered_best = s.cost < best_seen
        pool.add(s)
        best_seen = min(best_seen, s.cost)
        if entered_best:
            # a strictly better solution always enters (some pool member has
            # cost >= it, or the pool is not full)
            assert pool.best.cost == best_seen
    assert pool.best.cost == pytest.approx(
        min(best_seen, min(x.cost for x in pool.solutions))
    )
