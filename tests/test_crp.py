"""Tests for the CRP overlay: exactness and search-space behavior."""

import numpy as np
import pytest

from repro import PunchConfig, run_punch
from repro.core import Partition
from repro.crp import build_overlay, crp_query, dijkstra

from .conftest import make_graph, random_connected_graph


class TestDijkstra:
    def test_path_distances(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        dist, settled = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        assert settled == 4

    def test_early_termination(self):
        g = make_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        dist, settled = dijkstra(g, 0, targets=[1])
        assert settled <= 3

    def test_weighted(self):
        from repro.graph.builder import build_graph

        g = build_graph(3, [0, 1, 0], [1, 2, 2], weights=[1.0, 1.0, 5.0])
        dist, _ = dijkstra(g, 0)
        assert dist[2] == 2.0  # via vertex 1, not the direct heavy edge

    def test_vertex_mask(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        mask = np.asarray([True, True, True, False])
        dist, _ = dijkstra(g, 0, vertex_mask=mask)
        assert 3 not in dist

    def test_matches_networkx(self):
        import networkx as nx

        from .conftest import to_networkx

        g = random_connected_graph(40, 40, seed=5)
        dist, _ = dijkstra(g, 0)
        expected = nx.single_source_dijkstra_path_length(to_networkx(g), 0)
        assert dist == pytest.approx(expected)


class TestOverlay:
    def _setup(self, seed=0):
        from repro.synthetic import road_network

        g = road_network(n_target=600, n_cities=5, seed=seed)
        res = run_punch(g, 80, PunchConfig(seed=seed))
        return g, res.partition

    def test_boundary_vertices_are_cut_endpoints(self):
        g, p = self._setup()
        ov = build_overlay(p)
        expected = set()
        for e in p.cut_edges:
            a, b = g.edge_endpoints(int(e))
            expected.add(a)
            expected.add(b)
        assert set(ov.adj) == expected
        assert ov.cut_edges == len(p.cut_edges)

    def test_cells_of_and_as_csr(self):
        g, p = self._setup()
        ov = build_overlay(p)
        for v in list(ov.adj)[:10]:
            assert ov.cells_of(v) == int(p.labels[v])
        xadj, dst, w = ov.as_csr()
        assert len(xadj) == g.n + 1 and int(xadj[-1]) == len(dst) == len(w)
        for v, lst in ov.adj.items():
            lo, hi = int(xadj[v]), int(xadj[v + 1])
            assert [(int(u), float(x)) for u, x in zip(dst[lo:hi], w[lo:hi])] == [
                (int(u), float(x)) for u, x in lst
            ]
        assert ov.as_csr() is not None  # memoized second call

    def test_clique_weights_are_in_cell_distances(self):
        g, p = self._setup()
        ov = build_overlay(p)
        labels = p.labels
        # check a few clique edges against masked Dijkstra
        checked = 0
        for cell, bverts in ov.boundary_of_cell.items():
            if len(bverts) < 2:
                continue
            s = bverts[0]
            mask = labels == cell
            dist, _ = dijkstra(g, s, vertex_mask=mask)
            for u, w in ov.adj[s]:
                if int(labels[u]) == cell and u in dist:
                    assert w == pytest.approx(dist[u])
                    checked += 1
            if checked > 10:
                break
        assert checked > 0

    def test_query_exactness(self):
        """CRP distances equal plain Dijkstra distances — the overlay is
        an exact preprocessing scheme."""
        g, p = self._setup(seed=3)
        ov = build_overlay(p)
        rng = np.random.default_rng(0)
        for _ in range(25):
            s, t = rng.choice(g.n, size=2, replace=False)
            truth, _ = dijkstra(g, int(s), targets=[int(t)])
            d, _ = crp_query(ov, int(s), int(t))
            assert d == pytest.approx(truth.get(int(t), float("inf")))

    def test_query_search_space_smaller(self):
        g, p = self._setup(seed=4)
        ov = build_overlay(p)
        rng = np.random.default_rng(1)
        base, crp = 0, 0
        for _ in range(15):
            s, t = rng.choice(g.n, size=2, replace=False)
            _, n1 = dijkstra(g, int(s), targets=[int(t)])
            _, n2 = crp_query(ov, int(s), int(t))
            base += n1
            crp += n2
        assert crp < base  # the whole point of the partition

    def test_same_cell_query(self):
        g, p = self._setup(seed=5)
        ov = build_overlay(p)
        members = np.flatnonzero(p.labels == 0)
        if len(members) >= 2:
            s, t = int(members[0]), int(members[-1])
            truth, _ = dijkstra(g, s, targets=[t])
            d, _ = crp_query(ov, s, t)
            assert d == pytest.approx(truth[t])

    def test_better_partition_smaller_overlay(self):
        """PUNCH's smaller cut gives a smaller overlay than region growing."""
        from repro.baselines import region_growing_partition
        from repro.synthetic import road_network

        g = road_network(n_target=900, n_cities=6, seed=9)
        punch = run_punch(g, 100, PunchConfig(seed=0)).partition
        rg = Partition(g, region_growing_partition(g, 100, np.random.default_rng(0)))
        ov_punch = build_overlay(punch)
        ov_rg = build_overlay(rg)
        assert ov_punch.num_boundary_vertices < ov_rg.num_boundary_vertices
        assert ov_punch.clique_edges < ov_rg.clique_edges
