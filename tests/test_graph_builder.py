"""Unit tests for graph construction (repro.graph.builder / Graph)."""

import numpy as np
import pytest

from repro.graph import Graph, build_graph
from repro.graph.builder import build_csr, merge_parallel_edges

from .conftest import complete_graph, make_graph, path_graph


class TestMergeParallelEdges:
    def test_self_loops_dropped(self):
        u, v, w = merge_parallel_edges(3, [0, 1, 2], [0, 2, 2], [1.0, 2.0, 3.0])
        assert len(u) == 1
        assert (int(u[0]), int(v[0])) == (1, 2)

    def test_parallel_edges_merge_weights(self):
        u, v, w = merge_parallel_edges(2, [0, 1, 0], [1, 0, 1], [1.0, 2.0, 4.0])
        assert len(u) == 1
        assert w[0] == 7.0

    def test_canonical_orientation(self):
        u, v, _ = merge_parallel_edges(5, [4, 3], [0, 1], [1, 1])
        assert np.all(u < v)

    def test_empty(self):
        u, v, w = merge_parallel_edges(3, [], [], [])
        assert len(u) == len(v) == len(w) == 0


class TestBuildCSR:
    def test_degrees(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert g.degrees.tolist() == [3, 2, 3, 2]

    def test_half_edges_count(self):
        g = make_graph(4, [(0, 1), (1, 2)])
        assert len(g.adjncy) == 2 * g.m

    def test_eid_roundtrip(self):
        g = make_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        for v in range(g.n):
            nbrs, eids = g.incident(v)
            for nb, e in zip(nbrs, eids):
                a, b = g.edge_endpoints(int(e))
                assert {a, b} == {v, int(nb)}

    def test_isolated_vertices(self):
        xadj, adjncy, eid = build_csr(4, np.asarray([0]), np.asarray([1]))
        assert xadj.tolist() == [0, 1, 2, 2, 2]


class TestBuildGraph:
    def test_basic(self):
        g = make_graph(3, [(0, 1), (1, 2)])
        g.check()
        assert g.n == 3 and g.m == 2
        assert g.total_size() == 3
        assert g.total_weight() == 2.0

    def test_default_unit_sizes_and_weights(self):
        g = make_graph(2, [(0, 1)])
        assert g.vsize.tolist() == [1, 1]
        assert g.ewgt.tolist() == [1.0]

    def test_custom_weights_and_sizes(self):
        g = build_graph(2, [0], [1], weights=[2.5], sizes=[3, 4])
        assert g.ewgt[0] == 2.5
        assert g.total_size() == 7

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            build_graph(2, [0], [5])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            build_graph(2, [0], [1], weights=[-1.0])

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            build_graph(2, [0], [1], sizes=[0, 1])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            build_graph(3, [0, 1], [1, 2], weights=[1.0])

    def test_empty_graph(self):
        g = build_graph(0, [], [])
        g.check()
        assert g.n == 0 and g.m == 0

    def test_edgeless_graph(self):
        g = build_graph(5, [], [])
        g.check()
        assert g.n == 5 and g.m == 0
        assert g.degrees.tolist() == [0] * 5

    def test_from_edges_classmethod(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (1, 2)])
        assert g.m == 2  # parallel merged

    def test_coords_carried(self):
        coords = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        g = build_graph(2, [0], [1], coords=coords)
        assert np.allclose(g.coords, coords)

    def test_neighbors(self):
        g = path_graph(4)
        assert sorted(int(x) for x in g.neighbors(1)) == [0, 2]
        assert g.degree(0) == 1

    def test_complete_graph_edge_count(self):
        g = complete_graph(6)
        assert g.m == 15
        g.check()

    def test_edges_iterator(self):
        g = make_graph(3, [(0, 1), (1, 2)])
        edges = list(g.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 1.0)]

    def test_half_edge_weights(self):
        g = build_graph(3, [0, 1], [1, 2], weights=[2.0, 3.0])
        hw = g.half_edge_weights()
        assert len(hw) == 4
        assert sorted(hw.tolist()) == [2.0, 2.0, 3.0, 3.0]

    def test_check_rejects_corrupted_sizes(self):
        g = make_graph(2, [(0, 1)])
        g.vsize = np.asarray([1, -1], dtype=np.int64)
        with pytest.raises(AssertionError):
            g.check()
