"""Whole-project analysis tests: call graph, dataflow, contracts, layering.

Fixture projects are materialized under ``tmp_path`` so each rule is
validated in both directions — a hazard is flagged, and the sanctioned
spelling stays clean.  The last class runs the analyzer over the real
``src/repro`` tree, which must stay clean (modulo the checked-in baseline).
"""

from pathlib import Path

import pytest

from repro.lint.callgraph import MODULE_BODY, build_project_index
from repro.lint.project import analyze_project, dead_functions

REPO_ROOT = Path(__file__).resolve().parent.parent

PYPROJECT_MIN = "[project]\nname = 'proj'\nversion = '0'\n"


def make_project(tmp_path, files, pyproject=PYPROJECT_MIN, tests=None):
    """Materialize a fixture package ``proj`` (plus optional tests dir)."""
    (tmp_path / "pyproject.toml").write_text(pyproject)
    pkg = tmp_path / "proj"
    for rel, source in {"__init__.py": "", **files}.items():
        p = pkg / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        if p.parent != pkg and not (p.parent / "__init__.py").exists():
            (p.parent / "__init__.py").write_text("")
        p.write_text(source)
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    for rel, source in (tests or {}).items():
        (tests_dir / rel).write_text(source)
    return pkg, tests_dir


def rules_of(analysis, rule):
    return [v for v in analysis.result.violations if v.rule == rule]


def run(tmp_path, files, **kw):
    pkg, tests_dir = make_project(tmp_path, files, **kw)
    return analyze_project(pkg, tests_dir=tests_dir, use_baseline=False)


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_cross_module_reachability(self, tmp_path):
        pkg, _ = make_project(tmp_path, {
            "util.py": "def helper():\n    return 1\n",
            "filtering/entry.py": (
                "from proj.util import helper\n"
                "def entry():\n    return helper()\n"
                "def unrelated():\n    return 2\n"
            ),
        })
        index, errors = build_project_index(pkg)
        assert not errors
        entry = ("proj.filtering.entry", "entry")
        helper = ("proj.util", "helper")
        reach = index.reachable_from([entry])
        assert helper in reach
        assert ("proj.filtering.entry", "unrelated") not in reach
        # reverse edges point callee -> callers
        rev = index.reverse_edges()
        assert entry in rev.get(helper, frozenset())

    def test_entrypoints_are_public_algorithmic(self, tmp_path):
        pkg, _ = make_project(tmp_path, {
            "filtering/entry.py": "def entry():\n    pass\ndef _private():\n    pass\n",
            "util.py": "def helper():\n    pass\n",
        })
        index, _ = build_project_index(pkg)
        eps = index.algorithmic_entrypoints()
        assert ("proj.filtering.entry", "entry") in eps
        assert ("proj.filtering.entry", "_private") not in eps
        assert ("proj.util", "helper") not in eps
        assert ("proj.filtering.entry", MODULE_BODY) in eps


# ---------------------------------------------------------------------------
# REPRO110 / REPRO111: RNG and wall-clock reachability
# ---------------------------------------------------------------------------


RNG_HELPER_UNSEEDED = (
    "import numpy as np\n"
    "def make_rng():\n"
    "    return np.random.default_rng()\n"
)
RNG_HELPER_SEEDED = (
    "import numpy as np\n"
    "def make_rng(seed=0):\n"
    "    return np.random.default_rng(seed)\n"
)
RNG_ENTRY = (
    "from proj.util import make_rng\n"
    "def run_filtering(g):\n"
    "    rng = make_rng()\n"
    "    return rng\n"
)


class TestRngReachability:
    def test_unseeded_rng_reachable_from_filtering_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "util.py": RNG_HELPER_UNSEEDED,
            "filtering/pipeline.py": RNG_ENTRY,
        })
        hits = rules_of(analysis, "REPRO110")
        assert len(hits) == 1
        # the witness chain names the entrypoint and the helper
        assert "run_filtering" in hits[0].message
        assert hits[0].path.endswith("util.py")

    def test_seeded_fixture_is_clean(self, tmp_path):
        analysis = run(tmp_path, {
            "util.py": RNG_HELPER_SEEDED,
            "filtering/pipeline.py": RNG_ENTRY,
        })
        assert analysis.result.violations == []
        assert analysis.result.exit_code == 0

    def test_unreachable_unseeded_rng_not_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "util.py": RNG_HELPER_UNSEEDED,  # nothing algorithmic calls it
            "filtering/pipeline.py": "def run_filtering(g):\n    return g\n",
        })
        assert rules_of(analysis, "REPRO110") == []

    def test_wall_clock_in_helper_layer_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "util.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "filtering/pipeline.py": (
                "from proj.util import stamp\n"
                "def run_filtering(g):\n"
                "    return stamp()\n"
            ),
        })
        assert len(rules_of(analysis, "REPRO111")) == 1


# ---------------------------------------------------------------------------
# REPRO112: Generators crossing a process boundary
# ---------------------------------------------------------------------------


POOL_STUB = (
    "class WorkerPool:\n"
    "    def map_ordered(self, fn, payloads):\n"
    "        return [fn(p) for p in payloads]\n"
)


class TestGeneratorPayloads:
    def test_generator_in_pool_payload_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "pool.py": POOL_STUB,
            "assembly/multi.py": (
                "from proj.pool import WorkerPool\n"
                "def multistart(tasks, rng):\n"
                "    pool = WorkerPool()\n"
                "    return pool.map_ordered(_work, [(rng, t) for t in tasks])\n"
                "def _work(payload):\n"
                "    return payload\n"
            ),
        })
        hits = rules_of(analysis, "REPRO112")
        assert len(hits) == 1
        assert "'rng'" in hits[0].message

    def test_captured_generator_in_payload_fn_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "pool.py": POOL_STUB,
            "assembly/multi.py": (
                "from proj.pool import WorkerPool\n"
                "def multistart(tasks, rng):\n"
                "    def work(t):\n"
                "        return rng.random() + t\n"
                "    pool = WorkerPool()\n"
                "    return pool.map_ordered(work, tasks)\n"
            ),
        })
        hits = rules_of(analysis, "REPRO112")
        assert len(hits) == 1
        assert "captures a Generator" in hits[0].message

    def test_derived_seeds_are_clean(self, tmp_path):
        analysis = run(tmp_path, {
            "pool.py": POOL_STUB,
            "assembly/multi.py": (
                "from proj.pool import WorkerPool\n"
                "def multistart(tasks, rng):\n"
                "    seeds = [int(s) for s in rng.integers(0, 2**31, len(tasks))]\n"
                "    pool = WorkerPool()\n"
                "    return pool.map_ordered(_work, list(zip(seeds, tasks)))\n"
                "def _work(payload):\n"
                "    return payload\n"
            ),
        })
        assert rules_of(analysis, "REPRO112") == []


# ---------------------------------------------------------------------------
# REPRO113: CutCache key provenance
# ---------------------------------------------------------------------------


class TestCutCacheKeys:
    def test_literal_key_flagged_fingerprint_clean(self, tmp_path):
        analysis = run(tmp_path, {
            "cache.py": (
                "class CutCache:\n"
                "    def get(self, key):\n"
                "        return None\n"
                "    def put(self, key, value):\n"
                "        pass\n"
            ),
            "filtering/solve.py": (
                "from proj.cache import CutCache\n"
                "def solve(prob, cache: CutCache):\n"
                "    hit = cache.get(f'{prob.n}:{prob.m}')\n"
                "    ok = cache.get(prob.fingerprint())\n"
                "    return hit or ok\n"
            ),
        })
        hits = rules_of(analysis, "REPRO113")
        assert len(hits) == 1  # only the f-string key


# ---------------------------------------------------------------------------
# REPRO114: layering and import cycles
# ---------------------------------------------------------------------------


LAYERED_PYPROJECT = (
    PYPROJECT_MIN
    + "[tool.repro.layers]\ncore = []\nfiltering = ['core']\n"
)


class TestLayering:
    def test_illegal_module_scope_import_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "core/data.py": (
                "from proj.filtering.stuff import f\n"
                "def g():\n    return f()\n"
            ),
            "filtering/stuff.py": "def f():\n    return 1\n",
        }, pyproject=LAYERED_PYPROJECT)
        hits = rules_of(analysis, "REPRO114")
        assert len(hits) == 1
        assert "'core' may not import 'filtering'" in hits[0].message

    def test_deferred_import_is_sanctioned(self, tmp_path):
        analysis = run(tmp_path, {
            "core/data.py": (
                "def g():\n"
                "    from proj.filtering.stuff import f\n"
                "    return f()\n"
            ),
            "filtering/stuff.py": "def f():\n    return 1\n",
        }, pyproject=LAYERED_PYPROJECT)
        assert rules_of(analysis, "REPRO114") == []

    def test_module_cycle_flagged(self, tmp_path):
        analysis = run(tmp_path, {
            "alpha/x.py": "import proj.beta.y\ndef f():\n    pass\n",
            "beta/y.py": "import proj.alpha.x\ndef g():\n    pass\n",
        })
        hits = rules_of(analysis, "REPRO114")
        assert len(hits) == 1
        assert "cycle" in hits[0].message

    def test_declared_cycle_is_a_config_error(self, tmp_path):
        bad = PYPROJECT_MIN + "[tool.repro.layers]\na = ['b']\nb = ['a']\n"
        analysis = run(tmp_path, {"a/x.py": "X = 1\n"}, pyproject=bad)
        assert analysis.result.exit_code == 2
        assert any("not a DAG" in e.message for e in analysis.result.errors)


# ---------------------------------------------------------------------------
# REPRO115: twin drift
# ---------------------------------------------------------------------------


TWIN_OK = (
    "def fold(xs, acc=0):\n    return acc\n"
    "def fold_reference(xs, acc=0):\n    return acc\n"
)
TWIN_TEST = "from proj.flow.kernels import fold, fold_reference\n"


class TestTwinDrift:
    def test_compatible_tested_twin_is_clean(self, tmp_path):
        analysis = run(
            tmp_path,
            {"flow/kernels.py": TWIN_OK},
            tests={"test_kernels.py": TWIN_TEST},
        )
        assert rules_of(analysis, "REPRO115") == []

    def test_mutated_signature_caught(self, tmp_path):
        drifted = (
            "def fold(xs, scale):\n    return scale\n"
            "def fold_reference(xs, acc=0):\n    return acc\n"
        )
        analysis = run(
            tmp_path,
            {"flow/kernels.py": drifted},
            tests={"test_kernels.py": TWIN_TEST},
        )
        hits = rules_of(analysis, "REPRO115")
        assert len(hits) == 1
        assert "drifted" in hits[0].message

    def test_deleted_twin_caught(self, tmp_path):
        analysis = run(
            tmp_path,
            {"flow/kernels.py": "def fold_reference(xs, acc=0):\n    return acc\n"},
            tests={"test_kernels.py": TWIN_TEST},
        )
        hits = rules_of(analysis, "REPRO115")
        assert len(hits) == 1
        assert "no twin" in hits[0].message

    def test_untested_pair_caught(self, tmp_path):
        analysis = run(
            tmp_path,
            {"flow/kernels.py": TWIN_OK},
            tests={"test_other.py": "from proj.flow.kernels import fold\n"},
        )
        hits = rules_of(analysis, "REPRO115")
        assert len(hits) == 1
        assert "no test module references both" in hits[0].message

    def test_private_twin_accepted(self, tmp_path):
        paired = (
            "def _fold(xs, acc=0):\n    return acc\n"
            "def fold_reference(xs, acc=0):\n    return acc\n"
        )
        analysis = run(
            tmp_path,
            {"flow/kernels.py": paired},
            tests={"test_kernels.py": "from proj.flow.kernels import _fold, fold_reference\n"},
        )
        assert rules_of(analysis, "REPRO115") == []


# ---------------------------------------------------------------------------
# REPRO116: engine registry conformance
# ---------------------------------------------------------------------------


ENGINE_MODULE = (
    "def register_engine(cls):\n    return cls\n"
    "def available_engines():\n    return ['beta']\n"
    "@register_engine\n"
    "class BetaEngine:\n"
    "    name = 'beta'\n"
    "    def solve(self, prob):\n        pass\n"
    "    def solve_chain(self, probs):\n        pass\n"
)
CONFORMANCE_TEST = (
    "import pytest\n"
    "from proj.cutengine.engines import available_engines\n"
    "ENGINES = available_engines()\n"
    "@pytest.mark.parametrize('engine', ENGINES)\n"
    "def test_conformance(engine):\n    pass\n"
)


class TestEngineConformance:
    def test_registered_covered_engine_is_clean(self, tmp_path):
        analysis = run(
            tmp_path,
            {"cutengine/engines.py": ENGINE_MODULE},
            tests={"test_conformance.py": CONFORMANCE_TEST},
        )
        assert rules_of(analysis, "REPRO116") == []

    def test_incomplete_surface_caught(self, tmp_path):
        broken = ENGINE_MODULE.replace(
            "    def solve_chain(self, probs):\n        pass\n", ""
        )
        analysis = run(
            tmp_path,
            {"cutengine/engines.py": broken},
            tests={"test_conformance.py": CONFORMANCE_TEST},
        )
        hits = rules_of(analysis, "REPRO116")
        assert len(hits) == 1
        assert "solve_chain" in hits[0].message

    def test_removed_parametrization_caught(self, tmp_path):
        analysis = run(
            tmp_path,
            {"cutengine/engines.py": ENGINE_MODULE},
            tests={"test_conformance.py": "def test_nothing():\n    pass\n"},
        )
        hits = rules_of(analysis, "REPRO116")
        assert len(hits) == 1
        assert "parametrize axis" in hits[0].message

    def test_literal_axis_missing_engine_caught(self, tmp_path):
        literal = CONFORMANCE_TEST.replace("ENGINES = available_engines()\n", "").replace(
            "from proj.cutengine.engines import available_engines\n", ""
        ).replace("ENGINES", "['alpha']")
        analysis = run(
            tmp_path,
            {"cutengine/engines.py": ENGINE_MODULE},
            tests={"test_conformance.py": literal},
        )
        hits = rules_of(analysis, "REPRO116")
        assert len(hits) == 1
        assert "not covered" in hits[0].message


# ---------------------------------------------------------------------------
# Dead-code report
# ---------------------------------------------------------------------------


class TestDeadFunctions:
    def test_unreferenced_helper_reported(self, tmp_path):
        pkg, _ = make_project(tmp_path, {
            "util.py": "def used():\n    pass\ndef orphan():\n    pass\n",
            "filtering/entry.py": (
                "from proj.util import used\n"
                "def entry():\n    return used()\n"
            ),
        })
        index, _ = build_project_index(pkg)
        dead = dead_functions(index)
        assert ("proj.util", "orphan") in [k for k, _ in dead]
        assert ("proj.util", "used") not in [k for k, _ in dead]


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------


class TestRealProject:
    def test_src_repro_is_clean_under_baseline(self):
        analysis = analyze_project(REPO_ROOT / "src" / "repro")
        assert analysis.result.errors == []
        assert analysis.result.violations == []
        assert analysis.result.stale_baseline == []
        assert analysis.result.exit_code == 0

    def test_known_twin_pairs_are_indexed(self):
        analysis = analyze_project(
            REPO_ROOT / "src" / "repro", select=["REPRO115"], use_baseline=False
        )
        index = analysis.index
        mod = index.modules["repro.crp.overlay"]
        assert "build_overlay" in mod.functions
        assert "build_overlay_reference" in mod.functions
        assert analysis.result.violations == []
