"""Unit tests for the mutable partition state (the contracted view H)."""

import numpy as np
import pytest

from repro.assembly import PartitionState

from .conftest import cycle_graph, make_graph, random_connected_graph


class TestPartitionStateConstruction:
    def test_cost_matches_cut(self):
        g = cycle_graph(6)
        state = PartitionState(g, np.asarray([0, 0, 0, 1, 1, 1]))
        assert state.cost == 2.0
        state.check()

    def test_h_weights(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        state = PartitionState(g, np.asarray([0, 0, 1, 1]))
        (pair,) = state.adjacent_pairs()
        a, b = pair
        assert state.H[a][b] == 2.0

    def test_cell_sizes(self):
        from repro.graph.builder import build_graph

        g = build_graph(3, [0, 1], [1, 2], sizes=[2, 3, 4])
        state = PartitionState(g, np.asarray([0, 0, 1]))
        assert sorted(state.cell_size.values()) == [4, 5]

    def test_rejects_wrong_length(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            PartitionState(g, np.asarray([0, 1]))

    def test_singleton_cells(self):
        g = cycle_graph(5)
        state = PartitionState(g, np.arange(5))
        assert state.num_cells() == 5
        assert state.cost == 5.0
        state.check()


class TestReplaceCells:
    def test_merge_two_cells(self):
        g = cycle_graph(6)
        state = PartitionState(g, np.asarray([0, 0, 1, 1, 2, 2]))
        old_cost = state.cost
        # merge cells containing vertices 0 and 2
        c0, c1 = int(state.labels[0]), int(state.labels[2])
        members = state.cell_members[c0] + state.cell_members[c1]
        new_id = state.fresh_cell_id()
        state.replace_cells({c0, c1}, {new_id: members})
        state.cost = state.recompute_cost()
        state.check()
        assert state.num_cells() == 2
        assert state.cost < old_cost

    def test_split_cell(self):
        g = cycle_graph(6)
        state = PartitionState(g, np.asarray([0, 0, 0, 0, 0, 0]))
        a = state.fresh_cell_id()
        b = state.fresh_cell_id()
        state.replace_cells({0}, {a: [0, 1, 2], b: [3, 4, 5]})
        state.cost = state.recompute_cost()
        state.check()
        assert state.num_cells() == 2
        assert state.cost == 2.0

    def test_rejects_mismatched_fragments(self):
        g = cycle_graph(4)
        state = PartitionState(g, np.asarray([0, 0, 1, 1]))
        with pytest.raises(ValueError):
            state.replace_cells({0}, {9: [0]})  # loses vertex 1

    def test_h_mirrors_consistent_after_replace(self):
        g = random_connected_graph(30, 25, seed=3)
        rng = np.random.default_rng(0)
        state = PartitionState(g, rng.integers(0, 6, size=g.n))
        # random sequence of merges keeps H consistent
        for _ in range(5):
            cells = list(state.cells())
            if len(cells) < 2:
                break
            a, b = rng.choice(cells, size=2, replace=False)
            members = state.cell_members[int(a)] + state.cell_members[int(b)]
            nid = state.fresh_cell_id()
            state.replace_cells({int(a), int(b)}, {nid: members})
            state.cost = state.recompute_cost()
            state.check()

    def test_fresh_ids_increase(self):
        g = cycle_graph(4)
        state = PartitionState(g, np.asarray([0, 0, 1, 1]))
        assert state.fresh_cell_id() < state.fresh_cell_id()

    def test_max_cell_size(self):
        from repro.graph.builder import build_graph

        g = build_graph(3, [0, 1], [1, 2], sizes=[2, 3, 4])
        state = PartitionState(g, np.asarray([0, 1, 1]))
        assert state.max_cell_size() == 7
