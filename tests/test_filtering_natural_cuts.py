"""Unit tests for natural-cut detection and the cut subproblem builder."""

import numpy as np
import pytest

from repro.filtering import (
    build_cut_problem,
    collect_cut_problems,
    detect_natural_cuts,
    solve_cut_problem,
)
from repro.filtering.natural_cuts import NaturalCutStats
from repro.graph import BFSWorkspace, grow_bfs_region
from repro.synthetic import grid_with_walls, two_blobs

from .conftest import cycle_graph, make_graph


class TestBuildCutProblem:
    def test_exhausted_region_returns_none(self):
        g = cycle_graph(5)
        ws = BFSWorkspace(g.n)
        region = grow_bfs_region(g, ws, 0, max_size=100, core_size=10)
        assert build_cut_problem(g, region) is None

    def test_local_structure(self):
        gb, _ = two_blobs(60, bridge_len=3, seed=1)
        ws = BFSWorkspace(gb.n)
        region = grow_bfs_region(gb, ws, 3, max_size=70, core_size=7)
        prob = build_cut_problem(gb, region)
        assert prob is not None
        assert prob.n_local == 2 + len(region.tree) - region.core_count
        # s and t present in the merged network
        assert 0 in prob.net_u.tolist() + prob.net_v.tolist()
        assert 1 in prob.net_u.tolist() + prob.net_v.tolist()

    def test_solve_finds_bridge(self):
        gb, expected = two_blobs(60, bridge_len=3, seed=1)
        ws = BFSWorkspace(gb.n)
        region = grow_bfs_region(gb, ws, 3, max_size=70, core_size=7)
        prob = build_cut_problem(gb, region)
        value, cut_edges = solve_cut_problem(prob)
        assert value == pytest.approx(expected)
        assert len(cut_edges) == expected

    @pytest.mark.parametrize("solver", ["push_relabel", "dinic", "scipy"])
    def test_solvers_agree_on_value(self, solver):
        gb, _ = two_blobs(50, bridge_len=2, seed=3)
        ws = BFSWorkspace(gb.n)
        region = grow_bfs_region(gb, ws, 5, max_size=60, core_size=6)
        prob = build_cut_problem(gb, region)
        ref, _ = solve_cut_problem(prob, "edmonds_karp")
        value, _ = solve_cut_problem(prob, solver)
        assert value == pytest.approx(ref)

    def test_direct_core_ring_edges_forced(self):
        # star: center adjacent to everything; tiny core, ring everywhere
        g = make_graph(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
        ws = BFSWorkspace(g.n)
        region = grow_bfs_region(g, ws, 1, max_size=2, core_size=1)
        prob = build_cut_problem(g, region)
        if prob is not None:
            value, cut = solve_cut_problem(prob)
            assert value > 0


class TestCollectCutProblems:
    def test_every_vertex_covered(self):
        g = grid_with_walls(8, 24, wall_cols=[7, 15])
        rng = np.random.default_rng(0)
        stats = NaturalCutStats()
        problems = collect_cut_problems(g, U=40, alpha=1.0, f=10.0, rng=rng, stats=stats)
        # coverage: the union of cores is everything
        total_core = sum(stats.core_sizes)
        assert total_core >= g.n  # cores are disjoint? no - but cover all
        assert stats.centers == len(stats.core_sizes)

    def test_small_component_produces_no_problem(self):
        g = cycle_graph(4)
        rng = np.random.default_rng(0)
        stats = NaturalCutStats()
        problems = collect_cut_problems(g, U=100, alpha=1.0, f=10.0, rng=rng, stats=stats)
        assert problems == []
        assert stats.exhausted_regions >= 1

    def test_core_smaller_than_tree(self):
        g = grid_with_walls(10, 30, wall_cols=[14])
        rng = np.random.default_rng(1)
        stats = NaturalCutStats()
        collect_cut_problems(g, U=60, alpha=1.0, f=10.0, rng=rng, stats=stats)
        for core, tree in zip(stats.core_sizes, stats.tree_sizes):
            assert core <= tree


class TestDetectNaturalCuts:
    def test_planted_wall_found(self):
        g = grid_with_walls(10, 40, wall_cols=[19], gap_rows=[5])
        cut_ids, stats = detect_natural_cuts(
            g, U=120, rng=np.random.default_rng(2)
        )
        # the single gap edge must be among the marked cut edges
        gap_edges = [
            e
            for e in range(g.m)
            if {int(g.edge_u[e]) % 40, int(g.edge_v[e]) % 40} == {19, 20}
        ]
        assert len(gap_edges) == 1
        assert gap_edges[0] in cut_ids.tolist()

    def test_bridge_found_in_blobs(self):
        gb, _ = two_blobs(80, bridge_len=1, seed=5)
        cut_ids, _ = detect_natural_cuts(gb, U=90, rng=np.random.default_rng(0))
        bridge = [e for e in range(gb.m) if set(gb.edge_endpoints(e)) == {0, 80}]
        assert bridge[0] in cut_ids.tolist()

    def test_coverage_increases_marks(self):
        g = grid_with_walls(10, 30, wall_cols=[14])
        c1, _ = detect_natural_cuts(g, U=60, C=1, rng=np.random.default_rng(7))
        c3, _ = detect_natural_cuts(g, U=60, C=3, rng=np.random.default_rng(7))
        assert len(c3) >= len(c1) * 0.8  # more sweeps, (statistically) more marks

    def test_stats_populated(self):
        g = grid_with_walls(8, 16, wall_cols=[7])
        _, stats = detect_natural_cuts(g, U=32, rng=np.random.default_rng(3))
        assert stats.centers > 0
        assert stats.problems_solved > 0
        assert stats.cut_edges_marked > 0
        assert len(stats.cut_values) == stats.problems_solved

    def test_executor_threads_equivalent_set(self):
        g = grid_with_walls(8, 16, wall_cols=[7])
        a, _ = detect_natural_cuts(g, U=32, rng=np.random.default_rng(4), executor="serial")
        b, _ = detect_natural_cuts(g, U=32, rng=np.random.default_rng(4), executor="threads")
        assert np.array_equal(a, b)
