"""Chaos interaction: incremental updates under deterministic hard faults.

Same acceptance shape as ``test_supervisor_chaos.py``: inject a fault on a
seeded :class:`~repro.runtime.chaos.ChaosPlan` schedule *during an
incremental update*, let it complete, and assert the repaired partition —
and therefore the patched overlay — is bit-identical to the fault-free
run.  A SIGKILL mid-update must recover through the supervisor (worker
respawn) or the rotated-generation (v2) checkpoint path, and the overlay
served afterwards must never be stale: it must equal a from-scratch build
on the mutated graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    AssemblyConfig,
    ParallelConfig,
    PunchConfig,
    RuntimeConfig,
)
from repro.core.punch import run_punch
from repro.crp.overlay import build_overlay, patch_overlay
from repro.runtime.chaos import ChaosPlan
from repro.updates import IncrementalUpdater, UpdateConfig, synthetic_delta_batch

from .conftest import random_connected_graph

U = 30
SEED = 7


@pytest.fixture(scope="module")
def start():
    """Initial graph + partition every scenario updates from."""
    g = random_connected_graph(130, 70, seed=5)
    res = run_punch(g, U, PunchConfig(seed=SEED))
    return g, res.partition


def _apply(partition, batch, punch_cfg, update_cfg=None):
    upd = IncrementalUpdater(
        partition,
        U,
        config=update_cfg or UpdateConfig(max_dirty_fraction=1.0),
        punch_config=punch_cfg,
    )
    return upd, upd.apply(batch)


def test_sigkill_storm_mid_update_is_bit_identical(start, monkeypatch, tmp_path):
    """Every process-pool task of the localized repair SIGKILLs its worker;
    the supervised update degrades, respawns, and still repairs to the
    exact fault-free partition — so the patched overlay cannot be stale."""
    monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
    g, part = start
    batch = synthetic_delta_batch(g, kind="mixed", count=8, seed=1)

    base_cfg = PunchConfig(
        assembly=AssemblyConfig(multistart=4),
        parallel=ParallelConfig(backend="serial"),
        seed=SEED,
    )
    _, clean = _apply(part, batch, base_cfg)

    plan = ChaosPlan(seed=3, sites=("process",), kill_rate=1.0)
    chaos_cfg = PunchConfig(
        assembly=AssemblyConfig(multistart=4),
        runtime=RuntimeConfig(supervise=True, max_pool_restarts=1, fault_plan=plan),
        parallel=ParallelConfig(backend="processes", workers=2),
        seed=SEED,
    )
    upd, chaotic = _apply(part, batch, chaos_cfg)

    assert chaotic.mode == clean.mode
    assert np.array_equal(chaotic.partition.labels, clean.partition.labels)
    assert chaotic.partition.cost == clean.partition.cost
    # the inner repair ran supervised and the pool actually broke
    inner = upd.last_punch_result
    assert inner is not None
    assert inner.supervisor_report.get("enabled") is True
    assert inner.parallel_report.get("pool_breaks", 0) >= 1

    # no stale overlay: patching with the chaotic result equals a full build
    overlay = build_overlay(part)
    patched = patch_overlay(
        overlay, chaotic.partition, chaotic.reusable, chaotic.eid_map
    )
    fresh = build_overlay(chaotic.partition)
    assert list(patched.adj.keys()) == list(fresh.adj.keys())
    for v in patched.adj:
        assert patched.adj[v] == fresh.adj[v]


def test_cache_pressure_mid_update_is_bit_identical(start):
    """Memory-site chaos (cut-cache pressure) during the repair changes
    only cache behavior, never the repaired labels."""
    g, part = start
    batch = synthetic_delta_batch(g, kind="grow", count=5, seed=2)

    base_cfg = PunchConfig(seed=SEED)
    _, clean = _apply(part, batch, base_cfg)

    plan = ChaosPlan(
        seed=2, sites=("memory",), cache_pressure_rate=1.0, cache_pressure_cap=1
    )
    chaos_cfg = PunchConfig(runtime=RuntimeConfig(fault_plan=plan), seed=SEED)
    _, chaotic = _apply(part, batch, chaos_cfg)

    assert np.array_equal(chaotic.partition.labels, clean.partition.labels)
    assert chaotic.partition.cost == clean.partition.cost


def test_torn_checkpoint_mid_update_recovers_older_generation(start, tmp_path):
    """A kill mid-checkpoint-flush leaves a torn newest generation.  The
    resumed update must degrade to the intact ``.bak1`` (the rotated v2
    checkpoint path), replay the remaining multistart iterations, and
    reach the exact fault-free partition — never serving a stale overlay.
    """
    g, part = start
    # grow keeps the mutated graph connected, so the full-rebuild fallback
    # (forced below) runs single-component and the checkpoint stays armed
    batch = synthetic_delta_batch(g, kind="grow", count=4, seed=3)
    force_rebuild = UpdateConfig(max_dirty_fraction=1e-9)

    ck = tmp_path / "update.ckpt"
    ckpt_cfg = PunchConfig(
        assembly=AssemblyConfig(multistart=6),
        runtime=RuntimeConfig(
            checkpoint_path=str(ck), checkpoint_every=2, checkpoint_generations=3
        ),
        seed=SEED,
    )
    _, clean = _apply(part, batch, ckpt_cfg, force_rebuild)
    assert clean.mode == "rebuilt"
    assert ck.exists() and (tmp_path / "update.ckpt.bak1").exists()

    # torn write on the newest generation, as a SIGKILL mid-flush leaves it
    ck.write_bytes(ck.read_bytes()[:40])

    resume_cfg = PunchConfig(
        assembly=AssemblyConfig(multistart=6),
        runtime=RuntimeConfig(
            checkpoint_path=str(ck),
            checkpoint_every=2,
            checkpoint_generations=3,
            resume=True,
        ),
        seed=SEED,
    )
    with pytest.warns(RuntimeWarning, match="degraded to generation"):
        upd, recovered = _apply(part, batch, resume_cfg, force_rebuild)

    assert np.array_equal(recovered.partition.labels, clean.partition.labels)
    assert recovered.partition.cost == clean.partition.cost
    stats = upd.last_punch_result.assembly_stats
    assert stats.checkpoint_recovery["recovered_from"].endswith(".bak1")

    # the overlay rebuilt from the recovered partition equals a fresh build
    overlay = build_overlay(part)
    patched = patch_overlay(
        overlay, recovered.partition, recovered.reusable, recovered.eid_map
    )
    fresh = build_overlay(recovered.partition)
    assert list(patched.adj.keys()) == list(fresh.adj.keys())
    for v in patched.adj:
        assert patched.adj[v] == fresh.adj[v]
