"""SharedGraph round-trip, lifecycle, and leak tests."""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.graph import build_graph
from repro.parallel import (
    AttachedGraph,
    SharedGraph,
    SharedGraphHandle,
    attach_shared_graph,
)

from .conftest import make_graph


def _segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _weighted_graph(rows=6, cols=7):
    rng = np.random.default_rng(5)
    idx = lambda r, c: r * cols + c  # noqa: E731
    edges = [(idx(r, c), idx(r, c + 1)) for r in range(rows) for c in range(cols - 1)]
    edges += [(idx(r, c), idx(r + 1, c)) for r in range(rows - 1) for c in range(cols)]
    n, m = rows * cols, len(edges)
    u = np.asarray([e[0] for e in edges], dtype=np.int64)
    v = np.asarray([e[1] for e in edges], dtype=np.int64)
    return build_graph(
        n,
        u,
        v,
        weights=rng.integers(1, 9, size=m).astype(np.float64),
        sizes=rng.integers(1, 4, size=n),
        coords=rng.random((n, 2)),
    )


class TestRoundTrip:
    def test_views_equal_original(self):
        g = _weighted_graph()
        with SharedGraph(g) as sg:
            att = attach_shared_graph(sg.handle)
            h = att.graph
            assert h.n == g.n and h.m == g.m
            for field, arr in g.shared_arrays().items():
                got = h.shared_arrays()[field]
                assert np.array_equal(got, arr), field
            # the memoized gather must round-trip too (workers never rebuild it)
            assert np.array_equal(h.half_edge_weights(), g.half_edge_weights())
            att.close()

    def test_views_are_read_only(self):
        g = _weighted_graph()
        with SharedGraph(g) as sg:
            att = attach_shared_graph(sg.handle)
            for arr in att.graph.shared_arrays().values():
                assert not arr.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    arr[...] = 0
            att.close()

    def test_handle_is_small_and_picklable(self):
        import pickle

        g = _weighted_graph()
        with SharedGraph(g) as sg:
            blob = pickle.dumps(sg.handle)
            assert len(blob) < 2000  # names + dtypes + shapes, never arrays
            clone = pickle.loads(blob)
            assert clone == sg.handle
            assert clone.is_shared

    def test_empty_edge_set(self):
        # m == 0 still needs valid (1-byte) segments for the edge arrays
        g = make_graph(3, [])
        with SharedGraph(g) as sg:
            att = attach_shared_graph(sg.handle)
            assert att.graph.n == 3
            assert att.graph.m == 0
            att.close()


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        g = _weighted_graph()
        sg = SharedGraph(g)
        names = sg.segment_names()
        assert names and all(_segment_exists(n) for n in names)
        sg.close()
        assert not any(_segment_exists(n) for n in names)

    def test_double_close_raises(self):
        sg = SharedGraph(_weighted_graph())
        sg.close()
        with pytest.raises(RuntimeError, match="already closed"):
            sg.close()

    def test_context_manager_tolerates_inner_close(self):
        with SharedGraph(_weighted_graph()) as sg:
            sg.close()  # __exit__ must not double-close

    def test_attach_after_close_raises(self):
        sg = SharedGraph(_weighted_graph())
        handle = sg.handle
        sg.close()
        with pytest.raises(FileNotFoundError):
            attach_shared_graph(handle)

    def test_attached_double_close_raises(self):
        with SharedGraph(_weighted_graph()) as sg:
            att = attach_shared_graph(sg.handle)
            att.close()
            with pytest.raises(RuntimeError, match="already closed"):
                att.close()

    def test_attached_close_does_not_unlink(self):
        with SharedGraph(_weighted_graph()) as sg:
            att = attach_shared_graph(sg.handle)
            att.close()
            assert all(_segment_exists(n) for n in sg.segment_names())

    def test_local_handle_cannot_attach(self):
        handle = SharedGraphHandle(token="local-x", n=3, m=2)
        assert not handle.is_shared
        with pytest.raises(ValueError, match="local-only"):
            AttachedGraph(handle)

    def test_finalizer_unlinks_on_gc(self):
        import gc

        sg = SharedGraph(_weighted_graph())
        names = sg.segment_names()
        del sg
        gc.collect()
        assert not any(_segment_exists(n) for n in names)

    def test_nbytes_positive(self):
        g = _weighted_graph()
        with SharedGraph(g) as sg:
            assert sg.nbytes() >= sum(a.nbytes for a in g.shared_arrays().values())


_SPAWN_CHILD = """
import json, sys
import numpy as np
from repro.parallel import SharedGraphHandle, attach_shared_graph

spec = json.loads(sys.stdin.read())
handle = SharedGraphHandle(
    token=spec["token"], n=spec["n"], m=spec["m"],
    blocks=tuple((f, name, dt, tuple(shape)) for f, name, dt, shape in spec["blocks"]),
)
att = attach_shared_graph(handle)
g = att.graph
print(json.dumps({
    "n": g.n, "m": g.m,
    "weight": float(g.total_weight()),
    "xadj_sum": int(g.xadj.sum()),
}))
att.close()
"""


class TestCrossProcess:
    def test_fresh_interpreter_attach(self):
        """A brand-new interpreter (spawn semantics) sees identical data."""
        g = _weighted_graph()
        with SharedGraph(g) as sg:
            spec = {
                "token": sg.handle.token,
                "n": sg.handle.n,
                "m": sg.handle.m,
                "blocks": [list(b) for b in sg.handle.blocks],
            }
            src = str(Path(__file__).resolve().parent.parent / "src")
            proc = subprocess.run(
                [sys.executable, "-c", _SPAWN_CHILD],
                input=json.dumps(spec),
                capture_output=True,
                text=True,
                timeout=120,
                env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            out = json.loads(proc.stdout)
        assert out["n"] == g.n and out["m"] == g.m
        assert out["weight"] == pytest.approx(float(g.total_weight()))
        assert out["xadj_sum"] == int(g.xadj.sum())

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_attach(self):
        """Handles survive pickling into spawn-started workers."""
        from concurrent.futures import ProcessPoolExecutor

        g = _weighted_graph()
        ctx = multiprocessing.get_context("spawn")
        with SharedGraph(g) as sg:
            with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as ex:
                n, m, w = ex.submit(_spawn_probe, sg.handle).result(timeout=120)
        assert (n, m) == (g.n, g.m)
        assert w == pytest.approx(float(g.total_weight()))


def _spawn_probe(handle):
    att = attach_shared_graph(handle)
    try:
        g = att.graph
        return g.n, g.m, float(g.total_weight())
    finally:
        att.close()
