"""Tests for experiment data structures and renderers (no heavy compute)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    BalancedCell,
    BalancedTables,
    Table1Row,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


def fake_balanced_tables():
    data = BalancedTables()
    data.instance_meta = {"a_like": (100, 150), "b_like": (200, 320)}
    for name in data.instance_meta:
        data.default[name] = {}
        data.strong[name] = {}
        for k in (2, 4):
            data.default[name][k] = BalancedCell(
                best=10.0 * k, median=12.0 * k, avg_time=1.5, runs=3, feasible_runs=3
            )
            data.strong[name][k] = BalancedCell(
                best=9.0 * k, median=11.0 * k, avg_time=4.5, runs=3, feasible_runs=3
            )
    return data


class TestRenderers:
    def test_table1_renders_all_rows(self):
        rows = [
            Table1Row(
                graph="g",
                U=64,
                lb=10,
                cells_avg=11.5,
                v_prime=500.0,
                best=100,
                avg=101,
                worst=102,
                t_tiny=0.1,
                t_natural=0.2,
                t_assembly=0.3,
                t_total=0.6,
            )
        ]
        out = render_table1(rows)
        assert "g" in out and "64" in out and "total" in out

    def test_table2_best_columns(self):
        out = render_table2(fake_balanced_tables(), ks=(2, 4))
        assert "a_like" in out and "b_like" in out
        assert "18" in out  # strong best at k=2 = 9*2

    def test_table3_default_medians(self):
        out = render_table3(fake_balanced_tables(), ks=(2, 4))
        assert "24" in out  # default median at k=2 = 12*2

    def test_table4_strong_medians(self):
        out = render_table4(fake_balanced_tables(), ks=(2, 4))
        assert "22" in out  # strong median at k=2 = 11*2

    def test_missing_k_tolerated(self):
        data = fake_balanced_tables()
        del data.strong["a_like"][4]
        out = render_table2(data, ks=(2, 4))
        assert "a_like" in out

    def test_nan_cells_render_as_dash(self):
        data = fake_balanced_tables()
        data.strong["a_like"][2] = BalancedCell(
            best=float("nan"), median=float("nan"), avg_time=float("nan"),
            runs=2, feasible_runs=0,
        )
        out = render_table2(data, ks=(2, 4))
        assert "-" in out


class TestUpdateExperimentsScript:
    def test_splice_and_idempotence(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "update_experiments", Path("benchmarks/update_experiments.py")
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        results = tmp_path / "results"
        results.mkdir()
        (results / "tbl.txt").write_text("HELLO TABLE\n")
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("before\n<!-- RESULT:tbl -->\nafter\n")
        monkeypatch.setattr(mod, "RESULTS", results)
        monkeypatch.setattr(mod, "DOC", doc)
        assert mod.main() == 0
        text = doc.read_text()
        assert "HELLO TABLE" in text and "```text" in text
        # idempotent: splicing again replaces, not duplicates
        (results / "tbl.txt").write_text("SECOND VERSION\n")
        mod.main()
        text = doc.read_text()
        assert "SECOND VERSION" in text and "HELLO TABLE" not in text
        assert text.count("```text") == 1

    def test_missing_result_keeps_marker(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "update_experiments2", Path("benchmarks/update_experiments.py")
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        results = tmp_path / "results"
        results.mkdir()
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("<!-- RESULT:absent -->\n")
        monkeypatch.setattr(mod, "RESULTS", results)
        monkeypatch.setattr(mod, "DOC", doc)
        mod.main()
        assert "<!-- RESULT:absent -->" in doc.read_text()
