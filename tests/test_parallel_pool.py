"""WorkerPool, LPT scheduling, ParallelRuntime lifecycle, and degradation."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.config import ParallelConfig, PunchConfig, RuntimeConfig
from repro.parallel import ParallelRuntime, WorkerPool, lpt_batches, resolve_graph
from repro.runtime.executor import resilient_map
from repro.runtime.faults import FaultPlan
from repro.runtime.supervisor import registered_tokens

from .conftest import make_graph, random_connected_graph


def _probe_item(arg):
    """Module-level task (stays picklable): resolve the graph, do some work."""
    x, handle = arg
    g = resolve_graph(handle)
    return int(g.n) + x


def _segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestLptBatches:
    def test_partitions_all_indices(self):
        costs = [5, 1, 9, 2, 7, 3, 8]
        batches = lpt_batches(costs, 3)
        flat = sorted(i for b in batches for i in b)
        assert flat == list(range(len(costs)))

    def test_largest_first_balanced(self):
        costs = [10, 10, 10, 1, 1, 1]
        batches = lpt_batches(costs, 3)
        loads = sorted(sum(costs[i] for i in b) for b in batches)
        assert loads == [11, 11, 11]

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        costs = rng.integers(1, 100, size=40).tolist()
        assert lpt_batches(costs, 5) == lpt_batches(costs, 5)

    def test_drops_empty_batches(self):
        assert lpt_batches([3.0, 1.0], 8) == [[0], [1]]

    def test_empty_input(self):
        assert lpt_batches([], 4) == []

    def test_invalid_batch_count(self):
        with pytest.raises(ValueError):
            lpt_batches([1.0], 0)


class TestWorkerPool:
    def test_threads_map_preserves_order(self):
        with WorkerPool(workers=4, kind="threads") as pool:
            out = pool.map_ordered(lambda x: x * x, list(range(20)))
        assert out == [i * i for i in range(20)]

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="pool kind"):
            WorkerPool(kind="fibers")

    def test_mark_broken_fires_callback_once(self):
        calls = []
        pool = WorkerPool(workers=1, kind="threads", on_broken=lambda: calls.append(1))
        assert pool.usable()
        pool.mark_broken()
        pool.mark_broken()
        assert not pool.usable()
        assert calls == [1]

    def test_mark_broken_concurrent_callers_elect_one_winner(self):
        """Regression: mark_broken can race in from several failure sites
        (harvest loop, fast path, watchdog); exactly one caller may run the
        shutdown + on_broken callback."""
        import threading

        calls = []
        barrier = threading.Barrier(17)
        pool = WorkerPool(workers=1, kind="threads", on_broken=lambda: calls.append(1))

        def storm():
            barrier.wait()
            pool.mark_broken()

        threads = [threading.Thread(target=storm) for _ in range(16)]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join()
        assert not pool.usable()
        assert calls == [1]
        assert pool.on_broken is None


class TestParallelRuntime:
    def test_serial_backend_has_no_pool(self):
        with ParallelRuntime(ParallelConfig(backend="serial")) as rt:
            assert not rt.active()
            assert rt.pool() is None
            g = make_graph(3, [(0, 1), (1, 2)])
            handle = rt.share(g)
            assert not handle.is_shared
            assert resolve_graph(handle) is g

    def test_share_is_memoized(self):
        g = random_connected_graph(30, 20, seed=1)
        with ParallelRuntime(ParallelConfig(backend="processes", workers=1)) as rt:
            h1 = rt.share(g)
            h2 = rt.share(g)
            assert h1 is h2
            assert h1.is_shared
            # the driver resolves its own handle to the original object
            assert resolve_graph(h1) is g

    def test_close_unlinks_and_unregisters(self):
        g = random_connected_graph(30, 20, seed=2)
        rt = ParallelRuntime(ParallelConfig(backend="processes", workers=1))
        handle = rt.share(g)
        names = rt.active_segment_names()
        assert names and all(_segment_exists(n) for n in names)
        rt.close()
        assert not any(_segment_exists(n) for n in names)
        # the registry entry is gone and the segments are unlinked, so the
        # handle is dead in every process
        with pytest.raises(FileNotFoundError):
            resolve_graph(handle)
        rt.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            rt.share(g)

    def test_report_counters(self):
        with ParallelRuntime(ParallelConfig(backend="threads", workers=2)) as rt:
            rt.note_batch({"cache_hits": 3, "cache_misses": 5})
            rt.note_batch(None)
            report = rt.report()
        assert report["backend"] == "threads"
        assert report["workers"] == 2
        assert report["batches"] == 2
        assert report["worker_cache_hits"] == 3
        assert report["worker_cache_misses"] == 5

    def test_pool_reuse_same_object(self):
        with ParallelRuntime(ParallelConfig(backend="threads", workers=2)) as rt:
            assert rt.pool() is rt.pool()


class TestResilientMapPooling:
    def test_pool_fast_path_used(self):
        with ParallelRuntime(ParallelConfig(backend="threads", workers=2)) as rt:
            results, report = resilient_map(
                lambda x: x + 1,
                list(range(10)),
                executor="threads",
                workers=2,
                pool=rt.pool(),
            )
        assert results == list(range(1, 11))
        assert report.final_executor == "threads"

    def test_kind_mismatch_falls_back_to_fresh_executor(self):
        with ParallelRuntime(ParallelConfig(backend="threads", workers=2)) as rt:
            results, _ = resilient_map(
                lambda x: x * 2, [1, 2, 3], executor="serial", pool=rt.pool()
            )
        assert results == [2, 4, 6]


class TestDegradation:
    def test_worker_crash_degrades_and_releases_segments(self):
        """A dying pool worker must not leak /dev/shm segments.

        crash_rate=1 on the "process" site hard-kills workers on first
        attempt; resilient_map degrades processes -> threads -> serial,
        the pool is marked broken, and the runtime unlinks every export
        while the registry keeps resolving for the fallback tiers.
        """
        g = random_connected_graph(40, 30, seed=3)
        plan = FaultPlan(seed=1, crash_rate=1.0, sites=("process",))
        with ParallelRuntime(ParallelConfig(backend="processes", workers=2)) as rt:
            handle = rt.share(g)
            names = rt.active_segment_names()
            assert names

            results, report = resilient_map(
                _probe_item,
                [(x, handle) for x in range(6)],
                executor="processes",
                workers=2,
                fault_plan=plan,
                pool=rt.pool(),
            )
            # results are still correct, computed by a fallback tier
            assert results == [40 + x for x in range(6)]
            assert report.final_executor in ("threads", "serial")
            assert report.executor_degradations >= 1
            # the broken pool released every shared segment...
            assert rt.pool_breaks == 1
            assert rt.active_segment_names() == []
            for name in names:
                assert not _segment_exists(name)
            # ...including its supervisor-reapable ownership record
            assert handle.token not in registered_tokens()
            # ...and the runtime refuses to hand the broken pool out again
            assert rt.pool() is None
            # a later share() re-exports fresh segments (with a new record)
            h2 = rt.share(g)
            assert h2.is_shared and h2.token != handle.token
            assert h2.token in registered_tokens()
            fresh = rt.active_segment_names()
            assert fresh and all(_segment_exists(n) for n in fresh)
        assert not any(_segment_exists(n) for n in fresh)
        assert h2.token not in registered_tokens()

    def test_run_punch_survives_crashing_workers_without_leaks(
        self, monkeypatch, tmp_path
    ):
        """End-to-end: crash faults during a parallel run leave no segments
        and no supervisor ownership records."""
        from repro.core.punch import run_punch

        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
        g = random_connected_graph(120, 60, seed=4)
        cfg = PunchConfig(
            seed=9,
            parallel=ParallelConfig(backend="processes", workers=2),
            runtime=RuntimeConfig(
                fault_plan=FaultPlan(seed=2, crash_rate=1.0, sites=("process",))
            ),
        )
        rt = ParallelRuntime(cfg.parallel)
        try:
            res = run_punch(g, 30, cfg, parallel=rt)
            names_during = rt.active_segment_names()
        finally:
            rt.close()
        assert res.partition.num_cells >= 1
        assert rt.pool_breaks >= 1
        assert not any(_segment_exists(n) for n in names_during)
        assert rt.active_segment_names() == []
        assert registered_tokens() == []
