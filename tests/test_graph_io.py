"""Unit tests for DIMACS and METIS graph file I/O."""

import numpy as np

from repro.graph.io import read_dimacs_gr, read_metis, write_dimacs_gr, write_metis

from .conftest import make_graph, random_connected_graph


class TestDimacsGr:
    def test_roundtrip(self, tmp_path):
        g = random_connected_graph(20, 10, seed=0)
        path = tmp_path / "g.gr"
        write_dimacs_gr(g, path)
        g2 = read_dimacs_gr(path)
        assert g2.n == g.n and g2.m == g.m
        assert {frozenset(e[:2]) for e in g.edges()} == {
            frozenset(e[:2]) for e in g2.edges()
        }

    def test_read_merges_arc_directions(self, tmp_path):
        path = tmp_path / "two_arcs.gr"
        path.write_text("c comment\np sp 2 2\na 1 2 7\na 2 1 7\n")
        g = read_dimacs_gr(path)
        assert g.n == 2 and g.m == 1

    def test_gzip_roundtrip(self, tmp_path):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "g.gr.gz"
        write_dimacs_gr(g, path)
        g2 = read_dimacs_gr(path)
        assert g2.m == 3


class TestMetis:
    def test_roundtrip_weights_and_sizes(self, tmp_path):
        from repro.graph.builder import build_graph

        g = build_graph(
            4, [0, 1, 2, 0], [1, 2, 3, 3], weights=[2, 3, 4, 5], sizes=[1, 2, 3, 4]
        )
        path = tmp_path / "g.graph"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.n == g.n and g2.m == g.m
        assert g2.vsize.tolist() == g.vsize.tolist()
        ours = {(e[0], e[1]): e[2] for e in g.edges()}
        theirs = {(e[0], e[1]): e[2] for e in g2.edges()}
        assert ours == theirs

    def test_plain_format(self, tmp_path):
        path = tmp_path / "p.graph"
        path.write_text("3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n == 3 and g.m == 2
        assert g.vsize.tolist() == [1, 1, 1]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% header comment\n3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n == 3

    def test_vertex_weight_format(self, tmp_path):
        path = tmp_path / "w.graph"
        path.write_text("3 2 010\n5 2\n7 1 3\n9 2\n")
        g = read_metis(path)
        assert g.vsize.tolist() == [5, 7, 9]
