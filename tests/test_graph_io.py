"""Unit tests for DIMACS and METIS graph file I/O."""

import numpy as np
import pytest

from repro.graph.io import (
    GraphFormatError,
    read_dimacs_gr,
    read_metis,
    write_dimacs_gr,
    write_metis,
)

from .conftest import make_graph, random_connected_graph


class TestDimacsGr:
    def test_roundtrip(self, tmp_path):
        g = random_connected_graph(20, 10, seed=0)
        path = tmp_path / "g.gr"
        write_dimacs_gr(g, path)
        g2 = read_dimacs_gr(path)
        assert g2.n == g.n and g2.m == g.m
        assert {frozenset(e[:2]) for e in g.edges()} == {
            frozenset(e[:2]) for e in g2.edges()
        }

    def test_read_merges_arc_directions(self, tmp_path):
        path = tmp_path / "two_arcs.gr"
        path.write_text("c comment\np sp 2 2\na 1 2 7\na 2 1 7\n")
        g = read_dimacs_gr(path)
        assert g.n == 2 and g.m == 1

    def test_gzip_roundtrip(self, tmp_path):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "g.gr.gz"
        write_dimacs_gr(g, path)
        g2 = read_dimacs_gr(path)
        assert g2.m == 3


class TestMetis:
    def test_roundtrip_weights_and_sizes(self, tmp_path):
        from repro.graph.builder import build_graph

        g = build_graph(
            4, [0, 1, 2, 0], [1, 2, 3, 3], weights=[2, 3, 4, 5], sizes=[1, 2, 3, 4]
        )
        path = tmp_path / "g.graph"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.n == g.n and g2.m == g.m
        assert g2.vsize.tolist() == g.vsize.tolist()
        ours = {(e[0], e[1]): e[2] for e in g.edges()}
        theirs = {(e[0], e[1]): e[2] for e in g2.edges()}
        assert ours == theirs

    def test_plain_format(self, tmp_path):
        path = tmp_path / "p.graph"
        path.write_text("3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n == 3 and g.m == 2
        assert g.vsize.tolist() == [1, 1, 1]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% header comment\n3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n == 3

    def test_vertex_weight_format(self, tmp_path):
        path = tmp_path / "w.graph"
        path.write_text("3 2 010\n5 2\n7 1 3\n9 2\n")
        g = read_metis(path)
        assert g.vsize.tolist() == [5, 7, 9]


class TestGraphFormatError:
    """Malformed files raise a typed error naming the file and line."""

    def test_is_a_value_error(self):
        assert issubclass(GraphFormatError, ValueError)

    def test_gr_malformed_arc_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 3 1\na 1 oops 1\n")
        with pytest.raises(GraphFormatError) as ei:
            read_dimacs_gr(path)
        assert ei.value.lineno == 2
        assert ei.value.path == str(path)
        assert "bad.gr:2:" in str(ei.value)

    def test_gr_truncated_arc_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 3 1\na 1\n")
        with pytest.raises(GraphFormatError, match="malformed line"):
            read_dimacs_gr(path)

    def test_gr_endpoint_out_of_range(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("c ok\np sp 2 1\na 1 5 1\n")
        with pytest.raises(GraphFormatError, match="out of range") as ei:
            read_dimacs_gr(path)
        assert ei.value.lineno == 3

    def test_gr_negative_vertex_count(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp -4 0\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_dimacs_gr(path)

    def test_metis_empty_file(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("% only a comment\n")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_metis_malformed_header(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("three two\n")
        with pytest.raises(GraphFormatError, match="header") as ei:
            read_metis(path)
        assert ei.value.lineno == 1

    def test_metis_negative_header(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("-3 2\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_metis(path)

    def test_metis_truncated_body(self, tmp_path):
        path = tmp_path / "trunc.graph"
        path.write_text("3 2\n2\n1 3\n")  # header promises 3 vertex lines
        with pytest.raises(GraphFormatError, match="truncated"):
            read_metis(path)

    def test_metis_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 2\n2\n1 9\n2\n")
        with pytest.raises(GraphFormatError, match="out of range") as ei:
            read_metis(path)
        assert ei.value.lineno == 3

    def test_metis_malformed_vertex_line(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 2\n2\n1 x\n2\n")
        with pytest.raises(GraphFormatError, match="malformed vertex line"):
            read_metis(path)
