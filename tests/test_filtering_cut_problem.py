"""Focused tests for the natural-cut subproblem construction."""

import numpy as np
import pytest

from repro.filtering import build_cut_problem, solve_cut_problem
from repro.graph import BFSWorkspace, grow_bfs_region
from repro.graph.builder import build_graph

from .conftest import make_graph


def region_of(g, center, max_size, core_size):
    ws = BFSWorkspace(g.n)
    return grow_bfs_region(g, ws, center, max_size, core_size)


class TestBuildCutProblem:
    def test_parallel_capacities_merge(self):
        # two tree vertices each connected to two ring vertices: after
        # contracting the ring to t, the parallel edges must merge
        #     0 (core) - 1 - {2, 3} ; 2-4, 3-4 make 4 the second ring layer
        g = make_graph(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)])
        region = region_of(g, 0, max_size=2, core_size=1)
        # tree = {0, 1}, ring = {2, 3}
        prob = build_cut_problem(g, region)
        assert prob is not None
        # network edge 1->t bundles the two edges (1,2), (1,3)
        key = {(int(a), int(b)): c for a, b, c in zip(prob.net_u, prob.net_v, prob.net_cap)}
        local_1 = 2  # first non-core tree vertex
        assert key[(1, local_1)] == 2.0 or key.get((local_1, 1)) == 2.0

    def test_cut_edges_reported_individually(self):
        """Even when merged in the network, original edges are reported."""
        g = make_graph(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)])
        region = region_of(g, 0, max_size=2, core_size=1)
        prob = build_cut_problem(g, region)
        value, cut = solve_cut_problem(prob)
        # min cut separates {0,1} from ring: the two (1,2),(1,3) edges OR
        # any 1-weight alternative; either way value == len(cut edges)
        assert value == len(cut)

    def test_core_ring_direct_edge_always_cut(self):
        # triangle: 0 core, 1 in tree, 2 in ring, with a direct 0-2 edge
        g = make_graph(4, [(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)])
        region = region_of(g, 0, max_size=2, core_size=1)
        prob = build_cut_problem(g, region)
        if prob is not None and len(region.ring):
            value, cut = solve_cut_problem(prob)
            # any 0-ring edge is unavoidable in the cut
            direct = [
                e
                for e in range(g.m)
                if 0 in g.edge_endpoints(e)
                and g.edge_endpoints(e)[1] in region.ring.tolist()
            ]
            for e in direct:
                assert e in cut.tolist()

    def test_weighted_capacities(self):
        # path 0 -5- 1 -0.5- 2 -5- 3; tree {0,1}, core {0}, ring {2}:
        # the min core-ring cut takes the light (1,2) edge, not (0,1)
        g = build_graph(4, [0, 1, 2], [1, 2, 3], weights=[5.0, 0.5, 5.0])
        region = region_of(g, 0, max_size=2, core_size=1)
        prob = build_cut_problem(g, region)
        value, cut = solve_cut_problem(prob)
        assert value == pytest.approx(0.5)
        assert [set(g.edge_endpoints(int(e))) for e in cut] == [{1, 2}]

    def test_solver_keyword(self):
        g = make_graph(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)])
        region = region_of(g, 0, max_size=2, core_size=1)
        prob = build_cut_problem(g, region)
        v1, _ = prob.solve("dinic")
        v2, _ = prob.solve("push_relabel")
        assert v1 == pytest.approx(v2)
