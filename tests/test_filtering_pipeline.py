"""Integration tests for the filtering pipeline (tiny cuts + natural cuts)."""

import numpy as np
import pytest

from repro.core.config import FilterConfig
from repro.filtering import (
    FragmentStats,
    fragment_labels,
    run_filtering,
    run_tiny_cuts,
    split_oversized,
)
from repro.graph import ContractionChain
from repro.synthetic import grid_with_walls, road_network, two_blobs

from .conftest import cycle_graph, make_graph, random_connected_graph


class TestRunTinyCuts:
    def test_road_network_shrinks(self, road_small):
        chain = ContractionChain(road_small)
        stats = run_tiny_cuts(chain, U=100)
        assert stats.n_after_pass3 < stats.n_before
        chain.current.check()

    def test_mapping_consistent(self, road_small):
        chain = ContractionChain(road_small)
        run_tiny_cuts(chain, U=100)
        sizes = np.bincount(chain.map, minlength=chain.current.n)
        assert np.array_equal(sizes, chain.current.vsize)

    def test_passes_sequence_recorded(self, road_small):
        chain = ContractionChain(road_small)
        stats = run_tiny_cuts(chain, U=50)
        assert stats.n_before >= stats.n_after_pass1 >= stats.n_after_pass2
        assert stats.n_after_pass2 >= stats.n_after_pass3


class TestFragmentLabels:
    def test_no_cuts_single_fragment(self):
        g = cycle_graph(6)
        labels, stats = fragment_labels(g, np.asarray([], dtype=np.int64), U=10)
        assert stats.fragments == 1

    def test_cut_edges_split(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        mid = [e for e in range(g.m) if set(g.edge_endpoints(e)) == {1, 2}]
        labels, stats = fragment_labels(g, np.asarray(mid), U=10)
        assert stats.fragments == 2

    def test_oversized_guard(self):
        g = cycle_graph(10)
        labels, stats = fragment_labels(g, np.asarray([], dtype=np.int64), U=4)
        sizes = np.bincount(labels, weights=g.vsize)
        assert sizes.max() <= 4
        assert stats.oversized_split == 1


class TestSplitOversized:
    def test_chunks_connected(self):
        g = random_connected_graph(30, 15, seed=2)
        labels = np.zeros(g.n, dtype=np.int64)
        new_labels, n_split = split_oversized(g, labels, U=7)
        assert n_split == 1
        sizes = np.bincount(new_labels, weights=g.vsize)
        assert sizes[sizes > 0].max() <= 7
        # every chunk is connected
        from repro.graph import induced_subgraph, is_connected

        for grp in np.unique(new_labels):
            members = np.flatnonzero(new_labels == grp)
            sub, _, _ = induced_subgraph(g, members)
            assert is_connected(sub)

    def test_noop_when_fits(self):
        g = cycle_graph(5)
        labels = np.zeros(g.n, dtype=np.int64)
        new_labels, n_split = split_oversized(g, labels, U=5)
        assert n_split == 0
        assert np.array_equal(new_labels, labels)


class TestRunFiltering:
    def test_fragments_respect_U(self, road_small):
        for U in (16, 64, 256):
            res = run_filtering(road_small, U, rng=np.random.default_rng(U))
            assert int(res.fragment_graph.vsize.max()) <= U

    def test_reduction_grows_with_U(self, road_small):
        res_small = run_filtering(road_small, 16, rng=np.random.default_rng(1))
        res_large = run_filtering(road_small, 256, rng=np.random.default_rng(1))
        assert res_large.fragment_graph.n < res_small.fragment_graph.n

    def test_map_projects_back(self, road_small):
        res = run_filtering(road_small, 64, rng=np.random.default_rng(5))
        assert len(res.map) == road_small.n
        assert res.map.max() == res.fragment_graph.n - 1
        sizes = np.bincount(res.map)
        assert np.array_equal(sizes, res.fragment_graph.vsize)

    def test_without_tiny_cuts(self, road_small):
        cfg = FilterConfig(detect_tiny_cuts=False)
        res = run_filtering(road_small, 64, cfg, rng=np.random.default_rng(2))
        assert res.tiny_stats is None
        assert int(res.fragment_graph.vsize.max()) <= 64

    def test_without_natural_cuts(self, road_small):
        cfg = FilterConfig(detect_natural_cuts=False)
        res = run_filtering(road_small, 64, cfg, rng=np.random.default_rng(2))
        assert res.natural_stats is None
        assert int(res.fragment_graph.vsize.max()) <= 64

    def test_planted_cut_preserved(self):
        """Fragment boundaries include the planted wall gaps."""
        g = grid_with_walls(10, 40, wall_cols=[19], gap_rows=[5])
        res = run_filtering(g, 150, rng=np.random.default_rng(0))
        # the two sides of the wall end up in different fragments
        left = res.map[5 * 40 + 0]
        right = res.map[5 * 40 + 39]
        assert left != right

    def test_invalid_U_rejected(self, road_small):
        with pytest.raises(ValueError):
            run_filtering(road_small, 0)

    def test_timings_recorded(self, road_small):
        res = run_filtering(road_small, 64, rng=np.random.default_rng(3))
        assert res.time_tiny >= 0
        assert res.time_natural > 0

    def test_blob_bridge_is_fragment_boundary(self):
        gb, _ = two_blobs(100, bridge_len=1, seed=9)
        res = run_filtering(gb, 110, rng=np.random.default_rng(4))
        assert res.map[0] != res.map[100] or res.fragment_graph.n == 1
