"""Tests for atomic checkpoint save/load."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime import CheckpointError, load_checkpoint, save_checkpoint
from repro.runtime.checkpoint import CHECKPOINT_VERSION


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        state = {"iteration": 3, "labels": np.arange(5), "cost": 12.5}
        save_checkpoint(path, "multistart", state)
        loaded = load_checkpoint(path, "multistart")
        assert loaded["iteration"] == 3
        assert loaded["cost"] == 12.5
        assert np.array_equal(loaded["labels"], np.arange(5))

    def test_missing_file_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt", "multistart") is None

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"iteration": 1})
        with pytest.raises(CheckpointError, match="multistart"):
            load_checkpoint(path, "balanced")

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = {"version": CHECKPOINT_VERSION + 1, "kind": "multistart", "state": {}}
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, "multistart")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"big": np.zeros(1000)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_unexpected_shape_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(path, "multistart")

    def test_overwrite_is_atomic(self, tmp_path):
        # overwriting leaves either the old or the new state, and no
        # stray temporary files
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "balanced", {"step": 1})
        save_checkpoint(path, "balanced", {"step": 2})
        assert load_checkpoint(path, "balanced")["step"] == 2
        leftovers = [p for p in tmp_path.iterdir() if p.name != "run.ckpt"]
        assert leftovers == []

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.ckpt"
        save_checkpoint(path, "multistart", {"x": 1})
        assert load_checkpoint(path, "multistart") == {"x": 1}
