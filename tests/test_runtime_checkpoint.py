"""Tests for atomic checkpoint save/load and the v2 crash-consistency layer."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime import (
    CheckpointError,
    load_checkpoint,
    load_checkpoint_safe,
    rng_state_checksum,
    save_checkpoint,
)
from repro.runtime.checkpoint import CHECKPOINT_VERSION


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        state = {"iteration": 3, "labels": np.arange(5), "cost": 12.5}
        save_checkpoint(path, "multistart", state)
        loaded = load_checkpoint(path, "multistart")
        assert loaded["iteration"] == 3
        assert loaded["cost"] == 12.5
        assert np.array_equal(loaded["labels"], np.arange(5))

    def test_missing_file_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt", "multistart") is None

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"iteration": 1})
        with pytest.raises(CheckpointError, match="multistart"):
            load_checkpoint(path, "balanced")

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = {"version": CHECKPOINT_VERSION + 1, "kind": "multistart", "state": {}}
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, "multistart")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"big": np.zeros(1000)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_unexpected_shape_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(path, "multistart")

    def test_overwrite_is_atomic(self, tmp_path):
        # overwriting leaves either the old or the new state, and no
        # stray temporary files
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "balanced", {"step": 1})
        save_checkpoint(path, "balanced", {"step": 2})
        assert load_checkpoint(path, "balanced")["step"] == 2
        leftovers = [p for p in tmp_path.iterdir() if p.name != "run.ckpt"]
        assert leftovers == []

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.ckpt"
        save_checkpoint(path, "multistart", {"x": 1})
        assert load_checkpoint(path, "multistart") == {"x": 1}


class TestManifestV2:
    def test_bitflip_detected_by_checksum(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"payload": np.arange(200)})
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_version_1_files_still_load(self, tmp_path):
        path = tmp_path / "run.ckpt"
        payload = {"version": 1, "kind": "multistart", "state": {"iteration": 7}}
        path.write_bytes(pickle.dumps(payload))
        assert load_checkpoint(path, "multistart") == {"iteration": 7}

    def test_rng_manifest_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        rng = np.random.default_rng(11)
        save_checkpoint(
            path, "multistart", {"iteration": 1, "rng_state": rng.bit_generator.state}
        )
        loaded = load_checkpoint(path, "multistart", rng=np.random.default_rng(99))
        # any PCG64 rng may resume; the manifest only pins the generator kind
        assert loaded["rng_state"]["bit_generator"] == "PCG64"

    def test_rng_bit_generator_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        rng = np.random.default_rng(11)
        save_checkpoint(
            path, "multistart", {"iteration": 1, "rng_state": rng.bit_generator.state}
        )
        other = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(CheckpointError, match="bit\\s?generator|MT19937"):
            load_checkpoint(path, "multistart", rng=other)

    def test_rng_state_checksum_is_stable(self):
        a = np.random.default_rng(5).bit_generator.state
        b = np.random.default_rng(5).bit_generator.state
        c = np.random.default_rng(6).bit_generator.state
        assert rng_state_checksum(a) == rng_state_checksum(b)
        assert rng_state_checksum(a) != rng_state_checksum(c)


class TestGenerations:
    def test_rotation_keeps_older_generations(self, tmp_path):
        path = tmp_path / "run.ckpt"
        for step in range(1, 4):
            save_checkpoint(path, "multistart", {"step": step}, generations=3)
        assert load_checkpoint(path, "multistart")["step"] == 3
        assert load_checkpoint(tmp_path / "run.ckpt.bak1", "multistart")["step"] == 2
        assert load_checkpoint(tmp_path / "run.ckpt.bak2", "multistart")["step"] == 1

    def test_generations_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="generations"):
            save_checkpoint(tmp_path / "x", "multistart", {}, generations=0)

    def test_safe_load_clean_newest(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"step": 1}, generations=2)
        state, recovery = load_checkpoint_safe(path, "multistart", generations=2)
        assert state == {"step": 1}
        assert recovery == {}

    def test_safe_load_missing_file(self, tmp_path):
        state, recovery = load_checkpoint_safe(
            tmp_path / "nope.ckpt", "multistart", generations=2
        )
        assert state is None
        assert recovery == {}

    def test_safe_load_falls_back_to_backup(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"step": 1}, generations=2)
        save_checkpoint(path, "multistart", {"step": 2}, generations=2)
        path.write_bytes(b"torn")
        with pytest.warns(RuntimeWarning, match="degraded to generation"):
            state, recovery = load_checkpoint_safe(path, "multistart", generations=2)
        assert state == {"step": 1}
        assert recovery["recovered_from"] == "run.ckpt.bak1"
        assert len(recovery["discarded"]) == 1

    def test_safe_load_fresh_start_when_all_corrupt(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "multistart", {"step": 1}, generations=2)
        save_checkpoint(path, "multistart", {"step": 2}, generations=2)
        path.write_bytes(b"torn")
        (tmp_path / "run.ckpt.bak1").write_bytes(b"also torn")
        with pytest.warns(RuntimeWarning, match="starting fresh"):
            state, recovery = load_checkpoint_safe(path, "multistart", generations=2)
        assert state is None
        assert recovery["fresh_start"] is True
        assert len(recovery["discarded"]) == 2


class TestChaosHook:
    def test_fault_plan_corrupts_after_write(self, tmp_path):
        from repro.runtime.chaos import ChaosPlan

        path = tmp_path / "run.ckpt"
        plan = ChaosPlan(seed=0, checkpoint_corrupt_rate=1.0)
        save_checkpoint(path, "multistart", {"step": 1}, fault_plan=plan, key=1)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "multistart")

    def test_plans_without_hook_are_ignored(self, tmp_path):
        from repro.runtime.faults import FaultPlan

        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path, "multistart", {"step": 1}, fault_plan=FaultPlan(seed=0), key=1
        )
        assert load_checkpoint(path, "multistart") == {"step": 1}
