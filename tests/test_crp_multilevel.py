"""Exactness and search-space tests for multi-level CRP."""

import numpy as np
import pytest

from repro import PunchConfig
from repro.core.config import AssemblyConfig
from repro.core.nested import run_nested_punch
from repro.crp import dijkstra
from repro.crp.multilevel import build_multilevel_overlay, ml_query

FAST = PunchConfig(assembly=AssemblyConfig(phi=4), seed=0)


@pytest.fixture(scope="module")
def setup():
    from repro.synthetic import road_network

    g = road_network(n_target=900, n_cities=6, seed=17)
    nested = run_nested_punch(g, [48, 192], FAST)
    mlo = build_multilevel_overlay(nested)
    return g, nested, mlo


class TestMultiLevelOverlay:
    def test_one_overlay_per_level(self, setup):
        g, nested, mlo = setup
        assert len(mlo.overlays) == 2
        # coarser level has fewer boundary vertices
        assert (
            mlo.overlays[1].num_boundary_vertices
            <= mlo.overlays[0].num_boundary_vertices
        )

    def test_query_exactness(self, setup):
        g, nested, mlo = setup
        rng = np.random.default_rng(2)
        for _ in range(30):
            s, t = rng.choice(g.n, size=2, replace=False)
            truth, _ = dijkstra(g, int(s), targets=[int(t)])
            d, _ = ml_query(mlo, int(s), int(t))
            assert d == pytest.approx(truth.get(int(t), float("inf")))

    def test_search_space_shrinks(self, setup):
        g, nested, mlo = setup
        rng = np.random.default_rng(3)
        base = 0
        ml = 0
        for _ in range(15):
            s, t = rng.choice(g.n, size=2, replace=False)
            _, n0 = dijkstra(g, int(s), targets=[int(t)])
            _, n2 = ml_query(mlo, int(s), int(t))
            base += n0
            ml += n2
        assert ml < base

    def test_same_finest_cell(self, setup):
        g, nested, mlo = setup
        labels = nested.levels[0].labels
        members = np.flatnonzero(labels == labels[0])
        if len(members) >= 2:
            s, t = int(members[0]), int(members[-1])
            truth, _ = dijkstra(g, s, targets=[t])
            d, _ = ml_query(mlo, s, t)
            assert d == pytest.approx(truth[t])

    def test_weighted_exactness(self):
        """Exact on a weighted copy of the network too."""
        from repro.graph.graph import Graph
        from repro.synthetic import road_network

        g0 = road_network(n_target=500, n_cities=4, seed=21)
        rng = np.random.default_rng(4)
        w = rng.integers(1, 9, size=g0.m).astype(float)
        g = Graph(g0.xadj, g0.adjncy, g0.eid, g0.edge_u, g0.edge_v, g0.vsize, w, coords=g0.coords)
        nested = run_nested_punch(g, [32, 128], FAST)
        mlo = build_multilevel_overlay(nested)
        for _ in range(15):
            s, t = rng.choice(g.n, size=2, replace=False)
            truth, _ = dijkstra(g, int(s), targets=[int(t)])
            d, _ = ml_query(mlo, int(s), int(t))
            assert d == pytest.approx(truth.get(int(t), float("inf")))


class TestMultiLevelAccessors:
    def test_total_clique_edges(self, setup):
        g, nested, mlo = setup
        assert mlo.total_clique_edges() == sum(o.clique_edges for o in mlo.overlays)
        assert mlo.total_clique_edges() > 0


class TestMultiLevelReferenceTwin:
    def test_build_bit_identical_to_reference(self, setup):
        """Vectorized multilevel build matches the scalar twin exactly."""
        from repro.crp.multilevel import build_multilevel_overlay_reference

        g, nested, mlo = setup
        ref = build_multilevel_overlay_reference(nested)
        assert len(ref.overlays) == len(mlo.overlays)
        for ro, vo in zip(ref.overlays, mlo.overlays):
            assert set(ro.adj) == set(vo.adj)
            for v in ro.adj:
                assert ro.adj[v] == vo.adj[v]  # entries, order, and bits
            assert ro.boundary_of_cell == vo.boundary_of_cell
            assert (ro.clique_edges, ro.cut_edges) == (vo.clique_edges, vo.cut_edges)
