"""Tests for rebalancing and the balanced PUNCH driver (paper Section 4)."""

import numpy as np
import pytest

from repro import run_balanced_punch
from repro.balanced import balanced_cell_bound, balanced_from_fragments, rebalance
from repro.core.config import AssemblyConfig, BalancedConfig
from repro.filtering import run_filtering

from .conftest import make_graph, random_connected_graph

FAST = BalancedConfig(
    starts_numerator=4, rebalance_attempts=4, phi_unbalanced=16, phi_rebalance=8
)


class TestBalancedCellBound:
    def test_formula(self):
        # floor(1.03 * ceil(100 / 8)) = floor(1.03 * 13) = 13
        assert balanced_cell_bound(100, 8, 0.03) == 13

    def test_zero_epsilon(self):
        assert balanced_cell_bound(100, 4, 0.0) == 25

    def test_large_epsilon(self):
        assert balanced_cell_bound(100, 4, 1.0) == 50


class TestRebalance:
    def _frag_and_labels(self, seed=0):
        g = random_connected_graph(60, 50, seed=seed)
        rng = np.random.default_rng(seed)
        from repro.assembly import greedy_labels_for_graph

        labels = greedy_labels_for_graph(g, 8, rng)
        return g, labels, rng

    def test_already_balanced_passthrough(self):
        g, labels, rng = self._frag_and_labels()
        ell = len(np.unique(labels))
        out = rebalance(g, labels, k=ell, U=10**6, cfg=AssemblyConfig(phi=2),
                        phi_rebalance=4, rng=rng)
        assert out.success
        assert len(np.unique(out.labels)) == ell

    def test_reduces_to_k_cells(self):
        g, labels, rng = self._frag_and_labels(seed=1)
        ell = len(np.unique(labels))
        k = max(2, ell // 2)
        U = balanced_cell_bound(g.total_size(), k, 0.2)
        out = rebalance(g, labels, k, U, AssemblyConfig(phi=2), 4, rng)
        if out.success:
            assert len(np.unique(out.labels)) <= k
            sizes = np.bincount(out.labels, weights=g.vsize)
            assert sizes.max() <= U

    def test_impossible_bound_fails(self):
        g, labels, rng = self._frag_and_labels(seed=2)
        out = rebalance(g, labels, k=2, U=10, cfg=AssemblyConfig(phi=2),
                        phi_rebalance=4, rng=rng)  # total size 60 >> 2*10
        assert not out.success

    def test_cost_matches_labels(self):
        g, labels, rng = self._frag_and_labels(seed=3)
        ell = len(np.unique(labels))
        k = max(2, ell - 2)
        U = balanced_cell_bound(g.total_size(), k, 0.5)
        out = rebalance(g, labels, k, U, AssemblyConfig(phi=2), 4, rng)
        if out.success:
            expected = float(
                g.ewgt[out.labels[g.edge_u] != out.labels[g.edge_v]].sum()
            )
            assert out.cost == pytest.approx(expected)


class TestRunBalancedPunch:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_feasible_partitions(self, road_small, k):
        res = run_balanced_punch(road_small, k, 0.03, FAST, np.random.default_rng(k))
        assert res.feasible()
        assert res.partition.num_cells <= k
        assert res.partition.max_cell_size() <= res.U_star

    def test_epsilon_respected(self, road_small):
        res = run_balanced_punch(road_small, 4, 0.10, FAST, np.random.default_rng(0))
        ideal = -(-road_small.n // 4)
        assert res.partition.max_cell_size() <= int(1.10 * ideal)

    def test_invalid_k(self, road_small):
        with pytest.raises(ValueError):
            run_balanced_punch(road_small, 0)

    def test_from_fragments_reuse(self, road_small):
        """Sharing one filtering across runs gives valid results."""
        U_star = balanced_cell_bound(road_small.total_size(), 4, 0.03)
        rng = np.random.default_rng(1)
        filt = run_filtering(road_small, U_star // 3, rng=rng)
        r1 = balanced_from_fragments(
            road_small, filt.fragment_graph, filt.map, 4, U_star, FAST, rng
        )
        r2 = balanced_from_fragments(
            road_small, filt.fragment_graph, filt.map, 4, U_star, FAST, rng
        )
        assert r1.feasible() and r2.feasible()

    def test_strong_config_uses_more_starts(self):
        assert BalancedConfig(strong=True).numerator == 256
        assert BalancedConfig(strong=False).numerator == 32
        assert BalancedConfig(starts_numerator=7).numerator == 7

    def test_unbalanced_costs_recorded(self, road_small):
        res = run_balanced_punch(road_small, 4, 0.05, FAST, np.random.default_rng(2))
        assert len(res.unbalanced_costs) >= 1
        # balanced solutions can't be cheaper than the unbalanced ones they
        # came from in the typical case, but must at least exist
        assert res.cost >= 0

    def test_summary(self, road_small):
        res = run_balanced_punch(road_small, 2, 0.05, FAST, np.random.default_rng(3))
        assert "k=2" in res.summary()
