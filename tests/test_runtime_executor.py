"""Tests for resilient_map and the map_subproblems edge cases."""

from __future__ import annotations

import time

import pytest

from repro.filtering.executor import map_subproblems
from repro.runtime import FaultPlan, RunBudget, resilient_map
from repro.runtime.executor import DEGRADATION_ORDER

from .test_runtime_budget import FakeClock


def double(x):
    return x * 2


def slow_if_odd(x):
    if x % 2:
        time.sleep(5.0)
    return x


class TestMapSubproblemsEdgeCases:
    def test_empty_items_short_circuit(self):
        for executor in ("serial", "threads", "processes"):
            assert map_subproblems(double, [], executor=executor) == []

    def test_workers_zero_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            map_subproblems(double, [1, 2], executor="threads", workers=0)

    def test_workers_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            map_subproblems(double, [1, 2], executor="processes", workers=-3)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            map_subproblems(double, [1], executor="gpu")

    def test_tiny_input_processes(self):
        # chunksize must stay >= 1 for inputs far smaller than 64
        assert map_subproblems(double, [1, 2, 3], executor="processes", workers=2) == [2, 4, 6]


class TestResilientMapSerial:
    def test_clean_run(self):
        results, report = resilient_map(double, list(range(10)), "serial")
        assert results == [2 * i for i in range(10)]
        assert report.succeeded == 10
        assert not report.any_incident()

    def test_empty_items(self):
        results, report = resilient_map(double, [], "serial")
        assert results == []
        assert report.items == 0

    def test_retry_then_succeed(self):
        plan = FaultPlan(seed=1, failure_rate=0.5, max_attempt=0)
        results, report = resilient_map(
            double, list(range(30)), "serial",
            fault_plan=plan, max_retries=2, backoff_base=0.0,
        )
        assert results == [2 * i for i in range(30)]
        assert report.retries > 0
        assert report.skipped == 0

    def test_exhausted_retries_skip(self):
        plan = FaultPlan(seed=1, failure_rate=0.5, max_attempt=5)
        results, report = resilient_map(
            double, list(range(30)), "serial",
            fault_plan=plan, max_retries=1, backoff_base=0.0,
        )
        n_none = sum(r is None for r in results)
        assert n_none > 0
        assert report.skipped == n_none
        assert report.succeeded == 30 - n_none
        assert report.error_samples  # bounded sample retained

    def test_deterministic_reports(self):
        plan = FaultPlan(seed=2, failure_rate=0.4, max_attempt=0)
        _, r1 = resilient_map(double, list(range(20)), "serial",
                              fault_plan=plan, backoff_base=0.0)
        _, r2 = resilient_map(double, list(range(20)), "serial",
                              fault_plan=plan, backoff_base=0.0)
        assert (r1.retries, r1.skipped, r1.failures) == (r2.retries, r2.skipped, r2.failures)

    def test_deadline_skips_remaining(self):
        clock = FakeClock()
        budget = RunBudget(10.0, clock=clock)

        def work(x):
            clock.advance(3.0)
            return x

        results, report = resilient_map(work, list(range(10)), "serial", budget=budget)
        assert report.succeeded + report.deadline_skipped == 10
        assert report.deadline_skipped > 0
        assert results[-1] is None

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            resilient_map(double, [1], "serial", max_retries=-1)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resilient_map(double, [1], "gpu")


class TestResilientMapPooled:
    def test_threads_clean(self):
        results, report = resilient_map(double, list(range(16)), "threads", workers=4)
        assert results == [2 * i for i in range(16)]
        assert report.final_executor == "threads"

    def test_timeout_counts_and_skips(self):
        results, report = resilient_map(
            slow_if_odd, list(range(6)), "threads", workers=6,
            timeout=0.5, max_retries=0, backoff_base=0.0,
        )
        assert [results[i] for i in range(0, 6, 2)] == [0, 2, 4]
        assert all(results[i] is None for i in range(1, 6, 2))
        assert report.timeouts == 3
        assert report.skipped == 3

    def test_processes_unpicklable_degrades(self):
        # a lambda cannot cross a process boundary: the executor must
        # degrade to threads (or serial) and still produce every result
        results, report = resilient_map(lambda x: x + 1, list(range(8)), "processes", workers=2)
        assert results == [i + 1 for i in range(8)]
        assert report.executor_degradations >= 1
        assert report.final_executor in ("threads", "serial")

    def test_processes_crash_degrades(self):
        # ~40% of first-attempt workers call os._exit -> BrokenProcessPool
        plan = FaultPlan(seed=3, crash_rate=0.4, max_attempt=0, sites=("process",))
        results, report = resilient_map(
            double, list(range(12)), "processes", workers=2,
            fault_plan=plan, max_retries=1, backoff_base=0.0,
        )
        assert results == [2 * i for i in range(12)]
        assert report.executor_degradations >= 1
        assert report.final_executor in ("threads", "serial")

    def test_worker_faults_in_threads_retry(self):
        plan = FaultPlan(seed=4, failure_rate=0.5, max_attempt=0)
        results, report = resilient_map(
            double, list(range(20)), "threads", workers=4,
            fault_plan=plan, max_retries=2, backoff_base=0.0,
        )
        assert results == [2 * i for i in range(20)]
        assert report.retries > 0

    def test_degradation_order_constant(self):
        assert DEGRADATION_ORDER == ("processes", "threads", "serial")
