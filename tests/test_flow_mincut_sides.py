"""Direct unit tests for residual-graph side extraction in ``flow/mincut.py``.

The backends pin *different* canonical min cuts when several exist:

- ``dinic`` / ``edmonds_karp`` / ``scipy`` return the **source-minimal**
  cut — the set of vertices reachable from ``s`` in the residual graph
  (a BFS from ``s``), which is the same for every maximum flow;
- ``push_relabel`` returns the **source-maximal** cut — the complement of
  the set that can still reach ``t`` in the residual graph.

By the min-cut lattice property the source-minimal side is contained in
every min-cut source side, which is contained in the source-maximal side.
These conventions are deterministic per solver (this is the tie-breaking
order the suite pins), but they differ *across* solvers whenever the min
cut is not unique — which is exactly why
:meth:`repro.cutengine.base.CutEngine.cache_key` salts the cache key with
the solver name: a cached side mask is only valid for the backend that
produced it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.mincut import SOLVERS, min_st_cut

try:  # the scipy backend is optional at runtime
    import scipy  # noqa: F401

    _SOLVERS = SOLVERS
except ImportError:  # pragma: no cover - scipy is in the base image
    _SOLVERS = tuple(s for s in SOLVERS if s != "scipy")

#: backends whose side is the residual BFS from s (source-minimal cut)
_MINIMAL_SIDE_SOLVERS = tuple(s for s in _SOLVERS if s != "push_relabel")


def _mask(n, true_ids):
    m = np.zeros(n, dtype=bool)
    m[list(true_ids)] = True
    return m


@pytest.mark.parametrize("solver", _SOLVERS)
class TestUniqueCutSideExtraction:
    """Instances with a unique min cut: every backend must agree exactly."""

    def test_path_bottleneck_middle(self, solver):
        # s(0) -3- a(1) -1- b(2) -2- t(3): the middle edge is the unique
        # min cut; both adjacent edges keep residual capacity, so the side
        # is {s, a} under either extraction convention
        res = min_st_cut(4, [0, 1, 2], [1, 2, 3], [3.0, 1.0, 2.0], 0, 3, solver=solver)
        assert res.value == pytest.approx(1.0)
        assert np.array_equal(res.source_side, _mask(4, [0, 1]))
        assert res.cut_edges.tolist() == [1]

    def test_two_edge_cut_with_bypass(self, solver):
        # s -5- a -2- b -5- t plus s -1- b: max flow 3 saturates (a,b) and
        # (s,b); the unique min cut side is {s, a}
        res = min_st_cut(
            4,
            [0, 1, 2, 0],
            [1, 2, 3, 2],
            [5.0, 2.0, 5.0, 1.0],
            0,
            3,
            solver=solver,
        )
        assert res.value == pytest.approx(3.0)
        assert np.array_equal(res.source_side, _mask(4, [0, 1]))
        assert sorted(res.cut_edges.tolist()) == [1, 3]

    def test_disconnected_sink_zero_cut(self, solver):
        # t unreachable: value 0, the side is s's whole component (nothing
        # can reach t; everything in the component is reachable from s)
        res = min_st_cut(4, [0, 2], [1, 3], [1.0, 1.0], 0, 3, solver=solver)
        assert res.value == pytest.approx(0.0)
        assert np.array_equal(res.source_side, _mask(4, [0, 1]))
        assert res.cut_edges.size == 0

    def test_cut_edges_match_side_mask(self, solver):
        # cut_edges is derived from the mask: exactly the crossing edges,
        # and their capacities sum to the flow value (min-cut certificate)
        u = np.array([0, 0, 1, 1, 2, 3])
        v = np.array([1, 2, 2, 3, 4, 4])
        cap = np.array([3.0, 1.0, 1.0, 2.0, 2.0, 2.0])
        res = min_st_cut(5, u, v, cap, 0, 4, solver=solver)
        expect = np.flatnonzero(res.source_side[u] != res.source_side[v])
        assert np.array_equal(res.cut_edges, expect)
        assert res.value == pytest.approx(cap[res.cut_edges].sum())


class TestTieBreakingConventions:
    """Instances with several min cuts: pin each backend's canonical pick."""

    # diamond s->a->t / s->b->t, all caps 1: {s} and {s,a,b} are both min
    # cuts of value 2
    DIAMOND = (4, [0, 0, 1, 2], [1, 2, 3, 3], [1.0, 1.0, 1.0, 1.0], 0, 3)
    # s -2- a -2- b -2- t: every single edge is a min cut of value 2
    UNIFORM_PATH = (4, [0, 1, 2], [1, 2, 3], [2.0, 2.0, 2.0], 0, 3)

    @pytest.mark.parametrize("solver", _MINIMAL_SIDE_SOLVERS)
    def test_bfs_solvers_take_source_minimal_diamond(self, solver):
        # both source edges saturate, so the residual BFS from s stops
        # immediately: the pinned side is {s}, cut edges are the s-edges
        res = min_st_cut(*self.DIAMOND, solver=solver)
        assert res.value == pytest.approx(2.0)
        assert np.array_equal(res.source_side, _mask(4, [0]))
        assert sorted(res.cut_edges.tolist()) == [0, 1]

    def test_push_relabel_takes_source_maximal_diamond(self):
        # push-relabel keeps everything that cannot reach t: the pinned
        # side is {s, a, b}, cut edges are the t-edges — same value
        res = min_st_cut(*self.DIAMOND, solver="push_relabel")
        assert res.value == pytest.approx(2.0)
        assert np.array_equal(res.source_side, _mask(4, [0, 1, 2]))
        assert sorted(res.cut_edges.tolist()) == [2, 3]

    @pytest.mark.parametrize("solver", _MINIMAL_SIDE_SOLVERS)
    def test_bfs_solvers_take_leftmost_uniform_path(self, solver):
        res = min_st_cut(*self.UNIFORM_PATH, solver=solver)
        assert res.value == pytest.approx(2.0)
        assert np.array_equal(res.source_side, _mask(4, [0]))
        assert res.cut_edges.tolist() == [0]

    def test_push_relabel_takes_rightmost_uniform_path(self):
        res = min_st_cut(*self.UNIFORM_PATH, solver="push_relabel")
        assert res.value == pytest.approx(2.0)
        assert np.array_equal(res.source_side, _mask(4, [0, 1, 2]))
        assert res.cut_edges.tolist() == [2]


def _random_network(rng, n):
    """Random connected multigraph with small integer capacities (the
    scipy backend needs integers; small values make ties plentiful)."""
    u = list(range(0, n - 1))
    v = list(range(1, n))
    for _ in range(2 * n):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            u.append(int(a))
            v.append(int(b))
    cap = rng.integers(1, 4, size=len(u)).astype(np.float64)
    return u, v, cap


class TestCrossSolverSideProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_bfs_solvers_identical_masks(self, seed):
        # all source-minimal backends extract the same (unique) set — the
        # residual-reachable closure of s is independent of which max flow
        # the solver happened to find
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 14))
        u, v, cap = _random_network(rng, n)
        results = {
            s: min_st_cut(n, u, v, cap, 0, n - 1, solver=s)
            for s in _MINIMAL_SIDE_SOLVERS
        }
        base = results[_MINIMAL_SIDE_SOLVERS[0]]
        for s, res in results.items():
            assert res.value == pytest.approx(base.value), s
            assert np.array_equal(res.source_side, base.source_side), s
            assert np.array_equal(res.cut_edges, base.cut_edges), s

    @pytest.mark.parametrize("seed", range(10))
    def test_lattice_nesting_and_equal_values(self, seed):
        # min-cut lattice: the source-minimal side (BFS solvers) is nested
        # inside push-relabel's source-maximal side, and both are min-cut
        # certificates of the same value
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(6, 14))
        u, v, cap = _random_network(rng, n)
        ua, va = np.asarray(u), np.asarray(v)
        lo = min_st_cut(n, u, v, cap, 0, n - 1, solver="edmonds_karp")
        hi = min_st_cut(n, u, v, cap, 0, n - 1, solver="push_relabel")
        assert hi.value == pytest.approx(lo.value)
        assert np.all(hi.source_side[lo.source_side]), "minimal ⊆ maximal violated"
        for res in (lo, hi):
            assert bool(res.source_side[0]) and not bool(res.source_side[n - 1])
            crossing = res.source_side[ua] != res.source_side[va]
            assert res.value == pytest.approx(cap[crossing].sum())

    @pytest.mark.parametrize("solver", _SOLVERS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_deterministic_replay(self, solver, seed):
        rng = np.random.default_rng(200 + seed)
        n = 10
        u, v, cap = _random_network(rng, n)
        a = min_st_cut(n, u, v, cap, 0, n - 1, solver=solver)
        b = min_st_cut(n, u, v, cap, 0, n - 1, solver=solver)
        assert a.value == b.value
        assert np.array_equal(a.source_side, b.source_side)
        assert np.array_equal(a.cut_edges, b.cut_edges)
