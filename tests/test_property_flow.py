"""Property-based tests for max-flow / min-cut solvers."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import min_st_cut
from repro.graph import build_graph


@st.composite
def flow_instances(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=20))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=9),
            ),
            min_size=m,
            max_size=m,
        )
    )
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != s))
    return n, edges, s, t


def brute_force_min_cut(g, s, t):
    """Minimum over all 2^(n-2) s-t bipartitions (n <= 10)."""
    rest = [v for v in range(g.n) if v not in (s, t)]
    best = float("inf")
    for bits in itertools.product([0, 1], repeat=len(rest)):
        side = np.zeros(g.n, dtype=bool)
        side[s] = True
        for v, b in zip(rest, bits):
            side[v] = bool(b)
        w = float(g.ewgt[side[g.edge_u] != side[g.edge_v]].sum())
        best = min(best, w)
    return best


@given(flow_instances())
@settings(max_examples=80, deadline=None)
def test_push_relabel_matches_brute_force(inst):
    n, edges, s, t = inst
    u = np.asarray([e[0] for e in edges])
    v = np.asarray([e[1] for e in edges])
    w = np.asarray([e[2] for e in edges], dtype=float)
    g = build_graph(n, u, v, weights=w)
    if g.m == 0:
        return
    res = min_st_cut(g.n, g.edge_u, g.edge_v, g.ewgt, s, t, solver="push_relabel")
    assert res.value == pytest.approx(brute_force_min_cut(g, s, t))
    # the reported side is a cut of exactly that weight
    side = res.source_side
    assert side[s] and not side[t]
    assert float(g.ewgt[side[g.edge_u] != side[g.edge_v]].sum()) == pytest.approx(res.value)


@given(flow_instances())
@settings(max_examples=60, deadline=None)
def test_all_solvers_agree(inst):
    n, edges, s, t = inst
    u = np.asarray([e[0] for e in edges])
    v = np.asarray([e[1] for e in edges])
    w = np.asarray([e[2] for e in edges], dtype=float)
    g = build_graph(n, u, v, weights=w)
    if g.m == 0:
        return
    values = [
        min_st_cut(g.n, g.edge_u, g.edge_v, g.ewgt, s, t, solver=sv).value
        for sv in ("push_relabel", "dinic", "edmonds_karp", "scipy")
    ]
    assert max(values) - min(values) < 1e-6


@given(flow_instances())
@settings(max_examples=60, deadline=None)
def test_cut_edges_disconnect(inst):
    """Removing the reported cut edges separates s from t."""
    from repro.graph import connected_components_masked

    n, edges, s, t = inst
    u = np.asarray([e[0] for e in edges])
    v = np.asarray([e[1] for e in edges])
    g = build_graph(n, u, v)
    if g.m == 0:
        return
    res = min_st_cut(g.n, g.edge_u, g.edge_v, g.ewgt, s, t, solver="dinic")
    _, labels = connected_components_masked(g, res.cut_edges)
    assert labels[s] != labels[t] or res.value == 0
