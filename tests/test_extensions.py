"""Tests for extensions: the Buffoon-style hybrid and the ASCII map."""

import numpy as np
import pytest

from repro.analysis.ascii_map import ascii_partition_map
from repro.baselines.buffoon import buffoon_partition_U, buffoon_partition_k
from repro.core import Partition


class TestBuffoonHybrid:
    def test_U_mode_respects_bound(self, road_small):
        labels = buffoon_partition_U(road_small, 80, np.random.default_rng(0))
        p = Partition(road_small, labels)
        assert p.max_cell_size() <= 80
        assert p.num_cells >= -(-road_small.n // 80)

    def test_U_mode_competitive_with_raw_multilevel(self, road_small):
        from repro.baselines import multilevel_partition_U

        hybrid = Partition(
            road_small, buffoon_partition_U(road_small, 80, np.random.default_rng(1))
        )
        raw = Partition(
            road_small, multilevel_partition_U(road_small, 80, np.random.default_rng(1))
        )
        # filtering first should help (or at least not catastrophically hurt)
        assert hybrid.cost <= raw.cost * 1.5

    def test_k_mode_feasible(self, road_small):
        k = 4
        labels = buffoon_partition_k(road_small, k, 0.05, np.random.default_rng(2))
        p = Partition(road_small, labels)
        assert p.num_cells <= k
        bound = int(1.05 * -(-road_small.n // k))
        assert p.max_cell_size() <= bound


class TestAsciiMap:
    def test_renders_grid(self, walls_grid):
        labels = np.zeros(walls_grid.n, dtype=np.int64)
        labels[walls_grid.n // 2 :] = 1
        art = ascii_partition_map(walls_grid, labels, width=40, height=10)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)
        assert "0" in art and "1" in art

    def test_requires_coords(self):
        from .conftest import cycle_graph

        g = cycle_graph(5)
        with pytest.raises(ValueError):
            ascii_partition_map(g, np.zeros(5))

    def test_many_cells_cycle_glyphs(self, walls_grid):
        labels = np.arange(walls_grid.n) % 80
        art = ascii_partition_map(walls_grid, labels, width=30, height=8)
        assert len(art.splitlines()) == 8
