"""Dedicated tests for the biased randomization and score edge cases."""

import numpy as np
import pytest

from repro.assembly import biased_r, pair_score


class TestBiasedREdgeCases:
    def test_a_zero_always_upper(self, rng):
        vals = [biased_r(rng, a=0.0, b=0.6) for _ in range(500)]
        assert all(v >= 0.6 for v in vals)

    def test_a_one_always_lower(self, rng):
        vals = [biased_r(rng, a=1.0, b=0.6) for _ in range(500)]
        assert all(v <= 0.6 for v in vals)

    def test_b_zero(self, rng):
        # lower branch degenerates to 0; upper covers [0, 1]
        vals = [biased_r(rng, a=0.5, b=0.0) for _ in range(500)]
        assert all(0 <= v <= 1 for v in vals)

    def test_b_one(self, rng):
        vals = [biased_r(rng, a=0.5, b=1.0) for _ in range(500)]
        assert all(0 <= v <= 1 for v in vals)

    def test_default_mean_reasonable(self, rng):
        # with a=0.03, b=0.6 the expectation is ~0.03*0.3 + 0.97*0.8 ~ 0.785
        vals = np.asarray([biased_r(rng) for _ in range(6000)])
        assert vals.mean() == pytest.approx(0.785, abs=0.03)


class TestPairScoreProperties:
    def test_positive(self, rng):
        assert pair_score(3.0, 5, 7, rng) > 0

    def test_symmetric_in_sizes(self, rng):
        # expectation symmetric under swapping s(u), s(v)
        a = np.mean([pair_score(1.0, 2, 8, rng) for _ in range(800)])
        b = np.mean([pair_score(1.0, 8, 2, rng) for _ in range(800)])
        assert a == pytest.approx(b, rel=0.1)

    def test_smaller_partner_dominates(self, rng):
        # sqrt(1/1) = 1 dominates sqrt(1/100) = 0.1: the small region drives
        # the score, implementing the paper's "higher importance to the
        # smaller region"
        small_pair = np.mean([pair_score(1.0, 1, 100, rng) for _ in range(500)])
        large_pair = np.mean([pair_score(1.0, 100, 100, rng) for _ in range(500)])
        assert small_pair > 3 * large_pair

    def test_greedy_inline_matches_module_distribution(self):
        """The inlined biased sampler in greedy_assemble follows the same
        distribution as assembly.score.biased_r."""
        from repro.assembly.greedy import _RandomBuffer

        rng = np.random.default_rng(0)
        a, b = 0.03, 0.6
        buf = _RandomBuffer(rng)
        one_minus = (1.0 - b) / (1.0 - a)
        vals = []
        for _ in range(6000):
            u = buf.next()
            vals.append(b * (u / a) if u < a else b + (u - a) * one_minus)
        vals = np.asarray(vals)
        ref_rng = np.random.default_rng(1)
        ref = np.asarray([biased_r(ref_rng, a, b) for _ in range(6000)])
        assert vals.mean() == pytest.approx(ref.mean(), abs=0.02)
        assert (vals < b).mean() == pytest.approx((ref < b).mean(), abs=0.02)
