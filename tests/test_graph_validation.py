"""Tests for validation helpers (cut weight / cut edges of labelings)."""

import numpy as np
import pytest

from repro.graph import cut_edges_of_labeling, cut_weight, validate_graph
from repro.graph.validation import validate_labels

from .conftest import cycle_graph, make_graph


class TestCutHelpers:
    def test_cut_edges(self):
        g = cycle_graph(4)
        edges = cut_edges_of_labeling(g, np.asarray([0, 0, 1, 1]))
        assert len(edges) == 2

    def test_cut_weight_weighted(self):
        from repro.graph.builder import build_graph

        g = build_graph(3, [0, 1], [1, 2], weights=[2.0, 3.0])
        assert cut_weight(g, np.asarray([0, 0, 1])) == 3.0
        assert cut_weight(g, np.asarray([0, 1, 1])) == 2.0
        assert cut_weight(g, np.asarray([0, 0, 0])) == 0.0

    def test_all_separate(self):
        g = cycle_graph(5)
        assert cut_weight(g, np.arange(5)) == 5.0

    def test_validate_labels(self):
        g = cycle_graph(3)
        validate_labels(g, np.asarray([0, 1, 2]))
        with pytest.raises(ValueError):
            validate_labels(g, np.asarray([0, 1]))
        with pytest.raises(ValueError):
            validate_labels(g, np.asarray([0, -1, 2]))

    def test_validate_graph(self):
        g = make_graph(3, [(0, 1), (1, 2)])
        validate_graph(g)
