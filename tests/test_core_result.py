"""Unit tests for result objects (PunchResult / BalancedResult)."""

import numpy as np
import pytest

from repro import PunchConfig, run_punch, run_balanced_punch
from repro.core.config import BalancedConfig
from repro.core.result import BalancedResult
from repro.core.partition import Partition

from .conftest import make_graph


class TestPunchResult:
    @pytest.fixture(scope="class")
    def result(self, road_small=None):
        from repro.synthetic import road_network

        g = road_network(n_target=700, n_cities=5, seed=1)
        return run_punch(g, 100, PunchConfig(seed=0))

    def test_lower_bound(self, result):
        g = result.partition.graph
        assert result.lower_bound_cells == -(-g.total_size() // result.U)
        assert result.num_cells >= result.lower_bound_cells

    def test_num_fragments(self, result):
        assert result.num_fragments == result.filter_result.fragment_graph.n

    def test_time_total(self, result):
        assert result.time_total == pytest.approx(
            result.time_tiny + result.time_natural + result.time_assembly
        )

    def test_cost_property(self, result):
        assert result.cost == result.partition.cost


class TestBalancedResult:
    def test_feasibility_logic(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        p = Partition(g, np.asarray([0, 0, 1, 1]))
        res = BalancedResult(partition=p, k=2, epsilon=0.0, U_star=2, time_total=0.1)
        assert res.feasible()
        res_bad = BalancedResult(partition=p, k=1, epsilon=0.0, U_star=2, time_total=0.1)
        assert not res_bad.feasible()
        res_bad2 = BalancedResult(partition=p, k=2, epsilon=0.0, U_star=1, time_total=0.1)
        assert not res_bad2.feasible()

    def test_attempt_accounting(self):
        from repro.synthetic import road_network

        g = road_network(n_target=600, n_cities=4, seed=2)
        cfg = BalancedConfig(
            starts_numerator=4, rebalance_attempts=3, phi_unbalanced=8, phi_rebalance=4
        )
        res = run_balanced_punch(g, 4, 0.05, cfg, np.random.default_rng(0))
        assert res.attempts >= 1
        assert res.failed_rebalances <= res.attempts
