"""Tests for nested partitions and CRP metric customization."""

import numpy as np
import pytest

from repro import PunchConfig, run_punch
from repro.core.config import AssemblyConfig
from repro.core.nested import run_nested_punch
from repro.crp import build_overlay, crp_query, customize_overlay, dijkstra
from repro.graph.graph import Graph


FAST = PunchConfig(assembly=AssemblyConfig(phi=4), seed=0)


class TestNestedPunch:
    def test_nesting_property(self, road_small):
        nested = run_nested_punch(road_small, [32, 128, 512], FAST)
        assert len(nested.levels) == 3
        nested.check_nesting()

    def test_levels_respect_bounds(self, road_small):
        nested = run_nested_punch(road_small, [32, 128, 512], FAST)
        for U, p in zip(nested.U_values, nested.levels):
            assert p.max_cell_size() <= U

    def test_costs_decrease_with_level(self, road_small):
        """Coarser levels cut fewer edges (their cut edges are a subset)."""
        nested = run_nested_punch(road_small, [32, 128, 512], FAST)
        costs = [p.cost for p in nested.levels]
        assert costs == sorted(costs, reverse=True)
        # stronger: coarse cut edges are a subset of fine cut edges
        fine = set(nested.levels[0].cut_edges.tolist())
        coarse = set(nested.levels[-1].cut_edges.tolist())
        assert coarse <= fine

    def test_unsorted_input_ok(self, road_small):
        nested = run_nested_punch(road_small, [512, 32], FAST)
        assert nested.U_values == [32, 512]

    def test_empty_U_rejected(self, road_small):
        with pytest.raises(ValueError):
            run_nested_punch(road_small, [])

    def test_cell_of(self, road_small):
        nested = run_nested_punch(road_small, [64, 256], FAST)
        for v in (0, road_small.n // 2):
            assert nested.cell_of(v, 0) == nested.levels[0].labels[v]


class TestCustomizeOverlay:
    def _setup(self):
        from repro.synthetic import road_network

        g = road_network(n_target=500, n_cities=4, seed=8)
        p = run_punch(g, 64, FAST).partition
        return g, p, build_overlay(p)

    def test_matches_rebuild_from_scratch(self):
        g, p, overlay = self._setup()
        rng = np.random.default_rng(0)
        new_w = rng.integers(1, 10, size=g.m).astype(float)
        fast = customize_overlay(overlay, new_w)
        # reference: rebuild the overlay on a reweighted graph directly
        from repro.core.partition import Partition

        gw = Graph(g.xadj, g.adjncy, g.eid, g.edge_u, g.edge_v, g.vsize, new_w, coords=g.coords)
        ref = build_overlay(Partition(gw, p.labels))
        assert fast.num_boundary_vertices == ref.num_boundary_vertices
        assert fast.clique_edges == ref.clique_edges
        for v in fast.adj:
            assert sorted(fast.adj[v]) == pytest.approx(sorted(ref.adj[v]))

    def test_customized_queries_exact(self):
        g, p, overlay = self._setup()
        rng = np.random.default_rng(1)
        new_w = rng.integers(1, 10, size=g.m).astype(float)
        custom = customize_overlay(overlay, new_w)
        gw = Graph(g.xadj, g.adjncy, g.eid, g.edge_u, g.edge_v, g.vsize, new_w, coords=g.coords)
        for _ in range(10):
            s, t = rng.choice(g.n, size=2, replace=False)
            truth, _ = dijkstra(gw, int(s), targets=[int(t)])
            d, _ = crp_query(custom, int(s), int(t))
            assert d == pytest.approx(truth.get(int(t), float("inf")))

    def test_validates_weights(self):
        _, _, overlay = self._setup()
        with pytest.raises(ValueError):
            customize_overlay(overlay, np.ones(3))
        with pytest.raises(ValueError):
            customize_overlay(overlay, np.zeros(overlay.graph.m))
