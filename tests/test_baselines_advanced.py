"""Tests for the advanced baselines: FlowCutter, spectral, Kernighan-Lin."""

import numpy as np
import pytest

from repro.baselines import (
    fiedler_vector,
    flowcutter_bisect,
    flowcutter_partition,
    kl_refine,
    kl_refine_pair,
    spectral_bisect,
    spectral_partition,
)
from repro.core import Partition
from repro.graph import cut_weight
from repro.synthetic import grid_with_walls

from .conftest import barbell, cycle_graph, make_graph, random_connected_graph


class TestFlowCutter:
    def test_finds_planted_wall(self):
        g = grid_with_walls(10, 30, wall_cols=[14], gap_rows=[5])
        mask, cut = flowcutter_bisect(g, s=0, t=g.n - 1, rng=np.random.default_rng(0))
        assert cut == 1.0
        assert min(mask.sum(), (~mask).sum()) == g.n // 2

    def test_barbell_bridge(self):
        g = barbell(10)
        mask, cut = flowcutter_bisect(g, s=1, t=12, rng=np.random.default_rng(0))
        assert cut == 1.0
        assert mask.sum() == 10

    def test_balance_goal_met_or_best_effort(self):
        for seed in range(3):
            g = random_connected_graph(60, 50, seed=seed)
            mask, cut = flowcutter_bisect(g, balance_goal=0.3, rng=np.random.default_rng(seed))
            small = min(mask.sum(), (~mask).sum())
            assert small >= 1
            # reported cut weight matches the mask
            assert cut == pytest.approx(cut_weight(g, mask.astype(np.int64)))

    def test_partition_k_cells(self):
        g = grid_with_walls(8, 32, wall_cols=[7, 15, 23])
        labels = flowcutter_partition(g, 4, rng=np.random.default_rng(1))
        p = Partition(g, labels)
        assert p.num_cells == 4
        assert p.cost <= 8  # three planted 1-edge walls + slack

    def test_tiny_graph(self):
        g = make_graph(2, [(0, 1)])
        mask, cut = flowcutter_bisect(g, s=0, t=1)
        assert cut == 1.0
        assert mask.sum() == 1

    def test_auto_terminal_selection(self):
        g = grid_with_walls(6, 18, wall_cols=[8])
        mask, cut = flowcutter_bisect(g, rng=np.random.default_rng(5))
        assert 0 < mask.sum() < g.n


class TestSpectral:
    def test_fiedler_separates_barbell(self):
        g = barbell(8)
        f = fiedler_vector(g)
        # the two cliques get opposite signs
        left = f[:8]
        right = f[8:16]
        assert np.sign(np.median(left)) != np.sign(np.median(right))

    def test_bisect_balanced(self):
        g = random_connected_graph(50, 60, seed=2)
        mask = spectral_bisect(g)
        assert abs(int(mask.sum()) - g.n // 2) <= g.n // 4

    def test_partition_k(self):
        g = random_connected_graph(64, 70, seed=3)
        labels = spectral_partition(g, 8)
        p = Partition(g, labels)
        assert p.num_cells == 8

    def test_barbell_optimal(self):
        g = barbell(10)
        mask = spectral_bisect(g)
        assert cut_weight(g, mask.astype(np.int64)) == 1.0

    def test_tiny_graphs(self):
        assert len(spectral_bisect(make_graph(2, [(0, 1)]))) == 2
        assert len(spectral_bisect(cycle_graph(3))) == 3


class TestKernighanLin:
    def test_repairs_interleaved_split(self):
        g = barbell(8)
        bad = np.asarray([0, 1] * 8)
        refined, gain = kl_refine_pair(g, bad, 0, 1)
        assert gain > 0
        assert cut_weight(g, refined) < cut_weight(g, bad)

    def test_preserves_cell_sizes(self):
        g = random_connected_graph(30, 40, seed=4)
        labels = np.asarray([0, 1] * 15)
        refined, _ = kl_refine_pair(g, labels, 0, 1)
        assert (refined == 0).sum() == 15
        assert (refined == 1).sum() == 15

    def test_never_worsens(self):
        for seed in range(3):
            g = random_connected_graph(24, 30, seed=seed)
            rng = np.random.default_rng(seed)
            labels = rng.integers(0, 3, size=g.n)
            refined = kl_refine(g, labels, rng, rounds=1)
            assert cut_weight(g, refined) <= cut_weight(g, labels) + 1e-9

    def test_multiway(self):
        g = grid_with_walls(6, 18, wall_cols=[8])
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=g.n)
        refined = kl_refine(g, labels, rng)
        assert cut_weight(g, refined) < cut_weight(g, labels)

    def test_local_optimum_stops(self):
        g = barbell(6)
        perfect = np.asarray([0] * 6 + [1] * 6)
        refined, gain = kl_refine_pair(g, perfect, 0, 1)
        assert gain == 0
        assert np.array_equal(refined, perfect)
