"""Unit tests for the auxiliary instances and the L2/L2+/L2* local search."""

import numpy as np
import pytest

from repro.assembly import PartitionState, build_aux_instance, local_search
from repro.assembly.local_search import _RandomPairSet

from .conftest import cycle_graph, make_graph, random_connected_graph


class TestRandomPairSet:
    def test_add_discard_sample(self, rng):
        s = _RandomPairSet()
        s.add((1, 2))
        s.add((3, 4))
        assert len(s) == 2
        assert s.sample(rng) in [(1, 2), (3, 4)]
        s.discard((1, 2))
        assert len(s) == 1
        assert s.sample(rng) == (3, 4)

    def test_discard_missing_is_noop(self):
        s = _RandomPairSet()
        s.add((1, 2))
        s.discard((9, 9))
        assert len(s) == 1

    def test_no_duplicates(self):
        s = _RandomPairSet()
        s.add((1, 2))
        s.add((1, 2))
        assert len(s) == 1


def chain_partition(n_cells, cell_len):
    """Path graph partitioned into consecutive runs."""
    n = n_cells * cell_len
    g = make_graph(n, [(i, i + 1) for i in range(n - 1)])
    labels = np.repeat(np.arange(n_cells), cell_len)
    return g, PartitionState(g, labels)


class TestBuildAuxInstance:
    def test_l2_units_are_fragments_of_pair(self):
        g, state = chain_partition(4, 3)
        pairs = state.adjacent_pairs()
        R, S = pairs[0]
        aux = build_aux_instance(state, R, S, "L2")
        assert len(aux.unit_sizes) == 6
        assert aux.uncontracted.all()

    def test_l2plus_adds_contracted_neighbors(self):
        g, state = chain_partition(4, 3)
        # middle pair has neighbors on both sides
        R, S = sorted(state.adjacent_pairs())[1]
        aux = build_aux_instance(state, R, S, "L2+")
        assert (~aux.uncontracted).sum() >= 1  # at least one contracted unit
        # contracted units carry whole-cell sizes
        for i in np.flatnonzero(~aux.uncontracted):
            assert aux.unit_sizes[i] == 3

    def test_l2star_uncontracts_neighbors(self):
        g, state = chain_partition(4, 3)
        R, S = sorted(state.adjacent_pairs())[1]
        aux = build_aux_instance(state, R, S, "L2*")
        assert aux.uncontracted.all()
        assert len(aux.unit_sizes) >= 9  # pair + at least one neighbor cell

    def test_internal_cost_counts_cut_only(self):
        g, state = chain_partition(3, 2)
        R, S = sorted(state.adjacent_pairs())[0]
        aux = build_aux_instance(state, R, S, "L2")
        assert aux.current_internal_cost == 1.0  # one edge between R and S

    def test_unknown_variant_rejected(self):
        g, state = chain_partition(3, 2)
        R, S = state.adjacent_pairs()[0]
        with pytest.raises(ValueError):
            build_aux_instance(state, R, S, "L3")

    def test_edges_cover_cross_pair_edges(self):
        g = cycle_graph(8)
        state = PartitionState(g, np.asarray([0, 0, 1, 1, 2, 2, 3, 3]))
        R, S = 0, 1
        aux = build_aux_instance(state, R, S, "L2")
        # cycle edge (1,2) crosses R-S; edge (7,0) and (3,4) leave the pair
        assert aux.current_internal_cost == 1.0


class TestLocalSearch:
    def test_improves_bad_partition(self):
        """A deliberately bad split of a two-cluster graph must improve."""
        from .conftest import barbell

        g = barbell(6)
        # bad: interleaved labels
        bad = np.asarray([0, 1] * 6)
        state = PartitionState(g, bad)
        before = state.cost
        stats = local_search(state, U=6, variant="L2", phi_max=8, rng=np.random.default_rng(0))
        assert state.cost < before
        state.check()

    @pytest.mark.parametrize("variant", ["L2", "L2+", "L2*"])
    def test_respects_U(self, variant):
        g = random_connected_graph(40, 30, seed=2)
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 10, size=g.n)
        state = PartitionState(g, labels)
        local_search(state, U=8, variant=variant, phi_max=4, rng=rng)
        # note: initial random cells may exceed U; reoptimized ones may not
        # grow beyond it -- check no cell exceeds max(U, initial max)
        init_max = int(
            np.bincount(labels, weights=g.vsize).max()
        )
        assert state.max_cell_size() <= max(8, init_max)

    @pytest.mark.parametrize("variant", ["L2", "L2+", "L2*"])
    def test_state_consistent_after_search(self, variant):
        g = random_connected_graph(35, 25, seed=5)
        rng = np.random.default_rng(4)
        from repro.assembly import greedy_labels_for_graph

        labels = greedy_labels_for_graph(g, 8, rng)
        state = PartitionState(g, labels)
        local_search(state, U=8, variant=variant, phi_max=4, rng=rng)
        state.check()

    def test_none_variant_noop(self):
        g = cycle_graph(6)
        state = PartitionState(g, np.asarray([0, 0, 1, 1, 2, 2]))
        stats = local_search(state, U=3, variant="none", phi_max=4)
        assert stats.steps == 0
        assert state.cost == 3.0

    def test_phi_bounds_failures(self):
        """With phi=1, each pair is tried at most ~once before exclusion."""
        g = cycle_graph(12)
        state = PartitionState(g, np.repeat(np.arange(4), 3))
        stats = local_search(state, U=3, variant="L2", phi_max=1, rng=np.random.default_rng(0))
        # 4 adjacent pairs on the cycle of cells; U=3 forbids merges, so all
        # steps fail and each pair fails at most once
        assert stats.steps <= 8

    def test_max_steps_cutoff(self):
        g = random_connected_graph(30, 20, seed=7)
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 8, size=g.n)
        state = PartitionState(g, labels)
        stats = local_search(state, U=6, phi_max=64, rng=rng, max_steps=5)
        assert stats.steps <= 5

    def test_cost_never_increases(self):
        g = random_connected_graph(40, 35, seed=9)
        rng = np.random.default_rng(2)
        from repro.assembly import greedy_labels_for_graph

        labels = greedy_labels_for_graph(g, 10, rng)
        state = PartitionState(g, labels)
        before = state.cost
        local_search(state, U=10, phi_max=8, rng=rng)
        assert state.cost <= before + 1e-9
        assert state.cost == pytest.approx(state.recompute_cost())
