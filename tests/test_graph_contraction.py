"""Unit tests for contraction and mapping composition."""

import numpy as np
import pytest

from repro.graph import ContractionChain, compose_labels, contract, cut_weight
from repro.graph.contraction import normalize_labels

from .conftest import cycle_graph, make_graph, random_connected_graph


class TestNormalizeLabels:
    def test_dense_output(self):
        labels, k = normalize_labels(np.asarray([5, 5, 9, 2]))
        assert k == 3
        assert labels.max() == 2
        assert labels[0] == labels[1]

    def test_identity(self):
        labels, k = normalize_labels(np.arange(4))
        assert k == 4
        assert labels.tolist() == [0, 1, 2, 3]


class TestContract:
    def test_sizes_summed(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        cg, _ = contract(g, [0, 0, 1, 1])
        assert cg.n == 2
        assert sorted(cg.vsize.tolist()) == [2, 2]

    def test_internal_edges_vanish(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        cg, _ = contract(g, [0, 0, 1, 1])
        assert cg.m == 1  # only the 1-2 edge survives

    def test_parallel_edges_merge(self):
        g = cycle_graph(4)
        cg, _ = contract(g, [0, 0, 1, 1])
        assert cg.m == 1
        assert cg.ewgt[0] == 2.0  # two cycle edges between the halves

    def test_contract_to_single_vertex(self):
        g = cycle_graph(5)
        cg, _ = contract(g, [0] * 5)
        assert cg.n == 1 and cg.m == 0
        assert cg.vsize[0] == 5

    def test_total_size_invariant(self):
        g = random_connected_graph(40, 30, seed=3)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 7, size=g.n)
        cg, _ = contract(g, labels)
        assert cg.total_size() == g.total_size()
        cg.check()

    def test_cut_weight_preserved(self):
        """Contraction preserves the weight between label groups."""
        g = random_connected_graph(30, 25, seed=5)
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 5, size=g.n)
        cg, dense = contract(g, labels)
        assert cg.total_weight() == pytest.approx(cut_weight(g, labels))

    def test_labels_length_checked(self):
        g = cycle_graph(3)
        with pytest.raises(ValueError):
            contract(g, [0, 1])

    def test_coords_mean(self):
        coords = np.asarray([[0.0, 0.0], [2.0, 0.0], [5.0, 5.0]])
        g = make_graph(3, [(0, 1), (1, 2)], coords=coords)
        cg, _ = contract(g, [0, 0, 1])
        # group {0,1} centroid at (1, 0)
        i = int(np.argmin(cg.coords[:, 1]))
        assert np.allclose(cg.coords[i], [1.0, 0.0])

    def test_coords_dropped_when_requested(self):
        coords = np.zeros((3, 2))
        g = make_graph(3, [(0, 1), (1, 2)], coords=coords)
        cg, _ = contract(g, [0, 0, 1], coords=None)
        assert cg.coords is None


class TestComposeLabels:
    def test_composition(self):
        first = np.asarray([0, 0, 1, 2])
        second = np.asarray([1, 1, 0])
        assert compose_labels(first, second).tolist() == [1, 1, 1, 0]


class TestContractionChain:
    def test_two_step_chain(self):
        g = make_graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        chain = ContractionChain(g)
        chain.apply([0, 0, 1, 1, 2, 2])
        assert chain.current.n == 3
        chain.apply([0, 0, 1])
        assert chain.current.n == 2
        # original vertices 0..3 -> final 0; 4,5 -> final 1
        assert chain.map.tolist() == [0, 0, 0, 0, 1, 1]

    def test_project(self):
        g = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        chain = ContractionChain(g)
        chain.apply([0, 0, 1, 1])
        cells = np.asarray([7, 9])
        assert chain.project(cells).tolist() == [7, 7, 9, 9]

    def test_project_validates_length(self):
        g = make_graph(3, [(0, 1), (1, 2)])
        chain = ContractionChain(g)
        with pytest.raises(ValueError):
            chain.project(np.asarray([0, 1]))

    def test_identity_chain(self):
        g = cycle_graph(4)
        chain = ContractionChain(g)
        assert chain.map.tolist() == [0, 1, 2, 3]
        assert chain.current is g
