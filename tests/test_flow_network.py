"""Unit tests for the flow-network arc representation."""

import numpy as np

from repro.flow import FlowNetwork

from .conftest import make_graph


class TestFlowNetwork:
    def test_arc_pairing(self):
        g = make_graph(3, [(0, 1), (1, 2)])
        net = FlowNetwork(g.n, g.edge_u, g.edge_v, g.ewgt)
        assert net.n_arcs == 4
        # arc 2e goes u->v, arc 2e+1 goes v->u
        for e in range(g.m):
            u, v = g.edge_endpoints(e)
            assert net.arc_to[2 * e] == v
            assert net.arc_to[2 * e + 1] == u
            assert net.rev(2 * e) == 2 * e + 1
            assert net.edge_of_arc(2 * e) == e
            assert net.edge_of_arc(2 * e + 1) == e

    def test_both_directions_capacity(self):
        from repro.graph.builder import build_graph

        g = build_graph(2, [0], [1], weights=[7.0])
        net = FlowNetwork(g.n, g.edge_u, g.edge_v, g.ewgt)
        assert net.arc_cap.tolist() == [7.0, 7.0]

    def test_arcs_of_partition(self):
        g = make_graph(4, [(0, 1), (0, 2), (0, 3)])
        net = FlowNetwork(g.n, g.edge_u, g.edge_v, g.ewgt)
        # vertex 0 has three outgoing arcs; leaves have one each
        assert len(net.arcs_of(0)) == 3
        for v in (1, 2, 3):
            assert len(net.arcs_of(v)) == 1
        # arcs_of covers all arcs exactly once
        all_arcs = np.concatenate([net.arcs_of(v) for v in range(4)])
        assert sorted(all_arcs.tolist()) == list(range(net.n_arcs))

    def test_arc_tails_consistent(self):
        g = make_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        net = FlowNetwork(g.n, g.edge_u, g.edge_v, g.ewgt)
        for v in range(g.n):
            for a in net.arcs_of(v):
                # the reverse arc must point back to v
                assert net.arc_to[int(a) ^ 1] == v

    def test_empty_network(self):
        net = FlowNetwork(3, np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64), np.asarray([]))
        assert net.n_arcs == 0
        assert len(net.arcs_of(0)) == 0
